//! The `qgov` operator binary: a thin shim over [`qgov_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(qgov_cli::run(&args));
}
