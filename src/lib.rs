//! # qgov — machine learning for run-time energy optimisation in many-core systems
//!
//! A full Rust reproduction of **Biswas, Balagopal, Shafik, Al-Hashimi,
//! Merrett, "Machine Learning for Run-Time Energy Optimisation in
//! Many-Core Systems", DATE 2017**: a Q-learning run-time manager (RTM)
//! that picks voltage–frequency settings per decision epoch from EWMA
//! workload prediction and slack feedback, together with everything it
//! runs on — a deterministic many-core platform simulator standing in
//! for the paper's ODROID-XU3, frame-based application workload models,
//! the baseline governors it is compared against, and the measurement
//! plumbing that regenerates every table and figure of the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! stable module names and offers a [`prelude`] for experiments.
//!
//! ## Quick start
//!
//! ```
//! use qgov::prelude::*;
//!
//! // The paper's platform: 4 A15 cores, 19 operating points.
//! let platform_config = PlatformConfig::odroid_xu3_a15();
//!
//! // A video workload and the proposed RTM.
//! let mut app = VideoDecoderModel::h264_football_15fps(42).with_frames(120);
//! let mut rtm = RtmGovernor::new(RtmConfig::paper(42)).unwrap();
//!
//! // Run the experiment loop and inspect the outcome.
//! let outcome = run_experiment(&mut rtm, &mut app, platform_config, 120);
//! assert_eq!(outcome.report.frames(), 120);
//! assert!(outcome.report.total_energy().as_joules() > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`units`] | `Freq`, `Volt`, `Power`, `Energy`, `SimTime`, `Cycles`, `Temp` newtypes |
//! | [`rl`] | Q-table, predictors, discretisers, exploration policies, rewards, agent |
//! | [`sim`] | OPP tables, CMOS power model, PMUs, sensors, DVFS, thermal RC, platform |
//! | [`workloads`] | video / FFT / PARSEC-like / SPLASH-2-like / synthetic workloads, traces |
//! | [`governors`] | the `Governor` trait, ondemand, conservative, oracle, Ge&Qiu, … |
//! | [`core`] | the paper's RTM: `RtmGovernor` + `RtmConfig` |
//! | [`metrics`] | run reports, misprediction stats, tables, series |
//! | [`mod@bench`] | the experiment harness, batched parallel runner, per-table experiment functions |
//! | [`cli`] | the `qgov` operator binary: journaled, kill-and-resume campaigns |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qgov_bench as bench;
pub use qgov_cli as cli;
pub use qgov_core as core;
pub use qgov_governors as governors;
pub use qgov_metrics as metrics;
pub use qgov_rl as rl;
pub use qgov_sim as sim;
pub use qgov_units as units;
pub use qgov_workloads as workloads;

pub mod prelude {
    //! The types almost every experiment needs.

    pub use qgov_bench::experiments::{
        run_fig3, run_fig3_with, run_long_horizon, run_long_horizon_monitored,
        run_long_horizon_monitored_with, run_long_horizon_with, run_shared_table_ablation,
        run_shared_table_ablation_with, run_smoothing_ablation, run_smoothing_ablation_with,
        run_state_levels_ablation, run_state_levels_ablation_with, run_table1, run_table1_with,
        run_table2, run_table2_with, run_table3, run_table3_with,
    };
    pub use qgov_bench::faultstorm::{
        fault_plan_from_env, fault_storm_app, fault_storm_drop_epoch, run_fault_storm,
        run_fault_storm_with, standard_fault_schedule, FaultStormResult, FaultStormRow,
        FAULTSTORM_GRACE,
    };
    pub use qgov_bench::fleet::{
        fleet_size_from_env, run_fleet, FleetEngine, FleetInstance, FleetOutcome, FleetSpec,
    };
    pub use qgov_bench::harness::{
        precharacterize, run_experiment, run_experiment_faulted, run_experiment_faulted_monitored,
        run_experiment_monitored, ExperimentOutcome,
    };
    pub use qgov_bench::hetero::{
        run_biglittle, run_biglittle_monitored, run_biglittle_monitored_with, run_biglittle_sweep,
        run_biglittle_sweep_with, run_biglittle_with, run_mesh_scaling, run_mesh_scaling_monitored,
        run_mesh_scaling_monitored_with, run_mesh_scaling_sweep, run_mesh_scaling_sweep_with,
        run_mesh_scaling_with, BigLittleResult, BigLittleRow, BigLittleSweep, BigLittleSweepRow,
        MeshRow, MeshScalingResult, MeshSweep, MeshSweepRow,
    };
    pub use qgov_bench::manycore::{
        run_manycore_experiment, run_manycore_experiment_faulted,
        run_manycore_experiment_faulted_monitored, run_manycore_experiment_monitored,
        ManyCoreOutcome,
    };
    pub use qgov_bench::runner::{frames_from_env, ExperimentBatch, RunnerConfig, RunnerMode};
    pub use qgov_bench::sweep::{
        run_fig3_sweep, run_fig3_sweep_with, run_long_horizon_monitored_sweep_with,
        run_long_horizon_sweep, run_long_horizon_sweep_with, run_shared_table_ablation_sweep,
        run_shared_table_ablation_sweep_with, run_smoothing_ablation_sweep,
        run_smoothing_ablation_sweep_with, run_state_levels_ablation_sweep,
        run_state_levels_ablation_sweep_with, run_table1_sweep, run_table1_sweep_with,
        run_table2_sweep, run_table2_sweep_with, run_table3_sweep, run_table3_sweep_with,
        Aggregate, SeedSweep,
    };
    pub use qgov_bench::worklist::{
        fleet_cell_app, fleet_cell_config, fleet_cell_platform, slug, CellMetrics, Family,
        WorkCell, WorkList,
    };
    pub use qgov_core::{
        EpochRecord, ExplorationKind, GreedyMigration, HardeningConfig, HistoryMode, ManyCoreRtm,
        MigrationConfig, PlausibilityFilter, RtmConfig, RtmGovernor, StateKind,
    };
    pub use qgov_governors::{
        ConservativeGovernor, EpochObservation, GeQiuConfig, GeQiuGovernor, Governor,
        GovernorContext, ManyCoreGovernor, ManyCoreObservation, OndemandGovernor, OracleGovernor,
        PerClusterGovernors, PerformanceGovernor, PowersaveGovernor, SchedutilGovernor,
        SlackTracker, UserspaceGovernor, VfDecision,
    };
    pub use qgov_metrics::{
        converged_miss_rate, epsilon_monotone, epsilon_reaches_floor, opp_step_bound,
        recovery_pack, standard_pack, thermal_cap, ComparisonTable, MetricSummary,
        MispredictionStats, MonitorReport, MonitorSample, OnlineStats, PackConfig, Property,
        PropertySet, PropertyVerdict, RecoveryConfig, RecoveryStats, RecoveryTracker, RunReport,
        SampleStats, Series, SweepFormat, SweepTable, Verdict, WindowSummary, WindowedStats,
    };
    pub use qgov_rl::{DecayingEpsilon, EpdPolicy, EwmaPredictor, Predictor, QTable, SlackReward};
    pub use qgov_sim::{
        Actuation, ClusterConfig, DvfsConfig, Fault, FaultInjector, FaultKind, FaultPlan,
        FrameResult, ManyCoreFrameResult, ManyCorePlatform, Opp, OppTable, Platform,
        PlatformConfig, SensorConfig, ThermalConfig, Topology, VfDomain, WorkSlice,
    };
    pub use qgov_units::{Cycles, Energy, Freq, Power, SimTime, Temp, Volt};
    pub use qgov_workloads::{
        capacity_shares, split_demand_into, suites, Application, CompositeWorkload, FftModel,
        FrameDemand, PhasedBenchmarkModel, ScratchDir, ShardWriter, ShardedTrace,
        SyntheticWorkload, ThreadDemand, TraceShard, VideoDecoderModel, WorkloadTrace,
    };
}
