//! The governor abstraction.

use qgov_sim::{FrameResult, OppTable};
use qgov_units::SimTime;

/// Static information a governor receives before the run starts.
#[derive(Debug, Clone)]
pub struct GovernorContext {
    opp_table: OppTable,
    cores: usize,
    period: SimTime,
}

impl GovernorContext {
    /// Creates a context.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `period` is zero.
    #[must_use]
    pub fn new(opp_table: OppTable, cores: usize, period: SimTime) -> Self {
        assert!(cores > 0, "a platform needs at least one core");
        assert!(!period.is_zero(), "the frame period must be non-zero");
        GovernorContext {
            opp_table,
            cores,
            period,
        }
    }

    /// The platform's operating-point table (the governor's action
    /// space).
    #[must_use]
    pub fn opp_table(&self) -> &OppTable {
        &self.opp_table
    }

    /// Number of cores under control.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The application's frame period (deadline `T_ref`).
    #[must_use]
    pub fn period(&self) -> SimTime {
        self.period
    }
}

/// Everything a governor observes at the end of a decision epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochObservation<'a> {
    /// Result of the frame that just completed.
    pub frame: &'a FrameResult,
    /// Zero-based index of the completed frame.
    pub epoch: u64,
}

/// A governor's actuation for the coming epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfDecision {
    /// Keep the current operating point(s).
    NoChange,
    /// Retarget the whole cluster to an OPP index.
    Cluster(usize),
    /// Retarget each core's domain individually (index per core). On
    /// shared-rail hardware the platform resolves this to the maximum —
    /// the same arbitration `cpufreq` applies to per-CPU requests within
    /// one policy.
    PerCore(Vec<usize>),
}

impl VfDecision {
    /// Resolves this decision to a single cluster OPP index for
    /// shared-rail hardware (`PerCore` resolves to its maximum;
    /// `NoChange` to `current`).
    #[must_use]
    pub fn resolve_cluster(&self, current: usize) -> usize {
        match self {
            VfDecision::NoChange => current,
            VfDecision::Cluster(i) => *i,
            VfDecision::PerCore(per) => per.iter().copied().max().unwrap_or(current),
        }
    }
}

/// A run-time power governor: observes completed decision epochs and
/// selects V-F settings for upcoming ones.
///
/// The contract mirrors a kernel `cpufreq` governor attached to a
/// frame-periodic application:
///
/// 1. [`init`](Governor::init) is called once before the first frame
///    and returns the starting operating point;
/// 2. after every completed frame, [`decide`](Governor::decide) is
///    called with the frame's [`EpochObservation`] and returns the
///    setting for the next frame;
/// 3. [`processing_overhead`](Governor::processing_overhead) reports
///    the governor's own per-epoch compute cost, which the harness
///    charges to the platform (the processing component of the paper's
///    `T_OVH`, Section III-D).
pub trait Governor {
    /// Short machine-readable name ("ondemand", "rtm", ...).
    fn name(&self) -> &str;

    /// Called once before the first frame; returns the initial setting.
    fn init(&mut self, ctx: &GovernorContext) -> VfDecision;

    /// Called after every completed frame; returns the setting for the
    /// next frame.
    fn decide(&mut self, obs: &EpochObservation<'_>) -> VfDecision;

    /// The governor's own per-epoch processing cost (sensor sampling +
    /// decision computation). Defaults to zero for trivial policies.
    fn processing_overhead(&self) -> SimTime {
        SimTime::ZERO
    }

    /// The current exploration rate, for governors that learn by
    /// ε-greedy action selection. `None` (the default) means the
    /// governor exposes no such notion; temporal monitors treat the
    /// matching properties as vacuous.
    fn exploration_epsilon(&self) -> Option<f64> {
        None
    }

    /// Whether the governor has converged to exploitation. `None` (the
    /// default) means the governor has no convergence notion.
    fn has_converged(&self) -> Option<bool> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_cluster_handles_all_variants() {
        assert_eq!(VfDecision::NoChange.resolve_cluster(7), 7);
        assert_eq!(VfDecision::Cluster(3).resolve_cluster(7), 3);
        assert_eq!(VfDecision::PerCore(vec![2, 9, 4, 1]).resolve_cluster(7), 9);
        assert_eq!(VfDecision::PerCore(vec![]).resolve_cluster(7), 7);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_context_panics() {
        let _ = GovernorContext::new(OppTable::odroid_xu3_a15(), 0, SimTime::from_ms(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_context_panics() {
        let _ = GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::ZERO);
    }
}
