//! DVFS governor framework and baseline governors.
//!
//! A *governor* observes each completed frame (decision epoch) and picks
//! the operating point(s) for the next one — exactly the role of a
//! `cpufreq` power governor in the Linux kernel, where the paper's RTM
//! is implemented. This crate defines the [`Governor`] trait plus the
//! baselines the paper compares against:
//!
//! * [`OndemandGovernor`] — the Linux ondemand heuristic \[5\] of
//!   Table I;
//! * [`GeQiuGovernor`] — "multi-core DVFS control" \[20\]: independent
//!   per-core Q-learners with uniform exploration and no cross-core
//!   learning transfer (Table I and Table III baseline);
//! * [`OracleGovernor`] — offline-optimal V-F per observed workload,
//!   the energy normalisation reference of Table I;
//! * [`ConservativeGovernor`], [`SchedutilGovernor`],
//!   [`PerformanceGovernor`], [`PowersaveGovernor`],
//!   [`UserspaceGovernor`] — the remaining stock Linux governors, for
//!   completeness and tests;
//! * [`SlackTracker`] — the average slack ratio `L` of Eq. 5, shared by
//!   the learning governors and the RTM in `qgov-core`.
//!
//! # Example
//!
//! ```
//! use qgov_governors::{Governor, GovernorContext, OndemandGovernor};
//! use qgov_sim::OppTable;
//! use qgov_units::SimTime;
//!
//! let ctx = GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40));
//! let mut gov = OndemandGovernor::linux_default();
//! let first = gov.init(&ctx);
//! assert!(format!("{first:?}").contains("Cluster"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conservative;
mod ge_qiu;
mod multi;
mod ondemand;
mod oracle;
mod schedutil;
mod simple;
mod slack;
mod traits;

pub use conservative::ConservativeGovernor;
pub use ge_qiu::{GeQiuConfig, GeQiuGovernor};
pub use multi::{ManyCoreGovernor, ManyCoreObservation, PerClusterGovernors};
pub use ondemand::OndemandGovernor;
pub use oracle::OracleGovernor;
pub use schedutil::SchedutilGovernor;
pub use simple::{PerformanceGovernor, PowersaveGovernor, UserspaceGovernor};
pub use slack::SlackTracker;
pub use traits::{EpochObservation, Governor, GovernorContext, VfDecision};
