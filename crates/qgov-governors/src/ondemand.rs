//! The Linux ondemand governor.
//!
//! Reimplementation of the classic `cpufreq` ondemand heuristic
//! (Pallipadi & Starikovskiy, OLS 2006 — reference \[5\] of the paper):
//! sample CPU load every period; if any CPU's load exceeds the
//! up-threshold, jump straight to the maximum frequency; otherwise set
//! the frequency proportional to load. The paper's Table I finds it
//! "agnostic of application performance requirements and hence consumes
//! the most energy" — it reacts to *utilisation*, not to deadlines.

use crate::{EpochObservation, Governor, GovernorContext, VfDecision};
use qgov_sim::OppTable;
use qgov_units::SimTime;

/// The ondemand governor.
///
/// # Examples
///
/// ```
/// use qgov_governors::OndemandGovernor;
///
/// let gov = OndemandGovernor::linux_default();
/// assert_eq!(gov.up_threshold(), 0.80);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OndemandGovernor {
    up_threshold: f64,
    sampling_down_factor: u32,
    table: Option<OppTable>,
    /// Remaining epochs to hold max frequency (sampling_down_factor).
    hold: u32,
}

impl OndemandGovernor {
    /// Creates an ondemand governor.
    ///
    /// `up_threshold` is the load fraction above which the governor
    /// jumps to maximum frequency; `sampling_down_factor` is the number
    /// of sampling periods the governor stays at maximum before
    /// re-evaluating (kernel default 1).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < up_threshold <= 1` and
    /// `sampling_down_factor >= 1`.
    #[must_use]
    pub fn new(up_threshold: f64, sampling_down_factor: u32) -> Self {
        assert!(
            up_threshold.is_finite() && up_threshold > 0.0 && up_threshold <= 1.0,
            "up_threshold must lie in (0, 1], got {up_threshold}"
        );
        assert!(
            sampling_down_factor >= 1,
            "sampling_down_factor must be >= 1"
        );
        OndemandGovernor {
            up_threshold,
            sampling_down_factor,
            table: None,
            hold: 0,
        }
    }

    /// The kernel defaults: `up_threshold = 80 %`,
    /// `sampling_down_factor = 1`.
    #[must_use]
    pub fn linux_default() -> Self {
        Self::new(0.80, 1)
    }

    /// The configured up-threshold.
    #[must_use]
    pub fn up_threshold(&self) -> f64 {
        self.up_threshold
    }
}

impl Governor for OndemandGovernor {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn init(&mut self, ctx: &GovernorContext) -> VfDecision {
        self.table = Some(ctx.opp_table().clone());
        self.hold = 0;
        // Like the kernel: start at the highest frequency and let load
        // drag it down.
        VfDecision::Cluster(ctx.opp_table().max_index())
    }

    fn decide(&mut self, obs: &EpochObservation<'_>) -> VfDecision {
        let table = self.table.as_ref().expect("init() must be called first");
        // Policy-wide load: the busiest CPU decides (kernel behaviour).
        let cores = obs.frame.per_core_busy.len();
        let load = (0..cores)
            .map(|c| obs.frame.utilization(c))
            .fold(0.0f64, f64::max);

        if load >= self.up_threshold {
            self.hold = self.sampling_down_factor;
            return VfDecision::Cluster(table.max_index());
        }
        if self.hold > 1 {
            // Recently maxed: hold before scaling down.
            self.hold -= 1;
            return VfDecision::Cluster(table.max_index());
        }
        self.hold = 0;
        // freq_next = max_freq * load, mapped up onto the table
        // (CPUFREQ_RELATION_L: lowest frequency at or above target).
        let target = table.max_freq().scale(load);
        VfDecision::Cluster(table.index_at_or_above(target))
    }

    fn processing_overhead(&self) -> SimTime {
        // A utilisation read and a multiply: effectively free next to a
        // learning governor, but not zero (kernel work + timer).
        SimTime::from_us(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::{FrameResult, OppTable};
    use qgov_units::{Cycles, Energy, Power, SimTime, Temp};

    fn frame_with_utils(utils: &[f64], period_ms: u64) -> FrameResult {
        let period = SimTime::from_ms(period_ms);
        let busy: Vec<SimTime> = utils.iter().map(|&u| period.scale(u)).collect();
        let frame_time = busy.iter().copied().fold(SimTime::ZERO, SimTime::max);
        FrameResult {
            frame_time,
            wall_time: period,
            period,
            overhead: SimTime::ZERO,
            per_core_busy: busy,
            per_core_cycles: vec![Cycles::from_mcycles(1); utils.len()],
            energy: Energy::from_joules(0.1),
            avg_power: Power::from_watts(1.0),
            measured_power: Power::from_watts(1.0),
            measured_energy: Energy::from_joules(0.1),
            temperature: Temp::default(),
            cluster_opp: 0,
        }
    }

    fn ctx() -> GovernorContext {
        GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40))
    }

    #[test]
    fn init_starts_at_max() {
        let mut g = OndemandGovernor::linux_default();
        assert_eq!(g.init(&ctx()), VfDecision::Cluster(18));
    }

    #[test]
    fn high_load_jumps_to_max() {
        let mut g = OndemandGovernor::linux_default();
        g.init(&ctx());
        let f = frame_with_utils(&[0.2, 0.95, 0.1, 0.3], 40);
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &f,
                epoch: 0
            }),
            VfDecision::Cluster(18),
            "busiest CPU above threshold must max out"
        );
    }

    #[test]
    fn moderate_load_scales_proportionally() {
        let mut g = OndemandGovernor::linux_default();
        g.init(&ctx());
        let f = frame_with_utils(&[0.5, 0.4, 0.3, 0.2], 40);
        // target = 2000 MHz * 0.5 = 1000 MHz -> index 8.
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &f,
                epoch: 0
            }),
            VfDecision::Cluster(8)
        );
    }

    #[test]
    fn tiny_load_goes_to_bottom() {
        let mut g = OndemandGovernor::linux_default();
        g.init(&ctx());
        let f = frame_with_utils(&[0.01, 0.0, 0.0, 0.0], 40);
        // target = 20 MHz -> lowest point (200 MHz).
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &f,
                epoch: 0
            }),
            VfDecision::Cluster(0)
        );
    }

    #[test]
    fn sampling_down_factor_holds_max() {
        let mut g = OndemandGovernor::new(0.8, 3);
        g.init(&ctx());
        let hot = frame_with_utils(&[1.0, 1.0, 1.0, 1.0], 40);
        let cold = frame_with_utils(&[0.1, 0.1, 0.1, 0.1], 40);
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &hot,
                epoch: 0
            }),
            VfDecision::Cluster(18)
        );
        // Two more epochs of holding despite low load...
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &cold,
                epoch: 1
            }),
            VfDecision::Cluster(18)
        );
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &cold,
                epoch: 2
            }),
            VfDecision::Cluster(18)
        );
        // ...then scaling down resumes.
        let down = g.decide(&EpochObservation {
            frame: &cold,
            epoch: 3,
        });
        assert_ne!(down, VfDecision::Cluster(18));
    }

    #[test]
    #[should_panic(expected = "up_threshold")]
    fn bad_threshold_panics() {
        let _ = OndemandGovernor::new(1.5, 1);
    }
}
