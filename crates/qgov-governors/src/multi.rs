//! Many-core governing: one coordinator over a topology of clusters.
//!
//! A [`ManyCoreGovernor`] is the chip-level analogue of [`Governor`]:
//! it observes every cluster's completed frame and picks each cluster's
//! next operating point, and it may also rebalance the *work shares* —
//! the fraction of each frame's demand placed on each cluster — which is
//! the task-migration seam. [`PerClusterGovernors`] is the baseline
//! coordinator: independent single-cluster governors with a fixed
//! placement, so classical policies stay comparable to learned ones on
//! heterogeneous topologies.

use crate::{
    ConservativeGovernor, EpochObservation, Governor, GovernorContext, OndemandGovernor,
    PerformanceGovernor, PowersaveGovernor, VfDecision,
};
use qgov_sim::FrameResult;
use qgov_units::SimTime;

/// Everything a many-core governor observes at the end of a decision
/// epoch: one completed [`FrameResult`] per cluster.
#[derive(Debug, Clone, Copy)]
pub struct ManyCoreObservation<'a> {
    /// Per-cluster results of the frame that just completed, in
    /// topology order.
    pub frames: &'a [FrameResult],
    /// Zero-based index of the completed frame.
    pub epoch: u64,
}

/// A chip-level governor: per-cluster V-F decisions plus optional work
/// migration between clusters.
///
/// The contract extends [`Governor`] to a topology:
///
/// 1. [`init`](ManyCoreGovernor::init) is called once with one
///    [`GovernorContext`] per cluster and fills `decisions` with the
///    starting operating point of each cluster;
/// 2. after every frame, [`decide_into`](ManyCoreGovernor::decide_into)
///    refills `decisions` (one entry per cluster) and may adjust
///    `shares` — the per-cluster work fractions the harness uses to
///    split the next frame's demand (they must stay non-negative and
///    sum to 1);
/// 3. [`processing_overhead`](ManyCoreGovernor::processing_overhead)
///    reports the per-epoch compute cost charged to one cluster.
///
/// Both decision methods write into caller-provided buffers so the
/// steady-state epoch stays allocation-free: implementations `clear`
/// and re-`push` `decisions` (cluster-level decisions are `Copy`-cheap
/// variants) and mutate `shares` in place.
pub trait ManyCoreGovernor {
    /// Short machine-readable name ("ondemand", "manycore-rtm", ...).
    fn name(&self) -> &str;

    /// Called once before the first frame with one context per cluster;
    /// fills `decisions` with each cluster's initial setting.
    fn init(&mut self, ctxs: &[GovernorContext], decisions: &mut Vec<VfDecision>);

    /// Called after every completed frame; refills `decisions` with
    /// each cluster's next setting and may rebalance `shares`
    /// (`shares.len()` equals the cluster count).
    fn decide_into(
        &mut self,
        obs: &ManyCoreObservation<'_>,
        decisions: &mut Vec<VfDecision>,
        shares: &mut [f64],
    );

    /// Per-epoch processing cost charged to `cluster`'s next frame.
    fn processing_overhead(&self, cluster: usize) -> SimTime {
        let _ = cluster;
        SimTime::ZERO
    }

    /// Chip-level exploration rate, for learned coordinators (the
    /// maximum over per-cluster agents, so it is still monotone
    /// non-increasing under each agent's decay). `None` (the default)
    /// means no such notion; temporal monitors treat the matching
    /// properties as vacuous.
    fn exploration_epsilon(&self) -> Option<f64> {
        None
    }

    /// Whether the coordinator as a whole has converged (all agents).
    /// `None` (the default) means no convergence notion.
    fn has_converged(&self) -> Option<bool> {
        None
    }

    /// Informs the coordinator that every core of `cluster` has failed
    /// permanently (fault injection or a real platform event). A
    /// hardened coordinator reacts — freezing the dead cluster's agent
    /// and redistributing its work share — while the default (a naive
    /// coordinator) ignores the notification and keeps learning from
    /// whatever the dead cluster appears to report.
    fn notify_cluster_dead(&mut self, cluster: usize) {
        let _ = cluster;
    }
}

/// Independent per-cluster governors with a static placement: cluster
/// `c` is governed by `governors[c]` exactly as it would be on a
/// single-cluster platform, and the work shares are never touched.
///
/// This is the fair heterogeneous baseline for every classical policy —
/// e.g. "ondemand on the big cluster and ondemand on the LITTLE
/// cluster" — and, with a single governor over a 1-cluster topology, the
/// bit-identity bridge back to the single-cluster harness.
pub struct PerClusterGovernors {
    name: String,
    governors: Vec<Box<dyn Governor>>,
}

impl PerClusterGovernors {
    /// Wraps one governor per cluster under a chip-level `name`.
    ///
    /// # Panics
    ///
    /// Panics if `governors` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, governors: Vec<Box<dyn Governor>>) -> Self {
        assert!(
            !governors.is_empty(),
            "a many-core governor needs at least one cluster"
        );
        PerClusterGovernors {
            name: name.into(),
            governors,
        }
    }

    /// Linux-default ondemand on every cluster.
    #[must_use]
    pub fn ondemand(clusters: usize) -> Self {
        Self::new(
            "ondemand",
            (0..clusters)
                .map(|_| Box::new(OndemandGovernor::linux_default()) as Box<dyn Governor>)
                .collect(),
        )
    }

    /// Linux-default conservative on every cluster.
    #[must_use]
    pub fn conservative(clusters: usize) -> Self {
        Self::new(
            "conservative",
            (0..clusters)
                .map(|_| Box::new(ConservativeGovernor::linux_default()) as Box<dyn Governor>)
                .collect(),
        )
    }

    /// Top operating point on every cluster.
    #[must_use]
    pub fn performance(clusters: usize) -> Self {
        Self::new(
            "performance",
            (0..clusters)
                .map(|_| Box::new(PerformanceGovernor::new()) as Box<dyn Governor>)
                .collect(),
        )
    }

    /// Bottom operating point on every cluster.
    #[must_use]
    pub fn powersave(clusters: usize) -> Self {
        Self::new(
            "powersave",
            (0..clusters)
                .map(|_| Box::new(PowersaveGovernor::new()) as Box<dyn Governor>)
                .collect(),
        )
    }

    /// Number of wrapped per-cluster governors.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.governors.len()
    }

    /// The governor attached to one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn governor(&self, cluster: usize) -> &dyn Governor {
        &*self.governors[cluster]
    }
}

impl core::fmt::Debug for PerClusterGovernors {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PerClusterGovernors")
            .field("name", &self.name)
            .field("clusters", &self.governors.len())
            .finish()
    }
}

impl ManyCoreGovernor for PerClusterGovernors {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, ctxs: &[GovernorContext], decisions: &mut Vec<VfDecision>) {
        assert_eq!(
            ctxs.len(),
            self.governors.len(),
            "one context per cluster governor"
        );
        decisions.clear();
        for (governor, ctx) in self.governors.iter_mut().zip(ctxs) {
            decisions.push(governor.init(ctx));
        }
    }

    fn decide_into(
        &mut self,
        obs: &ManyCoreObservation<'_>,
        decisions: &mut Vec<VfDecision>,
        _shares: &mut [f64],
    ) {
        decisions.clear();
        for (cluster, governor) in self.governors.iter_mut().enumerate() {
            decisions.push(governor.decide(&EpochObservation {
                frame: &obs.frames[cluster],
                epoch: obs.epoch,
            }));
        }
    }

    fn processing_overhead(&self, cluster: usize) -> SimTime {
        self.governors[cluster].processing_overhead()
    }

    /// The maximum ε over the per-cluster governors that report one;
    /// `None` when no wrapped governor explores.
    fn exploration_epsilon(&self) -> Option<f64> {
        self.governors
            .iter()
            .filter_map(|g| g.exploration_epsilon())
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Converged once every wrapped governor that *reports* convergence
    /// has converged; heuristic clusters (`None`) neither block nor
    /// satisfy it. `None` when no wrapped governor learns.
    fn has_converged(&self) -> Option<bool> {
        let mut any = false;
        for g in &self.governors {
            match g.has_converged() {
                Some(false) => return Some(false),
                Some(true) => any = true,
                None => {}
            }
        }
        any.then_some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::OppTable;
    use qgov_units::SimTime;

    fn contexts() -> Vec<GovernorContext> {
        vec![
            GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40)),
            GovernorContext::new(OppTable::odroid_xu3_a7(), 4, SimTime::from_ms(40)),
        ]
    }

    #[test]
    fn per_cluster_governors_decide_independently() {
        let mut chip = PerClusterGovernors::new(
            "mixed",
            vec![
                Box::new(PerformanceGovernor::new()),
                Box::new(PowersaveGovernor::new()),
            ],
        );
        let mut decisions = Vec::new();
        chip.init(&contexts(), &mut decisions);
        assert_eq!(
            decisions,
            vec![VfDecision::Cluster(18), VfDecision::Cluster(0)]
        );
        assert_eq!(chip.name(), "mixed");
        assert_eq!(chip.clusters(), 2);
    }

    #[test]
    fn static_placement_never_touches_shares() {
        let mut chip = PerClusterGovernors::ondemand(2);
        let mut decisions = Vec::new();
        chip.init(&contexts(), &mut decisions);

        let frames = vec![
            qgov_sim::FrameResult::empty(),
            qgov_sim::FrameResult::empty(),
        ];
        let mut shares = [0.7, 0.3];
        chip.decide_into(
            &ManyCoreObservation {
                frames: &frames,
                epoch: 0,
            },
            &mut decisions,
            &mut shares,
        );
        assert_eq!(decisions.len(), 2);
        assert_eq!(shares, [0.7, 0.3]);
        // Overheads forward to the wrapped per-cluster governor.
        assert_eq!(
            chip.processing_overhead(0),
            chip.governor(0).processing_overhead()
        );
    }
}
