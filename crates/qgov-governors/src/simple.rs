//! The trivial stock governors: performance, powersave, userspace.

use crate::{EpochObservation, Governor, GovernorContext, VfDecision};

/// Always runs at the highest operating point (Linux `performance`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerformanceGovernor {
    top: usize,
}

impl PerformanceGovernor {
    /// Creates the governor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Governor for PerformanceGovernor {
    fn name(&self) -> &str {
        "performance"
    }

    fn init(&mut self, ctx: &GovernorContext) -> VfDecision {
        self.top = ctx.opp_table().max_index();
        VfDecision::Cluster(self.top)
    }

    fn decide(&mut self, _obs: &EpochObservation<'_>) -> VfDecision {
        VfDecision::NoChange
    }
}

/// Always runs at the lowest operating point (Linux `powersave`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PowersaveGovernor;

impl PowersaveGovernor {
    /// Creates the governor.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Governor for PowersaveGovernor {
    fn name(&self) -> &str {
        "powersave"
    }

    fn init(&mut self, _ctx: &GovernorContext) -> VfDecision {
        VfDecision::Cluster(0)
    }

    fn decide(&mut self, _obs: &EpochObservation<'_>) -> VfDecision {
        VfDecision::NoChange
    }
}

/// Pins a caller-chosen operating point (Linux `userspace`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserspaceGovernor {
    index: usize,
}

impl UserspaceGovernor {
    /// Creates a governor pinned to OPP `index` (clamped to the table at
    /// [`init`](Governor::init)).
    #[must_use]
    pub fn pinned(index: usize) -> Self {
        UserspaceGovernor { index }
    }
}

impl Governor for UserspaceGovernor {
    fn name(&self) -> &str {
        "userspace"
    }

    fn init(&mut self, ctx: &GovernorContext) -> VfDecision {
        self.index = self.index.min(ctx.opp_table().max_index());
        VfDecision::Cluster(self.index)
    }

    fn decide(&mut self, _obs: &EpochObservation<'_>) -> VfDecision {
        VfDecision::NoChange
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::OppTable;
    use qgov_units::SimTime;

    fn ctx() -> GovernorContext {
        GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40))
    }

    #[test]
    fn performance_picks_top() {
        let mut g = PerformanceGovernor::new();
        assert_eq!(g.init(&ctx()), VfDecision::Cluster(18));
        assert_eq!(g.name(), "performance");
    }

    #[test]
    fn powersave_picks_bottom() {
        let mut g = PowersaveGovernor::new();
        assert_eq!(g.init(&ctx()), VfDecision::Cluster(0));
    }

    #[test]
    fn userspace_pins_and_clamps() {
        let mut g = UserspaceGovernor::pinned(10);
        assert_eq!(g.init(&ctx()), VfDecision::Cluster(10));
        let mut g = UserspaceGovernor::pinned(99);
        assert_eq!(g.init(&ctx()), VfDecision::Cluster(18), "clamped to table");
    }
}
