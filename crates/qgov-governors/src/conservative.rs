//! The Linux conservative governor.
//!
//! Like ondemand but "gracefully increases and decreases the CPU speed
//! rather than jumping to max speed" — it moves by a fixed frequency
//! step when the load crosses the up/down thresholds. Included for
//! completeness of the stock-governor family; not part of the paper's
//! comparison tables.

use crate::{EpochObservation, Governor, GovernorContext, VfDecision};
use qgov_sim::OppTable;
use qgov_units::{Freq, SimTime};

/// The conservative governor.
#[derive(Debug, Clone, PartialEq)]
pub struct ConservativeGovernor {
    up_threshold: f64,
    down_threshold: f64,
    /// Step as a fraction of the maximum frequency (kernel default 5 %).
    freq_step: f64,
    table: Option<OppTable>,
    current: usize,
}

impl ConservativeGovernor {
    /// Creates a conservative governor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < down_threshold < up_threshold <= 1` and
    /// `0 < freq_step <= 1`.
    #[must_use]
    pub fn new(up_threshold: f64, down_threshold: f64, freq_step: f64) -> Self {
        assert!(
            up_threshold.is_finite() && down_threshold.is_finite() && freq_step.is_finite(),
            "thresholds must be finite"
        );
        assert!(
            0.0 < down_threshold && down_threshold < up_threshold && up_threshold <= 1.0,
            "need 0 < down_threshold < up_threshold <= 1"
        );
        assert!(
            0.0 < freq_step && freq_step <= 1.0,
            "freq_step must lie in (0, 1]"
        );
        ConservativeGovernor {
            up_threshold,
            down_threshold,
            freq_step,
            table: None,
            current: 0,
        }
    }

    /// Kernel defaults: up 80 %, down 20 %, step 5 % of max frequency.
    #[must_use]
    pub fn linux_default() -> Self {
        Self::new(0.80, 0.20, 0.05)
    }
}

impl Governor for ConservativeGovernor {
    fn name(&self) -> &str {
        "conservative"
    }

    fn init(&mut self, ctx: &GovernorContext) -> VfDecision {
        self.table = Some(ctx.opp_table().clone());
        // Conservative starts low and works its way up.
        self.current = 0;
        VfDecision::Cluster(0)
    }

    fn decide(&mut self, obs: &EpochObservation<'_>) -> VfDecision {
        let table = self.table.as_ref().expect("init() must be called first");
        let cores = obs.frame.per_core_busy.len();
        let load = (0..cores)
            .map(|c| obs.frame.utilization(c))
            .fold(0.0f64, f64::max);

        let step_khz = (table.max_freq().khz() as f64 * self.freq_step) as u64;
        let cur_freq = table.get(self.current).expect("current index valid").freq;

        if load >= self.up_threshold {
            let target = Freq::from_khz(cur_freq.khz() + step_khz);
            self.current = table.index_at_or_above(target);
        } else if load <= self.down_threshold {
            let target = Freq::from_khz(cur_freq.khz().saturating_sub(step_khz));
            self.current = table.index_at_or_below(target);
        }
        VfDecision::Cluster(self.current)
    }

    fn processing_overhead(&self) -> SimTime {
        SimTime::from_us(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::{FrameResult, OppTable};
    use qgov_units::{Cycles, Energy, Power, SimTime, Temp};

    fn frame_with_load(load: f64) -> FrameResult {
        let period = SimTime::from_ms(40);
        FrameResult {
            frame_time: period.scale(load),
            wall_time: period,
            period,
            overhead: SimTime::ZERO,
            per_core_busy: vec![period.scale(load); 4],
            per_core_cycles: vec![Cycles::from_mcycles(1); 4],
            energy: Energy::from_joules(0.1),
            avg_power: Power::from_watts(1.0),
            measured_power: Power::from_watts(1.0),
            measured_energy: Energy::from_joules(0.1),
            temperature: Temp::default(),
            cluster_opp: 0,
        }
    }

    fn ctx() -> GovernorContext {
        GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40))
    }

    #[test]
    fn climbs_gradually_under_load() {
        let mut g = ConservativeGovernor::linux_default();
        g.init(&ctx());
        let hot = frame_with_load(0.95);
        let first = g.decide(&EpochObservation {
            frame: &hot,
            epoch: 0,
        });
        // One 5 % step of 2000 MHz = 100 MHz: from 200 to 300 MHz (idx 1).
        assert_eq!(first, VfDecision::Cluster(1));
        let second = g.decide(&EpochObservation {
            frame: &hot,
            epoch: 1,
        });
        assert_eq!(second, VfDecision::Cluster(2));
    }

    #[test]
    fn descends_gradually_when_idle() {
        let mut g = ConservativeGovernor::linux_default();
        g.init(&ctx());
        let hot = frame_with_load(0.95);
        for e in 0..18 {
            g.decide(&EpochObservation {
                frame: &hot,
                epoch: e,
            });
        }
        let cold = frame_with_load(0.05);
        let d = g.decide(&EpochObservation {
            frame: &cold,
            epoch: 20,
        });
        // 18 hot epochs climbed 100 MHz each: 200 -> 2000 MHz (index 18);
        // one cold epoch steps 100 MHz back down to 1900 MHz.
        assert_eq!(d, VfDecision::Cluster(17), "one step down from 18");
    }

    #[test]
    fn holds_in_the_comfort_band() {
        let mut g = ConservativeGovernor::linux_default();
        g.init(&ctx());
        let mid = frame_with_load(0.5);
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &mid,
                epoch: 0
            }),
            VfDecision::Cluster(0)
        );
    }

    #[test]
    fn saturates_at_table_ends() {
        let mut g = ConservativeGovernor::linux_default();
        g.init(&ctx());
        let cold = frame_with_load(0.01);
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &cold,
                epoch: 0
            }),
            VfDecision::Cluster(0),
            "cannot go below the bottom"
        );
        let hot = frame_with_load(1.0);
        for e in 0..40 {
            g.decide(&EpochObservation {
                frame: &hot,
                epoch: e,
            });
        }
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &hot,
                epoch: 41
            }),
            VfDecision::Cluster(18),
            "cannot go above the top"
        );
    }

    #[test]
    #[should_panic(expected = "down_threshold")]
    fn inverted_thresholds_panic() {
        let _ = ConservativeGovernor::new(0.2, 0.8, 0.05);
    }
}
