//! The Linux schedutil governor.
//!
//! Since v4.7 the kernel's default governor: it maps utilisation
//! straight to frequency with fixed headroom,
//! `f_next = 1.25 · f_max · util`, re-evaluated every scheduling period
//! with an optional down-rate limit. Not part of the paper's 2017
//! comparison (ondemand was still the reference), but the natural
//! modern baseline for anyone extending this work.

use crate::{EpochObservation, Governor, GovernorContext, VfDecision};
use qgov_sim::OppTable;
use qgov_units::SimTime;

/// The schedutil governor.
///
/// # Examples
///
/// ```
/// use qgov_governors::SchedutilGovernor;
///
/// let gov = SchedutilGovernor::linux_default();
/// assert!((gov.headroom() - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchedutilGovernor {
    headroom: f64,
    /// Epochs a lower request must persist before being honoured
    /// (mimics the kernel's down-rate limiting; 0 = immediate).
    down_rate_limit: u32,
    table: Option<OppTable>,
    current: usize,
    pending_down: Option<(usize, u32)>,
}

impl SchedutilGovernor {
    /// Creates a schedutil governor with the given utilisation headroom
    /// multiplier and down-rate limit (in decision epochs).
    ///
    /// # Panics
    ///
    /// Panics unless `headroom >= 1`.
    #[must_use]
    pub fn new(headroom: f64, down_rate_limit: u32) -> Self {
        assert!(
            headroom.is_finite() && headroom >= 1.0,
            "headroom must be at least 1, got {headroom}"
        );
        SchedutilGovernor {
            headroom,
            down_rate_limit,
            table: None,
            current: 0,
            pending_down: None,
        }
    }

    /// Kernel defaults: 25 % headroom (`util + util/4`), one-epoch
    /// down-rate limit.
    #[must_use]
    pub fn linux_default() -> Self {
        Self::new(1.25, 1)
    }

    /// The headroom multiplier applied to utilisation.
    #[must_use]
    pub fn headroom(&self) -> f64 {
        self.headroom
    }
}

impl Governor for SchedutilGovernor {
    fn name(&self) -> &str {
        "schedutil"
    }

    fn init(&mut self, ctx: &GovernorContext) -> VfDecision {
        self.table = Some(ctx.opp_table().clone());
        self.current = ctx.opp_table().max_index();
        self.pending_down = None;
        VfDecision::Cluster(self.current)
    }

    fn decide(&mut self, obs: &EpochObservation<'_>) -> VfDecision {
        let table = self.table.as_ref().expect("init() must be called first");
        let cores = obs.frame.per_core_busy.len();
        let util = (0..cores)
            .map(|c| obs.frame.utilization(c))
            .fold(0.0f64, f64::max);

        // f_next = headroom * f_max * util, mapped up onto the table.
        let target_freq = table.max_freq().scale((self.headroom * util).min(1.0));
        let target = table.index_at_or_above(target_freq);

        let next = if target >= self.current {
            // Up-scaling is immediate (kernel behaviour).
            self.pending_down = None;
            target
        } else {
            // Down-scaling must persist for down_rate_limit epochs.
            match self.pending_down {
                Some((pending, age)) => {
                    let pending = pending.max(target);
                    if age + 1 >= self.down_rate_limit {
                        self.pending_down = None;
                        pending
                    } else {
                        self.pending_down = Some((pending, age + 1));
                        self.current
                    }
                }
                None => {
                    if self.down_rate_limit == 0 {
                        target
                    } else {
                        self.pending_down = Some((target, 0));
                        self.current
                    }
                }
            }
        };
        self.current = next;
        VfDecision::Cluster(next)
    }

    fn processing_overhead(&self) -> SimTime {
        // A multiply and a table walk inside the scheduler tick.
        SimTime::from_us(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::{FrameResult, OppTable};
    use qgov_units::{Cycles, Energy, Power, SimTime, Temp};

    fn frame_with_load(load: f64) -> FrameResult {
        let period = SimTime::from_ms(40);
        FrameResult {
            frame_time: period.scale(load),
            wall_time: period,
            period,
            overhead: SimTime::ZERO,
            per_core_busy: vec![period.scale(load); 4],
            per_core_cycles: vec![Cycles::from_mcycles(1); 4],
            energy: Energy::from_joules(0.1),
            avg_power: Power::from_watts(1.0),
            measured_power: Power::from_watts(1.0),
            measured_energy: Energy::from_joules(0.1),
            temperature: Temp::default(),
            cluster_opp: 0,
        }
    }

    fn ctx() -> GovernorContext {
        GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40))
    }

    #[test]
    fn maps_utilisation_with_headroom() {
        let mut g = SchedutilGovernor::new(1.25, 0);
        g.init(&ctx());
        // util 0.4: target = 1.25 * 2000 * 0.4 = 1000 MHz -> index 8.
        let f = frame_with_load(0.4);
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &f,
                epoch: 0
            }),
            VfDecision::Cluster(8)
        );
    }

    #[test]
    fn saturates_at_max_for_high_load() {
        let mut g = SchedutilGovernor::new(1.25, 0);
        g.init(&ctx());
        let f = frame_with_load(0.95);
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &f,
                epoch: 0
            }),
            VfDecision::Cluster(18)
        );
    }

    #[test]
    fn up_scaling_is_immediate_down_scaling_is_rate_limited() {
        let mut g = SchedutilGovernor::linux_default();
        g.init(&ctx());
        // Settle low first (down-rate limit 1 epoch): request 0.1 twice.
        let low = frame_with_load(0.1);
        let first = g.decide(&EpochObservation {
            frame: &low,
            epoch: 0,
        });
        assert_eq!(first, VfDecision::Cluster(18), "held for one epoch");
        // util 0.1: target = 1.25 * 2000 * 0.1 = 250 MHz -> 300 MHz (index 1).
        let second = g.decide(&EpochObservation {
            frame: &low,
            epoch: 1,
        });
        assert_eq!(second, VfDecision::Cluster(1), "honoured after the limit");
        // A load spike scales up instantly.
        let high = frame_with_load(0.9);
        let third = g.decide(&EpochObservation {
            frame: &high,
            epoch: 2,
        });
        assert_eq!(third, VfDecision::Cluster(18));
    }

    #[test]
    fn zero_rate_limit_downscales_immediately() {
        let mut g = SchedutilGovernor::new(1.25, 0);
        g.init(&ctx());
        let low = frame_with_load(0.05);
        // 1.25 * 2000 * 0.05 = 125 MHz -> lowest point.
        assert_eq!(
            g.decide(&EpochObservation {
                frame: &low,
                epoch: 0
            }),
            VfDecision::Cluster(0)
        );
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn sub_unity_headroom_panics() {
        let _ = SchedutilGovernor::new(0.9, 1);
    }
}
