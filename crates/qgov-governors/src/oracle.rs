//! The offline Oracle governor — Table I's normalisation reference.
//!
//! "Energy normalization is carried out with respect to Oracle (through
//! offline determination of optimized V-F for the observed CPU
//! workloads)" (Section III-A). Given the full workload trace in
//! advance, the Oracle picks, for every frame, the lowest operating
//! point that still meets the deadline — the minimum-energy choice under
//! a convex power model.

use crate::{EpochObservation, Governor, GovernorContext, VfDecision};
use qgov_sim::OppTable;
use qgov_units::SimTime;
use qgov_workloads::{Application, FrameDemand, WorkloadTrace};

/// The clairvoyant minimum-energy governor.
///
/// # Examples
///
/// ```
/// use qgov_governors::OracleGovernor;
/// use qgov_sim::OppTable;
/// use qgov_workloads::{SyntheticWorkload, WorkloadTrace};
/// use qgov_units::{Cycles, SimTime};
///
/// let mut app = SyntheticWorkload::constant(
///     "c", Cycles::from_mcycles(40), SimTime::from_ms(40), 10, 4, 0,
/// );
/// let trace = WorkloadTrace::record(&mut app);
/// let oracle = OracleGovernor::from_trace(&trace, &OppTable::odroid_xu3_a15(), 0.02);
/// // 10 Mcycles/thread in 40 ms needs only ~256 MHz: the oracle picks a
/// // low operating point for every frame.
/// assert!(oracle.schedule().iter().all(|&opp| opp <= 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleGovernor {
    schedule: Vec<usize>,
    cursor: usize,
}

impl OracleGovernor {
    /// Precomputes the per-frame schedule from a recorded trace.
    ///
    /// `margin` is the fraction of the period reserved as headroom for
    /// V-F transition latency and timer jitter (2 % is plenty for the
    /// XU3's ≈ 50 µs transitions against ≥ 30 ms frames).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ margin < 1`.
    #[must_use]
    pub fn from_trace(trace: &WorkloadTrace, table: &OppTable, margin: f64) -> Self {
        assert!(
            margin.is_finite() && (0.0..1.0).contains(&margin),
            "margin must lie in [0, 1), got {margin}"
        );
        let raw = trace.period();
        let margined = raw.scale(1.0 - margin);
        // Two budgets per frame: the raw deadline (what a miss is measured
        // against) and the margined one (headroom for V-F transition
        // latency and timer jitter). Prefer the margined choice, but never
        // exceed the raw-minimal peak: the margin must not inflate the
        // schedule's busiest choice past what the deadline itself demands,
        // otherwise the Oracle stops being the minimal sufficient schedule
        // (an OPP one below its peak could still meet every deadline).
        // Frames capped this way run with less than the requested margin —
        // acceptable because the real transition cost (~50 µs) is far
        // below the margins in practical use (2 % of a ≥ 30 ms period).
        let cap = trace
            .frame_demands()
            .iter()
            .map(|frame| Self::min_opp_for(frame, table, raw))
            .max()
            .unwrap_or(0);
        let schedule = trace
            .frame_demands()
            .iter()
            .map(|frame| Self::min_opp_for(frame, table, margined).min(cap))
            .collect();
        OracleGovernor {
            schedule,
            cursor: 0,
        }
    }

    /// Records `app`'s full run and precomputes the schedule (the
    /// application is reset afterwards).
    #[must_use]
    pub fn for_app(app: &mut dyn Application, table: &OppTable, margin: f64) -> Self {
        let trace = WorkloadTrace::record(app);
        Self::from_trace(&trace, table, margin)
    }

    /// The lowest OPP index whose barrier time fits in `budget`, or the
    /// top index if none does.
    fn min_opp_for(frame: &FrameDemand, table: &OppTable, budget: SimTime) -> usize {
        for (i, opp) in table.iter().enumerate() {
            let barrier = frame
                .threads
                .iter()
                .map(|t| t.cpu_cycles.time_at(opp.freq) + t.mem_time)
                .fold(SimTime::ZERO, SimTime::max);
            if barrier <= budget {
                return i;
            }
        }
        table.max_index()
    }

    /// The precomputed per-frame OPP schedule.
    #[must_use]
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }
}

impl Governor for OracleGovernor {
    fn name(&self) -> &str {
        "oracle"
    }

    fn init(&mut self, _ctx: &GovernorContext) -> VfDecision {
        self.cursor = 0;
        VfDecision::Cluster(self.schedule.first().copied().unwrap_or(0))
    }

    fn decide(&mut self, obs: &EpochObservation<'_>) -> VfDecision {
        // Frame `epoch` completed; set up for frame `epoch + 1`.
        let next = (obs.epoch as usize + 1).min(self.schedule.len().saturating_sub(1));
        self.cursor = next;
        VfDecision::Cluster(self.schedule[next])
    }

    // The Oracle is free at run time: all work happened offline.
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_units::Cycles;
    use qgov_workloads::{SyntheticWorkload, ThreadDemand};

    fn table() -> OppTable {
        OppTable::odroid_xu3_a15()
    }

    fn demand(mcycles_per_thread: u64) -> FrameDemand {
        FrameDemand::new(vec![
            ThreadDemand::cpu_only(Cycles::from_mcycles(
                mcycles_per_thread
            ));
            4
        ])
    }

    #[test]
    fn picks_minimum_sufficient_opp() {
        // 20 Mcycles in <= 40 ms needs >= 500 MHz: index 3.
        let opp = OracleGovernor::min_opp_for(&demand(20), &table(), SimTime::from_ms(40));
        assert_eq!(opp, 3);
        // 2 Mcycles in 40 ms: 50 MHz would do, lowest point (200 MHz) wins.
        let opp = OracleGovernor::min_opp_for(&demand(2), &table(), SimTime::from_ms(40));
        assert_eq!(opp, 0);
    }

    #[test]
    fn infeasible_frames_get_the_top_point() {
        // 200 Mcycles in 40 ms needs 5 GHz: impossible, so top index.
        let opp = OracleGovernor::min_opp_for(&demand(200), &table(), SimTime::from_ms(40));
        assert_eq!(opp, 18);
    }

    #[test]
    fn memory_time_is_counted_against_the_budget() {
        let frame = FrameDemand::new(vec![
            ThreadDemand::new(
                Cycles::from_mcycles(20),
                SimTime::from_ms(20)
            );
            4
        ]);
        // 20 ms memory + 20 Mcycles CPU in 40 ms => CPU must fit in
        // 20 ms => >= 1000 MHz (index 8).
        let opp = OracleGovernor::min_opp_for(&frame, &table(), SimTime::from_ms(40));
        assert_eq!(opp, 8);
    }

    #[test]
    fn schedule_tracks_varying_workload() {
        let mut app = SyntheticWorkload::square(
            "sq",
            Cycles::from_mcycles(16), // 4 Mc/thread low, 16 Mc/thread high
            4.0,
            5,
            SimTime::from_ms(40),
            20,
            4,
            0,
        );
        let oracle = OracleGovernor::for_app(&mut app, &table(), 0.0);
        let schedule = oracle.schedule();
        assert_eq!(schedule.len(), 20);
        // Low phase needs 100 MHz -> index 0; high phase needs 400 MHz.
        assert!(schedule[0] < schedule[7], "{schedule:?}");
        assert_eq!(&schedule[0..5], &[0; 5]);
    }

    #[test]
    fn margin_pushes_the_choice_up() {
        // 39.9 ms of work at index 3 in a 40 ms period: fits with no
        // margin, not with 5 %.
        let tight = demand(20); // at 500 MHz: exactly 40 ms
        let none = OracleGovernor::min_opp_for(&tight, &table(), SimTime::from_ms(40));
        let with_margin =
            OracleGovernor::min_opp_for(&tight, &table(), SimTime::from_ms(40).scale(0.95));
        assert!(with_margin > none);
    }

    #[test]
    fn governor_walks_the_schedule() {
        use qgov_sim::{Platform, PlatformConfig, WorkSlice};
        let mut app = SyntheticWorkload::square(
            "sq",
            Cycles::from_mcycles(16),
            4.0,
            3,
            SimTime::from_ms(40),
            12,
            4,
            0,
        );
        let mut oracle = OracleGovernor::for_app(&mut app, &table(), 0.02);
        let expected: Vec<usize> = oracle.schedule().to_vec();
        let ctx = GovernorContext::new(table(), 4, SimTime::from_ms(40));
        let first = oracle.init(&ctx);
        assert_eq!(first, VfDecision::Cluster(expected[0]));

        // Drive with real frames and check the walk.
        let mut platform = Platform::new(PlatformConfig::odroid_xu3_a15()).unwrap();
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(1)); 4];
        for epoch in 0..11u64 {
            let frame = platform.run_frame(&work, SimTime::from_ms(40)).unwrap();
            let d = oracle.decide(&EpochObservation {
                frame: &frame,
                epoch,
            });
            assert_eq!(d, VfDecision::Cluster(expected[epoch as usize + 1]));
        }
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn bad_margin_panics() {
        let mut app = SyntheticWorkload::constant(
            "c",
            Cycles::from_mcycles(1),
            SimTime::from_ms(40),
            2,
            1,
            0,
        );
        let trace = WorkloadTrace::record(&mut app);
        let _ = OracleGovernor::from_trace(&trace, &table(), 1.0);
    }
}
