//! The "multi-core DVFS control" baseline — reference \[20\] of the
//! paper (Ge & Qiu, DAC 2011).
//!
//! Ge & Qiu manage each core with an *independent* Q-learning agent and
//! plain uniform exploration; there is no cross-core learning transfer
//! and no slack-aware exploration bias. The paper's comparison keeps the
//! scheme's thermal constraint disabled ("the thermal constraint was
//! neglected for equivalence of comparison", Section III-A). Two
//! consequences the paper measures:
//!
//! * **Table I** — it "over-performs due to poor adaptation to
//!   variations" (normalised performance 0.89, energy 1.20): each
//!   per-core agent learns against rewards corrupted by its siblings'
//!   choices (on a shared rail the fastest request wins), so agents
//!   hedge towards higher frequencies;
//! * **Table III** — convergence takes roughly twice as many decision
//!   epochs (205 vs 105), because every core must learn its own table
//!   from scratch.

use crate::{EpochObservation, Governor, GovernorContext, SlackTracker, VfDecision};
use qgov_rl::Discretizer as _;
use qgov_rl::{
    ActionSpace, AgentConfig, DecayingEpsilon, QLearningAgent, RewardFn, SlackReward,
    UniformDiscretizer, UniformPolicy,
};
use qgov_units::SimTime;

/// Configuration of the per-core learners.
#[derive(Debug, Clone, PartialEq)]
pub struct GeQiuConfig {
    /// Discretisation levels for the per-core utilisation state.
    pub levels: usize,
    /// Q-learning rate α.
    pub alpha: f64,
    /// Q-learning discount factor.
    pub discount: f64,
    /// Exploration schedule (standard, not the accelerated Eq. 6).
    pub epsilon: DecayingEpsilon,
    /// Reward shaping; the preset penalises over-performance only
    /// weakly, matching the scheme's performance-first objective.
    pub reward: SlackReward,
    /// Quiet-window length for convergence detection (epochs).
    pub convergence_window: u64,
    /// Optimistic initial-Q gradient towards high frequencies (matches
    /// the scheme's performance-first boot).
    pub optimistic_gradient: f64,
    /// RNG seed (each core derives its own stream).
    pub seed: u64,
}

impl GeQiuConfig {
    /// The configuration used for the paper-comparison experiments.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        GeQiuConfig {
            levels: 8,
            alpha: 0.3,
            discount: 0.5,
            // Slower decay than the RTM's accelerated schedule.
            epsilon: DecayingEpsilon::new(1.0, 0.02, 0.01).expect("valid schedule"),
            reward: SlackReward::new(10.0, 2.0, 0.4).expect("valid reward"),
            convergence_window: 20,
            optimistic_gradient: 0.05,
            seed,
        }
    }
}

/// Per-core independent Q-learning DVFS control.
///
/// # Examples
///
/// ```
/// use qgov_governors::{GeQiuConfig, GeQiuGovernor, Governor, GovernorContext};
/// use qgov_sim::OppTable;
/// use qgov_units::SimTime;
///
/// let mut gov = GeQiuGovernor::new(GeQiuConfig::paper(1));
/// let ctx = GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40));
/// gov.init(&ctx);
/// assert_eq!(gov.name(), "geqiu");
/// ```
#[derive(Debug)]
pub struct GeQiuGovernor {
    config: GeQiuConfig,
    agents: Vec<QLearningAgent>,
    util_levels: Option<UniformDiscretizer>,
    slack: SlackTracker,
    last_frame_slack: f64,
    actions: usize,
}

impl GeQiuGovernor {
    /// Creates the governor (agents are built in
    /// [`init`](Governor::init), when the core count and action space
    /// are known).
    #[must_use]
    pub fn new(config: GeQiuConfig) -> Self {
        assert!(config.levels > 0, "need at least one utilisation level");
        GeQiuGovernor {
            config,
            agents: Vec::new(),
            util_levels: None,
            slack: SlackTracker::windowed(10),
            last_frame_slack: 0.0,
            actions: 0,
        }
    }

    /// First epoch at which *all* per-core agents had converged, if they
    /// all have — the paper's Table III learning-overhead measure.
    #[must_use]
    pub fn converged_at(&self) -> Option<u64> {
        self.agents
            .iter()
            .map(QLearningAgent::converged_at)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// Total exploratory selections across all cores.
    #[must_use]
    pub fn exploration_count(&self) -> u64 {
        self.agents
            .iter()
            .map(QLearningAgent::exploration_count)
            .sum()
    }

    /// Length of the exploration phase in decision epochs (how long the
    /// ε schedule takes to reach its floor) — the period during which
    /// every epoch pays the full learning overhead.
    #[must_use]
    pub fn exploration_phase_epochs(&self) -> u64 {
        self.config.epsilon.epochs_to_floor()
    }
}

impl Governor for GeQiuGovernor {
    fn name(&self) -> &str {
        "geqiu"
    }

    fn init(&mut self, ctx: &GovernorContext) -> VfDecision {
        let freqs = ctx.opp_table().freqs_ghz();
        self.actions = freqs.len();
        let action_space = ActionSpace::from_freqs_ghz(&freqs);
        let agent_config = AgentConfig {
            alpha: self.config.alpha,
            discount: self.config.discount,
            epsilon: self.config.epsilon.clone(),
            convergence_window: self.config.convergence_window,
            optimistic_gradient: self.config.optimistic_gradient,
        };
        self.agents = (0..ctx.cores())
            .map(|core| {
                QLearningAgent::with_policy(
                    agent_config.clone(),
                    self.config.levels,
                    action_space.clone(),
                    Box::new(UniformPolicy::new()),
                    self.config
                        .seed
                        .wrapping_add(core as u64)
                        .wrapping_mul(0x9E37_79B9),
                )
            })
            .collect();
        self.util_levels = Some(
            UniformDiscretizer::new(0.0, 1.0 + 1e-9, self.config.levels)
                .expect("valid utilisation range"),
        );
        self.slack.reset();
        self.last_frame_slack = 0.0;
        // Performance-first initialisation: start at the top.
        VfDecision::Cluster(ctx.opp_table().max_index())
    }

    fn decide(&mut self, obs: &EpochObservation<'_>) -> VfDecision {
        let levels = self
            .util_levels
            .as_ref()
            .expect("init() must be called first");
        // Instantaneous frame slack for the pay-off level term (clean
        // per-action credit); the tracker supplies the smoothed value
        // fed to the agents' (unused-by-UPD) slack input.
        let frame_slack = obs.frame.frame_slack().clamp(-1.0, 1.0);
        let prev_frame_slack = self.last_frame_slack;
        self.last_frame_slack = frame_slack;
        self.slack.observe(frame_slack);
        let reward = self.config.reward.reward(frame_slack, prev_frame_slack);

        let cores = self.agents.len();
        let mut choices = Vec::with_capacity(cores);
        for core in 0..cores {
            let state = levels.level_of(obs.frame.utilization(core));
            // UPD ignores the slack argument; pass the live value anyway.
            let action = self.agents[core].begin_epoch(state, reward, self.slack.average());
            choices.push(action);
        }
        VfDecision::PerCore(choices)
    }

    fn processing_overhead(&self) -> SimTime {
        // Four independent agents: sensor read + Bellman update + argmax
        // per core.
        SimTime::from_us(10) * self.agents.len().max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::{OppTable, Platform, PlatformConfig, SensorConfig, WorkSlice};
    use qgov_units::Cycles;

    fn ctx() -> GovernorContext {
        GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40))
    }

    #[test]
    fn init_builds_one_agent_per_core() {
        let mut gov = GeQiuGovernor::new(GeQiuConfig::paper(3));
        let d = gov.init(&ctx());
        assert_eq!(d, VfDecision::Cluster(18));
        assert_eq!(gov.agents.len(), 4);
        assert_eq!(gov.exploration_count(), 0);
    }

    #[test]
    fn decisions_are_per_core_and_legal() {
        let mut gov = GeQiuGovernor::new(GeQiuConfig::paper(3));
        gov.init(&ctx());
        let mut platform = Platform::new(PlatformConfig {
            sensor: SensorConfig::ideal(),
            ..PlatformConfig::odroid_xu3_a15()
        })
        .unwrap();
        platform.set_cluster_opp(18);
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(20)); 4];
        for epoch in 0..50u64 {
            let frame = platform.run_frame(&work, SimTime::from_ms(40)).unwrap();
            let d = gov.decide(&EpochObservation {
                frame: &frame,
                epoch,
            });
            match d {
                VfDecision::PerCore(choices) => {
                    assert_eq!(choices.len(), 4);
                    assert!(choices.iter().all(|&c| c < 19));
                    platform.set_cluster_opp(choices.into_iter().max().unwrap());
                }
                other => panic!("expected per-core decision, got {other:?}"),
            }
        }
        assert!(gov.exploration_count() > 0, "UPD must explore early");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut gov = GeQiuGovernor::new(GeQiuConfig::paper(seed));
            gov.init(&ctx());
            let mut platform = Platform::new(PlatformConfig {
                sensor: SensorConfig::ideal(),
                ..PlatformConfig::odroid_xu3_a15()
            })
            .unwrap();
            let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(30)); 4];
            let mut log = Vec::new();
            for epoch in 0..30u64 {
                let frame = platform.run_frame(&work, SimTime::from_ms(40)).unwrap();
                let d = gov.decide(&EpochObservation {
                    frame: &frame,
                    epoch,
                });
                let opp = d.resolve_cluster(platform.current_opp());
                platform.set_cluster_opp(opp);
                log.push(opp);
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn cores_use_distinct_rng_streams() {
        let mut gov = GeQiuGovernor::new(GeQiuConfig::paper(1));
        gov.init(&ctx());
        let mut platform = Platform::new(PlatformConfig {
            sensor: SensorConfig::ideal(),
            ..PlatformConfig::odroid_xu3_a15()
        })
        .unwrap();
        // Identical per-core states must still give diverse exploratory
        // choices across cores (different streams).
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(20)); 4];
        let frame = platform.run_frame(&work, SimTime::from_ms(40)).unwrap();
        let d = gov.decide(&EpochObservation {
            frame: &frame,
            epoch: 0,
        });
        if let VfDecision::PerCore(choices) = d {
            let all_same = choices.windows(2).all(|w| w[0] == w[1]);
            assert!(!all_same, "independent agents should diverge: {choices:?}");
        } else {
            panic!("expected per-core decision");
        }
    }
}
