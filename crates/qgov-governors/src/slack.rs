//! The average slack ratio `L` — Eq. 5 of the paper.
//!
//! ```text
//! Lᵢ = 1/(D·T_ref) · Σₜ₌₀ⁿ (T_ref − Tᵢ − T_OVH)
//! ```
//!
//! `T_ref` is the reference (deadline) execution time, `Tᵢ` the task's
//! execution time, `T_OVH` the learning/DVFS overheads, and `D` the
//! number of elapsed decision epochs "since the start of the application
//! with a given T_ref". Equivalently, `L` is the running mean of
//! per-frame slack ratios `(T_ref − Tᵢ − T_OVH)/T_ref`.

use std::collections::VecDeque;

/// Tracks the average slack ratio `L` and its epoch-to-epoch change
/// `ΔL` (the inputs to the pay-off of Eq. 4 and to the slack dimension
/// of the Q-table state).
///
/// The faithful Eq. 5 average runs over *all* epochs since the start
/// ([`SlackTracker::cumulative`]). Because an unbounded average responds
/// ever more slowly as `D` grows, a sliding-window variant
/// ([`SlackTracker::windowed`]) is also provided and used as the RTM
/// default — the paper's own evaluation restarts `D` whenever `T_ref`
/// changes, which bounds `D` in exactly the same spirit.
///
/// # Examples
///
/// ```
/// use qgov_governors::SlackTracker;
///
/// let mut l = SlackTracker::cumulative();
/// l.observe(0.5);
/// l.observe(-0.1);
/// assert!((l.average() - 0.2).abs() < 1e-12);
/// assert!((l.delta() - (0.2 - 0.5)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlackTracker {
    window: Option<usize>,
    history: VecDeque<f64>,
    sum: f64,
    count: u64,
    average: f64,
    prev_average: f64,
}

impl SlackTracker {
    /// The faithful Eq. 5 tracker: mean over every epoch since start.
    #[must_use]
    pub fn cumulative() -> Self {
        SlackTracker {
            window: None,
            history: VecDeque::new(),
            sum: 0.0,
            count: 0,
            average: 0.0,
            prev_average: 0.0,
        }
    }

    /// A sliding-window tracker over the last `window` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn windowed(window: usize) -> Self {
        assert!(window > 0, "slack window must be non-zero");
        SlackTracker {
            window: Some(window),
            // `observe` pushes before it pops, so the deque transiently
            // holds window + 1 entries; reserving that up front keeps
            // the steady-state path allocation-free.
            history: VecDeque::with_capacity(window + 1),
            sum: 0.0,
            count: 0,
            average: 0.0,
            prev_average: 0.0,
        }
    }

    /// Feeds one epoch's slack ratio `(T_ref − Tᵢ − T_OVH)/T_ref`.
    ///
    /// # Panics
    ///
    /// Panics if `frame_slack` is not finite.
    pub fn observe(&mut self, frame_slack: f64) {
        assert!(frame_slack.is_finite(), "slack must be finite");
        self.prev_average = self.average;
        match self.window {
            None => {
                self.sum += frame_slack;
                self.count += 1;
                self.average = self.sum / self.count as f64;
            }
            Some(w) => {
                self.history.push_back(frame_slack);
                self.sum += frame_slack;
                if self.history.len() > w {
                    self.sum -= self.history.pop_front().expect("non-empty");
                }
                self.count += 1;
                self.average = self.sum / self.history.len() as f64;
            }
        }
    }

    /// The current average slack ratio `Lᵢ` (zero before any
    /// observation).
    #[must_use]
    pub fn average(&self) -> f64 {
        self.average
    }

    /// The change `ΔL = Lᵢ − Lᵢ₋₁` since the previous epoch.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.average - self.prev_average
    }

    /// The previous epoch's average `Lᵢ₋₁`.
    #[must_use]
    pub fn previous(&self) -> f64 {
        self.prev_average
    }

    /// Number of epochs observed (`D` in Eq. 5).
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.count
    }

    /// Restarts the tracker, as the paper does when the application's
    /// `T_ref` changes.
    pub fn reset(&mut self) {
        self.history.clear();
        self.sum = 0.0;
        self.count = 0;
        self.average = 0.0;
        self.prev_average = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_matches_running_mean() {
        let mut l = SlackTracker::cumulative();
        let xs = [0.2, -0.4, 0.6, 0.0];
        let mut sum = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            l.observe(x);
            sum += x;
            assert!((l.average() - sum / (i + 1) as f64).abs() < 1e-12);
        }
        assert_eq!(l.epochs(), 4);
    }

    #[test]
    fn windowed_forgets_old_epochs() {
        let mut l = SlackTracker::windowed(2);
        l.observe(1.0);
        l.observe(0.0);
        l.observe(0.0);
        assert_eq!(l.average(), 0.0, "the 1.0 epoch left the window");
    }

    #[test]
    fn windowed_responds_faster_than_cumulative() {
        let mut win = SlackTracker::windowed(10);
        let mut cum = SlackTracker::cumulative();
        for _ in 0..100 {
            win.observe(0.0);
            cum.observe(0.0);
        }
        for _ in 0..10 {
            win.observe(-0.5);
            cum.observe(-0.5);
        }
        assert!(win.average() < cum.average(), "window must react faster");
        assert!((win.average() - -0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_tracks_change_of_average() {
        let mut l = SlackTracker::cumulative();
        l.observe(0.4);
        assert!((l.delta() - 0.4).abs() < 1e-12);
        l.observe(0.0); // average 0.2
        assert!((l.delta() - -0.2).abs() < 1e-12);
        assert!((l.previous() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut l = SlackTracker::windowed(5);
        l.observe(0.7);
        l.reset();
        assert_eq!(l.average(), 0.0);
        assert_eq!(l.delta(), 0.0);
        assert_eq!(l.epochs(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = SlackTracker::windowed(0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_slack_panics() {
        let mut l = SlackTracker::cumulative();
        l.observe(f64::NAN);
    }
}
