//! Property-based tests on the baseline governors and the slack
//! tracker.

use proptest::prelude::*;
use qgov_governors::{GovernorContext, OracleGovernor, SlackTracker, VfDecision};
use qgov_sim::OppTable;
use qgov_units::{Cycles, SimTime};
use qgov_workloads::{FrameDemand, ThreadDemand, WorkloadTrace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Oracle minimality: the chosen OPP meets the deadline, and the
    /// next-lower OPP (if any) would not.
    #[test]
    fn oracle_choice_is_minimal_sufficient(
        per_thread_mc in proptest::collection::vec(1u64..120, 1..5),
        mem_ms in 0u64..10,
        period_ms in 20u64..120,
    ) {
        let table = OppTable::odroid_xu3_a15();
        let period = SimTime::from_ms(period_ms);
        let demand = FrameDemand::new(
            per_thread_mc
                .iter()
                .map(|&mc| ThreadDemand::new(Cycles::from_mcycles(mc), SimTime::from_ms(mem_ms)))
                .collect(),
        );
        let trace = WorkloadTrace::from_frames("probe", period, vec![demand.clone()]);
        let oracle = OracleGovernor::from_trace(&trace, &table, 0.0);
        let chosen = oracle.schedule()[0];

        let barrier_at = |idx: usize| -> SimTime {
            let f = table.get(idx).unwrap().freq;
            demand
                .threads
                .iter()
                .map(|t| t.cpu_cycles.time_at(f) + t.mem_time)
                .fold(SimTime::ZERO, SimTime::max)
        };
        let fits = barrier_at(chosen) <= period;
        if chosen < table.max_index() {
            prop_assert!(fits, "chosen OPP must fit unless even the top cannot");
        }
        if fits && chosen > 0 {
            prop_assert!(
                barrier_at(chosen - 1) > period,
                "one OPP lower must not fit (minimality)"
            );
        }
    }

    /// The slack tracker's average always lies within the convex hull
    /// of the observations, windowed or not.
    #[test]
    fn slack_average_stays_in_hull(
        xs in proptest::collection::vec(-1.0f64..1.0, 1..100),
        window in proptest::option::of(1usize..20),
    ) {
        let mut tracker = match window {
            Some(w) => SlackTracker::windowed(w),
            None => SlackTracker::cumulative(),
        };
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &x in &xs {
            tracker.observe(x);
            prop_assert!(tracker.average() >= lo - 1e-12);
            prop_assert!(tracker.average() <= hi + 1e-12);
        }
        prop_assert_eq!(tracker.epochs(), xs.len() as u64);
    }

    /// delta() is exactly the difference of consecutive averages.
    #[test]
    fn slack_delta_consistency(xs in proptest::collection::vec(-1.0f64..1.0, 2..50)) {
        let mut tracker = SlackTracker::windowed(8);
        let mut prev = 0.0;
        for &x in &xs {
            tracker.observe(x);
            prop_assert!((tracker.delta() - (tracker.average() - prev)).abs() < 1e-12);
            prev = tracker.average();
        }
    }

    /// VfDecision::resolve_cluster never leaves the table range for
    /// in-range inputs.
    #[test]
    fn resolve_cluster_stays_in_range(
        current in 0usize..19,
        per_core in proptest::collection::vec(0usize..19, 0..8),
    ) {
        for d in [
            VfDecision::NoChange,
            VfDecision::Cluster(current),
            VfDecision::PerCore(per_core.clone()),
        ] {
            prop_assert!(d.resolve_cluster(current) < 19);
        }
    }
}

/// The oracle governor's init + decide walk never emits an out-of-table
/// decision for any trace.
#[test]
fn oracle_decisions_always_in_range() {
    let table = OppTable::odroid_xu3_a15();
    for seed in 0..5u64 {
        let mut app = qgov_workloads::VideoDecoderModel::mpeg4_svga_24fps(seed).with_frames(30);
        let trace = WorkloadTrace::record(&mut app);
        let oracle = OracleGovernor::from_trace(&trace, &table, 0.02);
        for &opp in oracle.schedule() {
            assert!(opp < table.len());
        }
    }
}

/// GovernorContext accessors round-trip their inputs.
#[test]
fn governor_context_accessors() {
    let ctx = GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40));
    assert_eq!(ctx.cores(), 4);
    assert_eq!(ctx.period(), SimTime::from_ms(40));
    assert_eq!(ctx.opp_table().len(), 19);
}
