//! The frame-synchronous platform: cores + DVFS + power + sensors +
//! thermal, driven one decision epoch at a time.

use crate::{
    CmosPowerModel, DvfsConfig, OppTable, Pmu, PowerModel, PowerSensor, SensorConfig, SimError,
    ThermalConfig, ThermalModel, VfController, VfDomain,
};
use qgov_units::{Cycles, Energy, Freq, Power, SimTime, Temp};

/// One frame's worth of work for one core.
///
/// Execution time at frequency `f` follows the standard two-component
/// model `t = cpu_cycles / f + mem_time`: the memory-bound component
/// does not scale with core frequency, which is what makes DVFS a real
/// energy/performance trade-off (running memory-bound phases fast wastes
/// energy without finishing sooner).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkSlice {
    /// Frequency-scalable CPU-bound cycles.
    pub cpu_cycles: Cycles,
    /// Frequency-invariant memory/IO stall time.
    pub mem_time: SimTime,
}

impl WorkSlice {
    /// An idle slice (no work).
    pub const IDLE: WorkSlice = WorkSlice {
        cpu_cycles: Cycles::ZERO,
        mem_time: SimTime::ZERO,
    };

    /// Creates a slice with both CPU and memory components.
    #[must_use]
    pub const fn new(cpu_cycles: Cycles, mem_time: SimTime) -> Self {
        WorkSlice {
            cpu_cycles,
            mem_time,
        }
    }

    /// A purely CPU-bound slice.
    #[must_use]
    pub const fn cpu_only(cpu_cycles: Cycles) -> Self {
        WorkSlice {
            cpu_cycles,
            mem_time: SimTime::ZERO,
        }
    }

    /// `true` if the slice carries no work at all.
    #[must_use]
    pub const fn is_idle(&self) -> bool {
        self.cpu_cycles.is_zero() && self.mem_time.is_zero()
    }

    /// Wall-clock time this slice takes at core frequency `f`.
    ///
    /// # Panics
    ///
    /// Panics if the slice has CPU cycles and `f` is zero.
    #[must_use]
    pub fn time_at(&self, f: Freq) -> SimTime {
        self.cpu_cycles.time_at(f) + self.mem_time
    }
}

/// Full description of a platform to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Number of cores in the cluster.
    pub cores: usize,
    /// The V-F operating-point table.
    pub opp_table: OppTable,
    /// Shared-rail or per-core V-F control.
    pub vf_domain: VfDomain,
    /// The power model.
    pub power_model: CmosPowerModel,
    /// V-F transition costs.
    pub dvfs: DvfsConfig,
    /// Power-sensor characteristics.
    pub sensor: SensorConfig,
    /// Thermal network parameters.
    pub thermal: ThermalConfig,
}

impl PlatformConfig {
    /// The paper's platform: the ODROID-XU3 A15 cluster — four cores,
    /// 19 operating points on a shared V-F rail, INA231 sensing,
    /// passive cooling.
    #[must_use]
    pub fn odroid_xu3_a15() -> Self {
        PlatformConfig {
            cores: 4,
            opp_table: OppTable::odroid_xu3_a15(),
            vf_domain: VfDomain::PerCluster,
            power_model: CmosPowerModel::a15(),
            dvfs: DvfsConfig::typical(),
            sensor: SensorConfig::ina231(0xA15),
            thermal: ThermalConfig::odroid_xu3(),
        }
    }

    /// The ODROID-XU3's companion cluster: four Cortex-A7 LITTLE cores,
    /// 13 operating points (200–1400 MHz) on a shared V-F rail, INA231
    /// sensing, the same passive cooling as the big cluster.
    ///
    /// Together with [`odroid_xu3_a15`](PlatformConfig::odroid_xu3_a15)
    /// this completes the board's big.LITTLE pair (see
    /// `Topology::odroid_xu3_biglittle`).
    ///
    /// ```
    /// use qgov_sim::{Platform, PlatformConfig, WorkSlice};
    /// use qgov_units::{Cycles, SimTime};
    ///
    /// let mut little = Platform::new(PlatformConfig::odroid_xu3_little()).unwrap();
    /// assert_eq!(little.cores(), 4);
    /// assert_eq!(little.opp_table().len(), 13); // 200 MHz ..= 1400 MHz
    ///
    /// // The A7 finishes the same work later than an A15 would, but
    /// // dissipates far less power doing it.
    /// little.set_cluster_opp(little.opp_table().len() - 1);
    /// let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(14)); 4];
    /// let frame = little.run_frame(&work, SimTime::from_ms(40)).unwrap();
    /// assert_eq!(frame.per_core_busy[0], SimTime::from_ms(10)); // 14 Mc @ 1.4 GHz
    /// assert!(frame.met_deadline());
    /// ```
    #[must_use]
    pub fn odroid_xu3_little() -> Self {
        PlatformConfig {
            cores: 4,
            opp_table: OppTable::odroid_xu3_a7(),
            vf_domain: VfDomain::PerCluster,
            power_model: CmosPowerModel::a7(),
            dvfs: DvfsConfig::typical(),
            sensor: SensorConfig::ina231(0xA7),
            thermal: ThermalConfig::odroid_xu3(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `cores` is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cores == 0 {
            return Err(SimError::InvalidConfig {
                reason: "a platform needs at least one core".into(),
            });
        }
        Ok(())
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::odroid_xu3_a15()
    }
}

/// Everything observable about one completed frame (decision epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResult {
    /// Time from frame start to barrier completion, including any
    /// governor/DVFS overhead (`Tᵢ` in the paper's Eq. 5).
    pub frame_time: SimTime,
    /// Wall-clock span of the epoch: `max(frame_time, period)` — an
    /// early-finishing frame idles until the next period tick.
    pub wall_time: SimTime,
    /// The period (deadline, `T_ref`) this frame ran against.
    pub period: SimTime,
    /// Governor + DVFS overhead charged to this frame (part of
    /// `T_OVH`).
    pub overhead: SimTime,
    /// Per-core busy time (work execution only).
    pub per_core_busy: Vec<SimTime>,
    /// Per-core cycles retired.
    pub per_core_cycles: Vec<Cycles>,
    /// Ground-truth energy dissipated over `wall_time`.
    pub energy: Energy,
    /// Ground-truth average power over `wall_time`.
    pub avg_power: Power,
    /// The on-board sensor's (quantised, noisy) power reading.
    pub measured_power: Power,
    /// Energy as the paper computes it: sensor power × wall time.
    pub measured_energy: Energy,
    /// Die temperature at frame end.
    pub temperature: Temp,
    /// Cluster OPP index the frame ran at.
    pub cluster_opp: usize,
}

impl FrameResult {
    /// An all-zero result suitable as the reusable output slot of
    /// [`Platform::run_frame_into`] (its per-core vectors grow to the
    /// core count on first use and are reused — allocation-free —
    /// thereafter).
    #[must_use]
    pub fn empty() -> Self {
        FrameResult {
            frame_time: SimTime::ZERO,
            wall_time: SimTime::ZERO,
            period: SimTime::ZERO,
            overhead: SimTime::ZERO,
            per_core_busy: Vec::new(),
            per_core_cycles: Vec::new(),
            energy: Energy::ZERO,
            avg_power: Power::ZERO,
            measured_power: Power::ZERO,
            measured_energy: Energy::ZERO,
            temperature: Temp::default(),
            cluster_opp: 0,
        }
    }

    /// Copies `other` into `self`, reusing the per-core vector
    /// capacity (unlike the derived `clone_from`, this never allocates
    /// once the vectors have reached the core count — which keeps the
    /// sensed-copy step of a faulted run inside the zero-allocation
    /// steady-state envelope).
    pub fn copy_from(&mut self, other: &FrameResult) {
        self.frame_time = other.frame_time;
        self.wall_time = other.wall_time;
        self.period = other.period;
        self.overhead = other.overhead;
        self.per_core_busy.clear();
        self.per_core_busy.extend_from_slice(&other.per_core_busy);
        self.per_core_cycles.clear();
        self.per_core_cycles
            .extend_from_slice(&other.per_core_cycles);
        self.energy = other.energy;
        self.avg_power = other.avg_power;
        self.measured_power = other.measured_power;
        self.measured_energy = other.measured_energy;
        self.temperature = other.temperature;
        self.cluster_opp = other.cluster_opp;
    }

    /// `true` if the frame met its deadline.
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.frame_time <= self.period
    }

    /// Slack of this single frame as a signed ratio:
    /// `(period − frame_time) / period`; positive when early.
    #[must_use]
    pub fn frame_slack(&self) -> f64 {
        (self.period.as_secs_f64() - self.frame_time.as_secs_f64()) / self.period.as_secs_f64()
    }

    /// Busy fraction of a core over the epoch (what ondemand samples).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn utilization(&self, core: usize) -> f64 {
        if self.wall_time.is_zero() {
            return 0.0;
        }
        self.per_core_busy[core].ratio(self.wall_time).min(1.0)
    }

    /// Total cycles retired across all cores this epoch.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        self.per_core_cycles.iter().copied().sum()
    }
}

/// The simulated many-core platform.
///
/// See the [crate documentation](crate) for an overview and example.
#[derive(Debug)]
pub struct Platform {
    power_model: CmosPowerModel,
    vf: VfController,
    pmus: Vec<Pmu>,
    sensor: PowerSensor,
    thermal: ThermalModel,
    now: SimTime,
    pending_overhead: SimTime,
    frames: u64,
    total_true_energy: Energy,
}

impl Platform {
    /// Builds a platform from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: PlatformConfig) -> Result<Self, SimError> {
        config.validate()?;
        let vf = VfController::new(
            config.opp_table.clone(),
            config.vf_domain,
            config.cores,
            config.dvfs.clone(),
        )?;
        Ok(Platform {
            power_model: config.power_model,
            vf,
            pmus: (0..config.cores).map(|_| Pmu::new()).collect(),
            sensor: PowerSensor::new(config.sensor),
            thermal: ThermalModel::new(config.thermal),
            now: SimTime::ZERO,
            pending_overhead: SimTime::ZERO,
            frames: 0,
            total_true_energy: Energy::ZERO,
        })
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.pmus.len()
    }

    /// The operating-point table.
    #[must_use]
    pub fn opp_table(&self) -> &OppTable {
        self.vf.table()
    }

    /// Simulated time elapsed since construction.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Frames executed so far.
    #[must_use]
    pub fn frames_run(&self) -> u64 {
        self.frames
    }

    /// Current cluster OPP index.
    #[must_use]
    pub fn current_opp(&self) -> usize {
        self.vf.cluster_opp()
    }

    /// Current OPP index of one core.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoreOutOfRange`] for a bad core index.
    pub fn core_opp(&self, core: usize) -> Result<usize, SimError> {
        self.vf.core_opp(core)
    }

    /// Retargets the whole cluster to OPP `index`. The transition
    /// latency is charged to the next frame as overhead.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of table range (indices should come from
    /// [`opp_table`](Platform::opp_table); use
    /// [`try_set_cluster_opp`](Platform::try_set_cluster_opp) for
    /// untrusted input).
    pub fn set_cluster_opp(&mut self, index: usize) {
        self.try_set_cluster_opp(index)
            .expect("OPP index out of range");
    }

    /// Fallible variant of [`set_cluster_opp`](Platform::set_cluster_opp).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OppOutOfRange`] for a bad index.
    pub fn try_set_cluster_opp(&mut self, index: usize) -> Result<(), SimError> {
        let latency = self.vf.set_cluster_opp(index)?;
        self.pending_overhead += latency;
        Ok(())
    }

    /// Retargets one core's V-F domain (the whole cluster on shared-rail
    /// hardware). The transition latency is charged to the next frame.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OppOutOfRange`] or
    /// [`SimError::CoreOutOfRange`] for bad indices.
    pub fn try_set_core_opp(&mut self, core: usize, index: usize) -> Result<(), SimError> {
        let latency = self.vf.set_core_opp(core, index)?;
        self.pending_overhead += latency;
        Ok(())
    }

    /// Charges additional overhead time (e.g. the governor's own
    /// processing cost) to the next frame — the remaining components of
    /// the paper's `T_OVH`.
    pub fn add_overhead(&mut self, t: SimTime) {
        self.pending_overhead += t;
    }

    /// Access to a core's PMU.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn pmu(&self, core: usize) -> &Pmu {
        &self.pmus[core]
    }

    /// Current die temperature.
    #[must_use]
    pub fn temperature(&self) -> Temp {
        self.thermal.temperature()
    }

    /// Peak die temperature so far.
    #[must_use]
    pub fn peak_temperature(&self) -> Temp {
        self.thermal.peak()
    }

    /// Ground-truth energy dissipated since construction.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.total_true_energy
    }

    /// The V-F controller (transition counts, cumulated latency).
    #[must_use]
    pub fn vf(&self) -> &VfController {
        &self.vf
    }

    /// Runs one frame: each core executes its [`WorkSlice`] at its
    /// current operating point, all cores join at the barrier, and the
    /// epoch closes at `max(frame_time, period)`.
    ///
    /// Any pending overhead (V-F transitions, governor processing) is
    /// charged serially at the start of the frame, stalling all cores —
    /// this is how learning overhead lengthens frames in the paper's
    /// Eq. 5.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WorkLengthMismatch`] if `work.len()` differs
    /// from the core count, or [`SimError::InvalidConfig`] if `period`
    /// is zero.
    pub fn run_frame(
        &mut self,
        work: &[WorkSlice],
        period: SimTime,
    ) -> Result<FrameResult, SimError> {
        let mut out = FrameResult::empty();
        self.run_frame_into(work, period, &mut out)?;
        Ok(out)
    }

    /// [`run_frame`](Platform::run_frame) into a caller-provided result
    /// slot, reusing its per-core vectors.
    ///
    /// This is the allocation-free form of the frame kernel: the
    /// experiment harness keeps one [`FrameResult`] alive across the
    /// whole run, so the steady-state loop never touches the heap
    /// (after the slot's vectors have grown to the core count once).
    /// Bit-identical to [`run_frame`](Platform::run_frame) — the
    /// allocating form is a thin wrapper over this one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WorkLengthMismatch`] if `work.len()` differs
    /// from the core count, or [`SimError::InvalidConfig`] if `period`
    /// is zero; `out` is left untouched on error.
    pub fn run_frame_into(
        &mut self,
        work: &[WorkSlice],
        period: SimTime,
        out: &mut FrameResult,
    ) -> Result<(), SimError> {
        if work.len() != self.pmus.len() {
            return Err(SimError::WorkLengthMismatch {
                cores: self.pmus.len(),
                got: work.len(),
            });
        }
        if period.is_zero() {
            return Err(SimError::InvalidConfig {
                reason: "frame period must be non-zero".into(),
            });
        }

        let overhead = self.pending_overhead;
        self.pending_overhead = SimTime::ZERO;

        // Execute to the barrier.
        out.per_core_busy.clear();
        out.per_core_cycles.clear();
        let mut compute_time = SimTime::ZERO;
        for (core, slice) in work.iter().enumerate() {
            let opp_idx = self.vf.core_opp(core).expect("core index in range");
            let freq = self
                .vf
                .table()
                .get(opp_idx)
                .expect("opp index in range")
                .freq;
            let busy = slice.time_at(freq);
            compute_time = compute_time.max(busy);
            out.per_core_busy.push(busy);
            out.per_core_cycles.push(slice.cpu_cycles);
        }
        let frame_time = compute_time + overhead;
        let wall_time = frame_time.max(period);

        // Energy accounting at the temperature of frame start.
        let temp = self.thermal.temperature();
        let mut energy = Energy::ZERO;
        for (core, &busy) in out.per_core_busy.iter().enumerate() {
            let opp_idx = self.vf.core_opp(core).expect("core index in range");
            let opp = self.vf.table().get(opp_idx).expect("opp index in range");
            // The governor's serial overhead section runs on core 0.
            let active = if core == 0 { busy + overhead } else { busy };
            let active = active.min(wall_time);
            let idle = wall_time - active;
            let p_busy = self.power_model.core_power(opp, 1.0, temp).total();
            let p_idle = self.power_model.core_power(opp, 0.0, temp).total();
            energy += p_busy * active + p_idle * idle;
            self.pmus[core].record(
                out.per_core_cycles[core],
                busy,
                wall_time.saturating_sub(busy),
            );
        }
        let cluster_opp_idx = self.vf.cluster_opp();
        let cluster_opp = self
            .vf
            .table()
            .get(cluster_opp_idx)
            .expect("cluster opp in range");
        energy += self.power_model.uncore_power(cluster_opp, temp).total() * wall_time;

        let avg_power = Power::from_watts(energy.as_joules() / wall_time.as_secs_f64());
        self.sensor.integrate(avg_power, wall_time);
        let measured_power = self.sensor.read_frame_average();
        let measured_energy = measured_power * wall_time;

        let temperature = self.thermal.step(avg_power, wall_time);
        self.now += wall_time;
        self.frames += 1;
        self.total_true_energy += energy;

        out.frame_time = frame_time;
        out.wall_time = wall_time;
        out.period = period;
        out.overhead = overhead;
        out.energy = energy;
        out.avg_power = avg_power;
        out.measured_power = measured_power;
        out.measured_energy = measured_energy;
        out.temperature = temperature;
        out.cluster_opp = cluster_opp_idx;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_platform() -> Platform {
        let config = PlatformConfig {
            sensor: SensorConfig::ideal(),
            dvfs: DvfsConfig::free(),
            ..PlatformConfig::odroid_xu3_a15()
        };
        Platform::new(config).unwrap()
    }

    #[test]
    fn frame_time_follows_frequency() {
        let mut p = quiet_platform();
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(20)); 4];
        let period = SimTime::from_ms(200);

        p.set_cluster_opp(0); // 200 MHz: 20 Mcycles take 100 ms
        let slow = p.run_frame(&work, period).unwrap();
        assert_eq!(slow.frame_time, SimTime::from_ms(100));

        p.set_cluster_opp(18); // 2 GHz: 10 ms
        let fast = p.run_frame(&work, period).unwrap();
        assert_eq!(fast.frame_time, SimTime::from_ms(10));
    }

    #[test]
    fn memory_time_does_not_scale() {
        let mut p = quiet_platform();
        let work = vec![WorkSlice::new(Cycles::from_mcycles(10), SimTime::from_ms(5)); 4];
        p.set_cluster_opp(18); // 2 GHz: cpu 5 ms + mem 5 ms
        let r = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert_eq!(r.frame_time, SimTime::from_ms(10));
        p.set_cluster_opp(8); // 1 GHz: cpu 10 ms + mem 5 ms
        let r = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert_eq!(r.frame_time, SimTime::from_ms(15));
    }

    #[test]
    fn barrier_takes_slowest_core() {
        let mut p = quiet_platform();
        p.set_cluster_opp(8); // 1 GHz
        let work = vec![
            WorkSlice::cpu_only(Cycles::from_mcycles(5)),
            WorkSlice::cpu_only(Cycles::from_mcycles(30)),
            WorkSlice::IDLE,
            WorkSlice::cpu_only(Cycles::from_mcycles(1)),
        ];
        let r = p.run_frame(&work, SimTime::from_ms(100)).unwrap();
        assert_eq!(r.frame_time, SimTime::from_ms(30));
        assert_eq!(r.per_core_busy[1], SimTime::from_ms(30));
        assert_eq!(r.per_core_busy[2], SimTime::ZERO);
    }

    #[test]
    fn early_frames_idle_until_period() {
        let mut p = quiet_platform();
        p.set_cluster_opp(18);
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(2)); 4]; // 1 ms
        let r = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert_eq!(r.wall_time, SimTime::from_ms(40));
        assert!(r.met_deadline());
        assert!(r.frame_slack() > 0.9);
        assert_eq!(p.now(), SimTime::from_ms(40));
    }

    #[test]
    fn late_frames_extend_the_wall_clock() {
        let mut p = quiet_platform();
        p.set_cluster_opp(0); // 200 MHz
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(20)); 4]; // 100 ms
        let r = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert_eq!(r.wall_time, SimTime::from_ms(100));
        assert!(!r.met_deadline());
        assert!(r.frame_slack() < 0.0);
    }

    #[test]
    fn running_fast_and_idling_beats_racing_for_heavily_utilised_frames() {
        // Energy comparison that motivates DVFS: finishing just in time
        // at a low OPP beats racing to idle at the top OPP.
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(20)); 4];
        let period = SimTime::from_ms(100);

        let mut racer = quiet_platform();
        racer.set_cluster_opp(18);
        let fast = racer.run_frame(&work, period).unwrap();
        assert!(fast.met_deadline());

        let mut crawler = quiet_platform();
        crawler.set_cluster_opp(1); // 300 MHz: 66.7 ms, still meets 100 ms
        let slow = crawler.run_frame(&work, period).unwrap();
        assert!(slow.met_deadline());

        assert!(
            slow.energy.as_joules() < fast.energy.as_joules(),
            "pace-to-deadline ({}) should beat race-to-idle ({})",
            slow.energy,
            fast.energy
        );
    }

    #[test]
    fn overhead_is_charged_once_and_stalls_the_frame() {
        let mut p = quiet_platform();
        p.set_cluster_opp(8);
        p.add_overhead(SimTime::from_ms(3));
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(10)); 4]; // 10 ms
        let r = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert_eq!(r.frame_time, SimTime::from_ms(13));
        assert_eq!(r.overhead, SimTime::from_ms(3));
        // Consumed: next frame is clean.
        let r2 = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert_eq!(r2.frame_time, SimTime::from_ms(10));
        assert_eq!(r2.overhead, SimTime::ZERO);
    }

    #[test]
    fn dvfs_transition_cost_appears_as_overhead() {
        let config = PlatformConfig {
            sensor: SensorConfig::ideal(),
            ..PlatformConfig::odroid_xu3_a15()
        };
        let mut p = Platform::new(config).unwrap();
        p.set_cluster_opp(18); // big swing from boot OPP 0
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(2)); 4];
        let r = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert!(!r.overhead.is_zero(), "transition latency must be charged");
        assert_eq!(p.vf().transitions(), 1);
    }

    #[test]
    fn pmu_accumulates_across_frames() {
        let mut p = quiet_platform();
        p.set_cluster_opp(8);
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(10)); 4];
        p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert_eq!(p.pmu(0).cycles(), Cycles::from_mcycles(20));
        assert!((p.pmu(0).utilization() - 0.25).abs() < 0.01); // 10 of 40 ms
    }

    #[test]
    fn energy_measured_matches_truth_with_ideal_sensor() {
        let mut p = quiet_platform();
        p.set_cluster_opp(10);
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(15)); 4];
        let r = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert!(
            (r.measured_energy.as_joules() - r.energy.as_joules()).abs()
                < 1e-9 * r.energy.as_joules().max(1.0)
        );
    }

    #[test]
    fn temperature_rises_under_sustained_load() {
        let mut p = quiet_platform();
        p.set_cluster_opp(18);
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(60)); 4];
        let t0 = p.temperature();
        for _ in 0..200 {
            p.run_frame(&work, SimTime::from_ms(30)).unwrap();
        }
        assert!(p.temperature() > t0);
        assert!(p.peak_temperature() >= p.temperature());
    }

    #[test]
    fn run_frame_into_matches_run_frame_bit_for_bit() {
        let work = vec![
            WorkSlice::cpu_only(Cycles::from_mcycles(5)),
            WorkSlice::new(Cycles::from_mcycles(30), SimTime::from_ms(2)),
            WorkSlice::IDLE,
            WorkSlice::cpu_only(Cycles::from_mcycles(12)),
        ];
        let period = SimTime::from_ms(40);

        let mut alloc = quiet_platform();
        alloc.set_cluster_opp(8);
        let mut reuse = quiet_platform();
        reuse.set_cluster_opp(8);

        let mut slot = FrameResult::empty();
        for _ in 0..20 {
            let fresh = alloc.run_frame(&work, period).unwrap();
            reuse.run_frame_into(&work, period, &mut slot).unwrap();
            assert_eq!(fresh, slot);
            assert_eq!(
                fresh.energy.as_joules().to_bits(),
                slot.energy.as_joules().to_bits()
            );
        }
        assert_eq!(alloc.total_energy(), reuse.total_energy());
        assert_eq!(alloc.now(), reuse.now());
    }

    #[test]
    fn run_frame_into_leaves_slot_untouched_on_error() {
        let mut p = quiet_platform();
        let mut slot = FrameResult::empty();
        p.run_frame_into(
            &[WorkSlice::cpu_only(Cycles::from_mcycles(1)); 4],
            SimTime::from_ms(40),
            &mut slot,
        )
        .unwrap();
        let before = slot.clone();
        assert!(p
            .run_frame_into(&[WorkSlice::IDLE; 3], SimTime::from_ms(40), &mut slot)
            .is_err());
        assert!(p
            .run_frame_into(&[WorkSlice::IDLE; 4], SimTime::ZERO, &mut slot)
            .is_err());
        assert_eq!(slot, before);
    }

    #[test]
    fn work_length_mismatch_is_rejected() {
        let mut p = quiet_platform();
        let work = vec![WorkSlice::IDLE; 3];
        assert!(matches!(
            p.run_frame(&work, SimTime::from_ms(40)),
            Err(SimError::WorkLengthMismatch { cores: 4, got: 3 })
        ));
    }

    #[test]
    fn zero_period_is_rejected() {
        let mut p = quiet_platform();
        let work = vec![WorkSlice::IDLE; 4];
        assert!(p.run_frame(&work, SimTime::ZERO).is_err());
    }

    #[test]
    fn total_energy_accumulates() {
        let mut p = quiet_platform();
        p.set_cluster_opp(5);
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(5)); 4];
        let r1 = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        let r2 = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
        let total = p.total_energy().as_joules();
        assert!((total - r1.energy.as_joules() - r2.energy.as_joules()).abs() < 1e-12);
    }

    #[test]
    fn per_core_domain_lets_cores_run_at_different_speeds() {
        let config = PlatformConfig {
            vf_domain: VfDomain::PerCore,
            sensor: SensorConfig::ideal(),
            dvfs: DvfsConfig::free(),
            ..PlatformConfig::odroid_xu3_a15()
        };
        let mut p = Platform::new(config).unwrap();
        p.try_set_core_opp(0, 18).unwrap(); // 2 GHz
        p.try_set_core_opp(1, 0).unwrap(); // 200 MHz
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(10)); 4];
        let r = p.run_frame(&work, SimTime::from_ms(100)).unwrap();
        assert_eq!(r.per_core_busy[0], SimTime::from_ms(5));
        assert_eq!(r.per_core_busy[1], SimTime::from_ms(50));
    }
}
