//! Per-core performance monitoring unit.

use qgov_units::{Cycles, SimTime};

/// A simulated performance monitoring unit, mirroring the subset of ARM
/// PMU counters the paper's RTM samples each decision epoch.
///
/// The RTM chose the CPU Cycle Count "over other parameters such as
/// memory accesses, cache misses, or instruction rate" because "it
/// directly presents a measure of CPU activity" (Section II-A); we keep
/// the companion counters so baselines and ablations can consult them.
///
/// Counters accumulate monotonically like real PMU registers; governors
/// typically read-and-remember to form per-epoch deltas, or call
/// [`snapshot_delta`](Pmu::snapshot_delta).
///
/// # Examples
///
/// ```
/// use qgov_sim::Pmu;
/// use qgov_units::{Cycles, SimTime};
///
/// let mut pmu = Pmu::new();
/// pmu.record(Cycles::from_mcycles(5), SimTime::from_ms(10), SimTime::from_ms(2));
/// assert_eq!(pmu.cycles(), Cycles::from_mcycles(5));
/// let delta = pmu.snapshot_delta();
/// assert_eq!(delta, Cycles::from_mcycles(5));
/// assert_eq!(pmu.snapshot_delta(), Cycles::ZERO); // nothing new since
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pmu {
    cycles: Cycles,
    busy_time: SimTime,
    idle_time: SimTime,
    last_snapshot: Cycles,
}

impl Pmu {
    /// Creates a PMU with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one epoch of activity: retired `cycles`, time spent
    /// busy and time spent idle.
    pub fn record(&mut self, cycles: Cycles, busy: SimTime, idle: SimTime) {
        self.cycles += cycles;
        self.busy_time += busy;
        self.idle_time += idle;
    }

    /// Total cycles retired since reset (the monotone CCNT register).
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.cycles
    }

    /// Total busy time since reset.
    #[must_use]
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Total idle time since reset.
    #[must_use]
    pub fn idle_time(&self) -> SimTime {
        self.idle_time
    }

    /// Busy fraction of total elapsed time in `[0, 1]` — the CPU
    /// utilisation the ondemand governor samples.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let total = self.busy_time + self.idle_time;
        if total.is_zero() {
            0.0
        } else {
            self.busy_time.ratio(total)
        }
    }

    /// Returns the cycles retired since the previous call to this method
    /// (first call returns everything since reset). This is the
    /// read-and-clear idiom governors use for per-epoch workload deltas.
    pub fn snapshot_delta(&mut self) -> Cycles {
        let delta = self.cycles - self.last_snapshot;
        self.last_snapshot = self.cycles;
        delta
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut pmu = Pmu::new();
        pmu.record(Cycles::new(100), SimTime::from_ms(1), SimTime::from_ms(1));
        pmu.record(Cycles::new(50), SimTime::from_ms(2), SimTime::ZERO);
        assert_eq!(pmu.cycles(), Cycles::new(150));
        assert_eq!(pmu.busy_time(), SimTime::from_ms(3));
        assert_eq!(pmu.idle_time(), SimTime::from_ms(1));
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let mut pmu = Pmu::new();
        assert_eq!(pmu.utilization(), 0.0);
        pmu.record(Cycles::new(1), SimTime::from_ms(3), SimTime::from_ms(1));
        assert!((pmu.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_delta_is_incremental() {
        let mut pmu = Pmu::new();
        pmu.record(Cycles::new(10), SimTime::ZERO, SimTime::ZERO);
        assert_eq!(pmu.snapshot_delta(), Cycles::new(10));
        pmu.record(Cycles::new(7), SimTime::ZERO, SimTime::ZERO);
        pmu.record(Cycles::new(3), SimTime::ZERO, SimTime::ZERO);
        assert_eq!(pmu.snapshot_delta(), Cycles::new(10));
        assert_eq!(pmu.snapshot_delta(), Cycles::ZERO);
    }

    #[test]
    fn reset_clears_snapshot_state_too() {
        let mut pmu = Pmu::new();
        pmu.record(Cycles::new(10), SimTime::from_ms(1), SimTime::ZERO);
        pmu.snapshot_delta();
        pmu.reset();
        assert_eq!(pmu.cycles(), Cycles::ZERO);
        assert_eq!(pmu.snapshot_delta(), Cycles::ZERO);
        assert_eq!(pmu.utilization(), 0.0);
    }
}
