//! CMOS power model.
//!
//! Per-core power is modelled with the standard decomposition the paper
//! relies on for its "cubic reduction in dynamic power" claim:
//!
//! ```text
//! P_dyn    = C_eff · V² · f · activity         (switching power)
//! P_static = (k₁·V + k₂·V³) · (1 + k_T·(T−25)) (leakage, grows with V and T)
//! ```
//!
//! The default constants are calibrated so a four-core A15 cluster at
//! 2 GHz / 1.3625 V under full load dissipates ≈ 5.5 W and ≈ 0.35 W at
//! 200 MHz / 0.9 V, matching published ODROID-XU3 measurements.

use crate::Opp;
use qgov_units::{Power, Temp};

/// Decomposition of a power figure into its physical components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Switching (dynamic) power.
    pub dynamic: Power,
    /// Leakage (static) power.
    pub statik: Power,
}

impl PowerBreakdown {
    /// Total power.
    #[must_use]
    pub fn total(&self) -> Power {
        self.dynamic + self.statik
    }
}

/// A model mapping (operating point, activity, temperature) to power.
pub trait PowerModel {
    /// Power of one core at `opp` with switching `activity ∈ [0, 1]`
    /// (1 = fully busy, 0 = clock-gated idle) and die temperature
    /// `temp`.
    fn core_power(&self, opp: Opp, activity: f64, temp: Temp) -> PowerBreakdown;

    /// Cluster-level uncore power (L2, interconnect, clock tree) at
    /// `opp` — dissipated regardless of how many cores are busy.
    fn uncore_power(&self, opp: Opp, temp: Temp) -> PowerBreakdown;
}

/// The default analytical CMOS power model.
///
/// # Examples
///
/// ```
/// use qgov_sim::{CmosPowerModel, OppTable, PowerModel};
/// use qgov_units::Temp;
///
/// let model = CmosPowerModel::a15();
/// let table = OppTable::odroid_xu3_a15();
/// let low = model.core_power(table.get(0).unwrap(), 1.0, Temp::default());
/// let high = model.core_power(table.get(18).unwrap(), 1.0, Temp::default());
/// // An order of magnitude or more between the extremes.
/// assert!(high.total().as_watts() > 8.0 * low.total().as_watts());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CmosPowerModel {
    /// Effective switched capacitance per core in farads.
    ceff_core: f64,
    /// Effective switched capacitance of the shared uncore in farads.
    ceff_uncore: f64,
    /// Linear leakage coefficient (W per volt).
    k1_leak: f64,
    /// Cubic leakage coefficient (W per volt³).
    k3_leak: f64,
    /// Leakage temperature sensitivity (fraction per °C above 25 °C).
    kt_leak: f64,
    /// Residual switching activity when idle (clock-gated WFI state).
    idle_activity: f64,
}

impl CmosPowerModel {
    /// Builds a model from raw physical constants.
    ///
    /// # Panics
    ///
    /// Panics if any constant is negative or not finite, or if
    /// `idle_activity` is not in `[0, 1]`.
    #[must_use]
    pub fn new(
        ceff_core: f64,
        ceff_uncore: f64,
        k1_leak: f64,
        k3_leak: f64,
        kt_leak: f64,
        idle_activity: f64,
    ) -> Self {
        for (name, v) in [
            ("ceff_core", ceff_core),
            ("ceff_uncore", ceff_uncore),
            ("k1_leak", k1_leak),
            ("k3_leak", k3_leak),
            ("kt_leak", kt_leak),
            ("idle_activity", idle_activity),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "power model constant {name} must be finite and non-negative, got {v}"
            );
        }
        assert!(
            idle_activity <= 1.0,
            "idle_activity must be at most 1, got {idle_activity}"
        );
        CmosPowerModel {
            ceff_core,
            ceff_uncore,
            k1_leak,
            k3_leak,
            kt_leak,
            idle_activity,
        }
    }

    /// Constants calibrated for one ODROID-XU3 A15 core:
    /// `C_eff = 0.30 nF` per core, `0.12 nF` uncore, leakage sized so
    /// the quad cluster dissipates ≈ 5.5 W flat-out at 2 GHz and
    /// ≈ 0.35 W at 200 MHz.
    #[must_use]
    pub fn a15() -> Self {
        Self::new(0.30e-9, 0.12e-9, 0.04, 0.045, 0.012, 0.05)
    }

    /// Constants for the low-power A7 companion cluster (roughly 5× less
    /// switched capacitance).
    #[must_use]
    pub fn a7() -> Self {
        Self::new(0.06e-9, 0.03e-9, 0.01, 0.012, 0.012, 0.05)
    }

    /// The residual activity factor applied when a core idles.
    #[must_use]
    pub fn idle_activity(&self) -> f64 {
        self.idle_activity
    }

    fn leakage(&self, volt_v: f64, temp: Temp) -> Power {
        let base = self.k1_leak * volt_v + self.k3_leak * volt_v * volt_v * volt_v;
        let t_scale = 1.0 + self.kt_leak * (temp.as_celsius() - 25.0).max(0.0);
        Power::from_watts(base * t_scale)
    }
}

impl PowerModel for CmosPowerModel {
    fn core_power(&self, opp: Opp, activity: f64, temp: Temp) -> PowerBreakdown {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must lie in [0, 1], got {activity}"
        );
        let act = activity.max(self.idle_activity);
        let dynamic =
            Power::from_watts(self.ceff_core * opp.volt.squared() * opp.freq.hz() as f64 * act);
        PowerBreakdown {
            dynamic,
            statik: self.leakage(opp.volt.as_volts(), temp),
        }
    }

    fn uncore_power(&self, opp: Opp, temp: Temp) -> PowerBreakdown {
        let dynamic =
            Power::from_watts(self.ceff_uncore * opp.volt.squared() * opp.freq.hz() as f64);
        PowerBreakdown {
            dynamic,
            statik: self.leakage(opp.volt.as_volts(), temp) * 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OppTable;

    fn a15_cluster_power_at(index: usize, activity: f64) -> f64 {
        let model = CmosPowerModel::a15();
        let table = OppTable::odroid_xu3_a15();
        let opp = table.get(index).unwrap();
        let core = model.core_power(opp, activity, Temp::default()).total();
        let uncore = model.uncore_power(opp, Temp::default()).total();
        4.0 * core.as_watts() + uncore.as_watts()
    }

    #[test]
    fn calibration_matches_published_xu3_envelope() {
        let full_speed = a15_cluster_power_at(18, 1.0);
        assert!(
            (4.5..7.0).contains(&full_speed),
            "quad A15 at 2 GHz should draw 4.5-7 W, got {full_speed:.2} W"
        );
        let low_speed = a15_cluster_power_at(0, 1.0);
        assert!(
            (0.15..0.7).contains(&low_speed),
            "quad A15 at 200 MHz should draw 0.15-0.7 W, got {low_speed:.2} W"
        );
    }

    #[test]
    fn power_is_monotone_in_opp() {
        let mut prev = 0.0;
        for i in 0..19 {
            let p = a15_cluster_power_at(i, 1.0);
            assert!(p > prev, "power must rise with OPP index ({i})");
            prev = p;
        }
    }

    #[test]
    fn idle_draws_much_less_than_busy() {
        let busy = a15_cluster_power_at(18, 1.0);
        let idle = a15_cluster_power_at(18, 0.0);
        assert!(
            idle < 0.35 * busy,
            "idle {idle:.2} W should be well below busy {busy:.2} W"
        );
        assert!(idle > 0.0, "idle still leaks");
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let model = CmosPowerModel::a15();
        let opp = OppTable::odroid_xu3_a15().get(18).unwrap();
        let cold = model.core_power(opp, 0.0, Temp::from_celsius(25.0));
        let hot = model.core_power(opp, 0.0, Temp::from_celsius(85.0));
        assert!(hot.statik > cold.statik);
        assert_eq!(hot.dynamic, cold.dynamic);
    }

    #[test]
    fn cubic_freq_voltage_scaling_beats_linear() {
        // Halving frequency with the accompanying voltage drop should
        // cut dynamic power by far more than 2x (the paper's cubic
        // reduction motivation).
        let model = CmosPowerModel::a15();
        let table = OppTable::odroid_xu3_a15();
        let p2000 = model
            .core_power(table.get(18).unwrap(), 1.0, Temp::default())
            .dynamic;
        let p1000 = model
            .core_power(table.get(8).unwrap(), 1.0, Temp::default())
            .dynamic;
        let ratio = p2000.as_watts() / p1000.as_watts();
        assert!(ratio > 3.0, "expected >3x dynamic drop, got {ratio:.2}x");
    }

    #[test]
    fn a7_draws_less_than_a15() {
        let a15 = CmosPowerModel::a15();
        let a7 = CmosPowerModel::a7();
        let opp = OppTable::odroid_xu3_a7().get(12).unwrap();
        let pa15 = a15.core_power(opp, 1.0, Temp::default()).total();
        let pa7 = a7.core_power(opp, 1.0, Temp::default()).total();
        assert!(pa7.as_watts() < 0.5 * pa15.as_watts());
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn activity_out_of_range_panics() {
        let model = CmosPowerModel::a15();
        let opp = OppTable::odroid_xu3_a15().get(0).unwrap();
        let _ = model.core_power(opp, 1.5, Temp::default());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_constant_panics() {
        let _ = CmosPowerModel::new(-1.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    }
}
