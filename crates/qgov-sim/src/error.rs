//! Error type for invalid simulator configurations and misuse.

use core::fmt;

/// Error returned by simulator constructors and stepping functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A platform or component was configured inconsistently.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// `run_frame` was called with a work vector whose length does not
    /// match the number of cores.
    WorkLengthMismatch {
        /// Number of cores on the platform.
        cores: usize,
        /// Length of the work vector supplied.
        got: usize,
    },
    /// An operating-point index was out of table range.
    OppOutOfRange {
        /// The requested index.
        index: usize,
        /// The table size.
        len: usize,
    },
    /// A core index was out of range.
    CoreOutOfRange {
        /// The requested core.
        core: usize,
        /// Number of cores.
        cores: usize,
    },
    /// A cluster index was out of range.
    ClusterOutOfRange {
        /// The requested cluster.
        cluster: usize,
        /// Number of clusters in the topology.
        clusters: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulator configuration: {reason}")
            }
            SimError::WorkLengthMismatch { cores, got } => write!(
                f,
                "work vector length {got} does not match core count {cores}"
            ),
            SimError::OppOutOfRange { index, len } => {
                write!(f, "operating point {index} out of range (table has {len})")
            }
            SimError::CoreOutOfRange { core, cores } => {
                write!(f, "core {core} out of range (platform has {cores})")
            }
            SimError::ClusterOutOfRange { cluster, clusters } => {
                write!(
                    f,
                    "cluster {cluster} out of range (topology has {clusters})"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::WorkLengthMismatch { cores: 4, got: 3 };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
        let e = SimError::OppOutOfRange { index: 19, len: 19 };
        assert!(e.to_string().contains("19"));
    }
}
