//! On-board power sensing.
//!
//! "Power is measured from on-board power sensors each frame and
//! subsequently, the energy is calculated by multiplying average power
//! with execution time" (Section III). The XU3's INA231 sensors deliver
//! quantised readings with measurement noise; this module reproduces
//! both so governors and experiments see realistic telemetry while the
//! simulator separately tracks ground-truth energy.

use qgov_units::{Energy, Power, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measurement characteristics of the power sensor.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorConfig {
    /// Reading resolution in milliwatts (readings round to a multiple).
    pub quantum_mw: f64,
    /// Relative Gaussian noise (standard deviation as a fraction of the
    /// reading). Zero for an ideal sensor.
    pub noise_fraction: f64,
    /// Seed for the noise generator.
    pub seed: u64,
}

impl SensorConfig {
    /// INA231-like characteristics: 5 mW resolution, 1 % noise.
    #[must_use]
    pub fn ina231(seed: u64) -> Self {
        SensorConfig {
            quantum_mw: 5.0,
            noise_fraction: 0.01,
            seed,
        }
    }

    /// A perfect sensor (exact readings) for deterministic unit tests.
    #[must_use]
    pub fn ideal() -> Self {
        SensorConfig {
            quantum_mw: 0.0,
            noise_fraction: 0.0,
            seed: 0,
        }
    }
}

impl Default for SensorConfig {
    fn default() -> Self {
        Self::ina231(0)
    }
}

/// Integrates true power over time and reports frame-averaged readings
/// with the configured quantisation and noise.
///
/// # Examples
///
/// ```
/// use qgov_sim::{PowerSensor, SensorConfig};
/// use qgov_units::{Power, SimTime};
///
/// let mut sensor = PowerSensor::new(SensorConfig::ideal());
/// sensor.integrate(Power::from_watts(2.0), SimTime::from_ms(10));
/// sensor.integrate(Power::from_watts(4.0), SimTime::from_ms(10));
/// let reading = sensor.read_frame_average();
/// assert!((reading.as_watts() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct PowerSensor {
    config: SensorConfig,
    rng: StdRng,
    /// Energy accumulated in the current frame window.
    frame_energy: Energy,
    /// Time accumulated in the current frame window.
    frame_time: SimTime,
    /// Ground-truth energy since construction.
    total_energy: Energy,
}

impl PowerSensor {
    /// Creates a sensor.
    #[must_use]
    pub fn new(config: SensorConfig) -> Self {
        assert!(
            config.quantum_mw.is_finite() && config.quantum_mw >= 0.0,
            "quantum must be finite and non-negative"
        );
        assert!(
            config.noise_fraction.is_finite() && (0.0..1.0).contains(&config.noise_fraction),
            "noise fraction must lie in [0, 1)"
        );
        let rng = StdRng::seed_from_u64(config.seed);
        PowerSensor {
            config,
            rng,
            frame_energy: Energy::ZERO,
            frame_time: SimTime::ZERO,
            total_energy: Energy::ZERO,
        }
    }

    /// Accumulates `power` drawn for `span` into the current frame
    /// window (and the ground-truth total).
    pub fn integrate(&mut self, power: Power, span: SimTime) {
        let e = power * span;
        self.frame_energy += e;
        self.frame_time += span;
        self.total_energy += e;
    }

    /// Closes the current frame window and returns the sensor's reading
    /// of its average power, including quantisation and noise. Resets
    /// the window.
    pub fn read_frame_average(&mut self) -> Power {
        let true_avg = if self.frame_time.is_zero() {
            0.0
        } else {
            self.frame_energy.as_joules() / self.frame_time.as_secs_f64()
        };
        self.frame_energy = Energy::ZERO;
        self.frame_time = SimTime::ZERO;
        let noisy = if self.config.noise_fraction > 0.0 {
            let g = gaussian(&mut self.rng);
            (true_avg * (1.0 + self.config.noise_fraction * g)).max(0.0)
        } else {
            true_avg
        };
        let quantised = if self.config.quantum_mw > 0.0 {
            let q = self.config.quantum_mw / 1_000.0;
            (noisy / q).round() * q
        } else {
            noisy
        };
        Power::from_watts(quantised)
    }

    /// Ground-truth energy integrated since construction (what a perfect
    /// lab meter would report; used for Oracle normalisation).
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }
}

/// A standard-normal sample via Box–Muller from the seeded stream.
fn gaussian(rng: &mut StdRng) -> f64 {
    use rand::Rng;
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_reports_exact_average() {
        let mut s = PowerSensor::new(SensorConfig::ideal());
        s.integrate(Power::from_watts(1.0), SimTime::from_ms(30));
        s.integrate(Power::from_watts(3.0), SimTime::from_ms(10));
        // (1*30 + 3*10)/40 = 1.5 W
        assert!((s.read_frame_average().as_watts() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn window_resets_between_frames() {
        let mut s = PowerSensor::new(SensorConfig::ideal());
        s.integrate(Power::from_watts(2.0), SimTime::from_ms(10));
        let _ = s.read_frame_average();
        s.integrate(Power::from_watts(4.0), SimTime::from_ms(10));
        assert!((s.read_frame_average().as_watts() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_reads_zero() {
        let mut s = PowerSensor::new(SensorConfig::ideal());
        assert_eq!(s.read_frame_average(), Power::ZERO);
    }

    #[test]
    fn total_energy_is_ground_truth_across_frames() {
        let mut s = PowerSensor::new(SensorConfig::ina231(1));
        s.integrate(Power::from_watts(2.0), SimTime::from_secs(1));
        let _ = s.read_frame_average();
        s.integrate(Power::from_watts(3.0), SimTime::from_secs(1));
        let _ = s.read_frame_average();
        assert!((s.total_energy().as_joules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantisation_rounds_to_grid() {
        let mut s = PowerSensor::new(SensorConfig {
            quantum_mw: 100.0,
            noise_fraction: 0.0,
            seed: 0,
        });
        s.integrate(Power::from_watts(1.234), SimTime::from_ms(10));
        assert!((s.read_frame_average().as_watts() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_small() {
        let run = |seed| {
            let mut s = PowerSensor::new(SensorConfig {
                quantum_mw: 0.0,
                noise_fraction: 0.01,
                seed,
            });
            let mut readings = Vec::new();
            for _ in 0..100 {
                s.integrate(Power::from_watts(2.0), SimTime::from_ms(10));
                readings.push(s.read_frame_average().as_watts());
            }
            readings
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce identical noise");
        let c = run(43);
        assert_ne!(a, c, "different seeds must differ");
        // 1 % noise: all readings within 10 sigma of truth.
        for r in &a {
            assert!((r - 2.0).abs() < 0.2, "implausible reading {r}");
        }
        // Mean close to truth.
        let mean: f64 = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - 2.0).abs() < 0.01, "biased mean {mean}");
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn bad_noise_fraction_panics() {
        let _ = PowerSensor::new(SensorConfig {
            quantum_mw: 0.0,
            noise_fraction: 1.5,
            seed: 0,
        });
    }
}
