//! Cluster topologies: from one V-F island to a true many-core chip.
//!
//! The base [`Platform`] models a single cluster — one core group on one
//! V-F rail with one thermal node, which is exactly the scope of each of
//! the paper's per-cluster run-time managers. This module composes those
//! single-cluster platforms into a [`Topology`] of heterogeneous
//! clusters ([`ManyCorePlatform`]): each cluster keeps its own core
//! count, OPP table, V-F domain, power model, sensor, and thermal node,
//! and a frame executes on every cluster under a shared period before
//! all clusters join at the global barrier.
//!
//! A one-cluster topology is *literally* the wrapped [`Platform`]: every
//! frame routes through the unchanged [`Platform::run_frame_into`]
//! kernel, so single-cluster results are bit-identical to the
//! pre-topology code path.

use crate::{FrameResult, Platform, PlatformConfig, SimError, WorkSlice};
use qgov_units::{Energy, SimTime, Temp};

/// One cluster of a [`Topology`]: a named single-cluster platform
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Cluster name ("big", "LITTLE", "mesh3", ...).
    pub name: String,
    /// The cluster's platform: core count, OPP table, V-F domain, power
    /// model, DVFS costs, sensor, thermal node.
    pub platform: PlatformConfig,
}

impl ClusterConfig {
    /// Creates a named cluster.
    #[must_use]
    pub fn new(name: impl Into<String>, platform: PlatformConfig) -> Self {
        ClusterConfig {
            name: name.into(),
            platform,
        }
    }
}

/// A chip-level arrangement of clusters.
///
/// ```
/// use qgov_sim::Topology;
///
/// let board = Topology::odroid_xu3_biglittle();
/// assert_eq!(board.cluster_count(), 2);
/// assert_eq!(board.total_cores(), 8); // A15×4 + A7×4
///
/// let mesh = Topology::homogeneous_mesh(
///     8,
///     qgov_sim::PlatformConfig::odroid_xu3_a15(),
/// );
/// assert_eq!(mesh.total_cores(), 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// The clusters, in index order.
    pub clusters: Vec<ClusterConfig>,
}

impl Topology {
    /// Builds a topology from explicit clusters.
    #[must_use]
    pub fn new(clusters: Vec<ClusterConfig>) -> Self {
        Topology { clusters }
    }

    /// A single-cluster topology — the degenerate case that must behave
    /// bit-for-bit like the wrapped [`Platform`].
    #[must_use]
    pub fn single(platform: PlatformConfig) -> Self {
        Topology {
            clusters: vec![ClusterConfig::new("cluster0", platform)],
        }
    }

    /// The ODROID-XU3 board: a "big" Cortex-A15 quad next to a "LITTLE"
    /// Cortex-A7 quad, each on its own V-F rail with its own sensor and
    /// thermal node.
    #[must_use]
    pub fn odroid_xu3_biglittle() -> Self {
        Topology {
            clusters: vec![
                ClusterConfig::new("big", PlatformConfig::odroid_xu3_a15()),
                ClusterConfig::new("LITTLE", PlatformConfig::odroid_xu3_little()),
            ],
        }
    }

    /// A synthetic homogeneous mesh: `clusters` replicas of `template`,
    /// named `mesh0`, `mesh1`, ... — e.g. 4/8/16 A15 quads give the
    /// 16/32/64-core scaling points.
    #[must_use]
    pub fn homogeneous_mesh(clusters: usize, template: PlatformConfig) -> Self {
        Topology {
            clusters: (0..clusters)
                .map(|i| ClusterConfig::new(format!("mesh{i}"), template.clone()))
                .collect(),
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Total cores across all clusters.
    #[must_use]
    pub fn total_cores(&self) -> usize {
        self.clusters.iter().map(|c| c.platform.cores).sum()
    }

    /// Validates the topology.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if there are no clusters or
    /// any cluster's platform configuration is invalid.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.clusters.is_empty() {
            return Err(SimError::InvalidConfig {
                reason: "a topology needs at least one cluster".into(),
            });
        }
        for cluster in &self.clusters {
            cluster.platform.validate()?;
        }
        Ok(())
    }
}

/// Everything observable about one completed many-core frame: the
/// per-cluster [`FrameResult`]s plus chip-level aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ManyCoreFrameResult {
    /// Per-cluster frame results, in topology order.
    pub clusters: Vec<FrameResult>,
    /// Chip-level frame time: the slowest cluster's barrier time.
    pub frame_time: SimTime,
    /// Chip-level wall time: the longest cluster epoch.
    pub wall_time: SimTime,
    /// The shared period (deadline) this frame ran against.
    pub period: SimTime,
    /// Total ground-truth energy across all clusters.
    pub energy: Energy,
}

impl ManyCoreFrameResult {
    /// An all-zero result suitable as the reusable output slot of
    /// [`ManyCorePlatform::run_frame_into`] (its per-cluster slots grow
    /// to the cluster count on first use and are reused — allocation-free
    /// — thereafter).
    #[must_use]
    pub fn empty() -> Self {
        ManyCoreFrameResult {
            clusters: Vec::new(),
            frame_time: SimTime::ZERO,
            wall_time: SimTime::ZERO,
            period: SimTime::ZERO,
            energy: Energy::ZERO,
        }
    }

    /// Copies `other` into `self`, reusing the per-cluster
    /// [`FrameResult`] slots and their vector capacity (see
    /// [`FrameResult::copy_from`]) — allocation-free once `self` has
    /// grown to the chip's shape.
    pub fn copy_from(&mut self, other: &ManyCoreFrameResult) {
        self.clusters.truncate(other.clusters.len());
        while self.clusters.len() < other.clusters.len() {
            self.clusters.push(FrameResult::empty());
        }
        for (dst, src) in self.clusters.iter_mut().zip(&other.clusters) {
            dst.copy_from(src);
        }
        self.frame_time = other.frame_time;
        self.wall_time = other.wall_time;
        self.period = other.period;
        self.energy = other.energy;
    }

    /// One cluster's frame result.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster(&self, cluster: usize) -> &FrameResult {
        &self.clusters[cluster]
    }

    /// `true` if the slowest cluster still met the shared deadline.
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.frame_time <= self.period
    }

    /// Chip-level slack as a signed ratio:
    /// `(period − frame_time) / period`; positive when early.
    #[must_use]
    pub fn frame_slack(&self) -> f64 {
        (self.period.as_secs_f64() - self.frame_time.as_secs_f64()) / self.period.as_secs_f64()
    }
}

/// A topology of independently controlled clusters executing
/// frame-synchronously against a shared period.
///
/// Each cluster is a full [`Platform`] — the frame kernel, power,
/// sensing, and thermal state are exactly the single-cluster ones, which
/// is what makes the 1-cluster topology bit-identical to the wrapped
/// platform. Clusters advance their own local clocks (an early-finishing
/// cluster idles to the period tick; an overrunning cluster extends its
/// own epoch), and the chip-level result reports the slowest cluster.
///
/// ```
/// use qgov_sim::{ManyCoreFrameResult, ManyCorePlatform, Topology, WorkSlice};
/// use qgov_units::{Cycles, SimTime};
///
/// let mut chip = ManyCorePlatform::new(Topology::odroid_xu3_biglittle()).unwrap();
/// chip.set_cluster_opp(0, 18); // big at 2 GHz
/// chip.set_cluster_opp(1, 12); // LITTLE at 1.4 GHz
///
/// let work = vec![
///     vec![WorkSlice::cpu_only(Cycles::from_mcycles(40)); 4], // big
///     vec![WorkSlice::cpu_only(Cycles::from_mcycles(14)); 4], // LITTLE
/// ];
/// let mut frame = ManyCoreFrameResult::empty();
/// chip.run_frame_into(&work, SimTime::from_ms(40), &mut frame).unwrap();
/// assert!(frame.met_deadline());
/// assert_eq!(frame.clusters.len(), 2);
/// ```
#[derive(Debug)]
pub struct ManyCorePlatform {
    clusters: Vec<Platform>,
    names: Vec<String>,
}

impl ManyCorePlatform {
    /// Builds a many-core platform from a topology.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an invalid topology.
    pub fn new(topology: Topology) -> Result<Self, SimError> {
        topology.validate()?;
        let mut clusters = Vec::with_capacity(topology.clusters.len());
        let mut names = Vec::with_capacity(topology.clusters.len());
        for cluster in topology.clusters {
            clusters.push(Platform::new(cluster.platform)?);
            names.push(cluster.name);
        }
        Ok(ManyCorePlatform { clusters, names })
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Total cores across all clusters.
    #[must_use]
    pub fn total_cores(&self) -> usize {
        self.clusters.iter().map(Platform::cores).sum()
    }

    /// One cluster's name.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster_name(&self, cluster: usize) -> &str {
        &self.names[cluster]
    }

    /// Shared read access to one cluster's platform.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster(&self, cluster: usize) -> &Platform {
        &self.clusters[cluster]
    }

    /// Exclusive access to one cluster's platform (per-cluster OPP
    /// control, overhead charging, per-core DVFS on `PerCore` domains).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster_mut(&mut self, cluster: usize) -> &mut Platform {
        &mut self.clusters[cluster]
    }

    /// Number of cores in one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cores(&self, cluster: usize) -> usize {
        self.clusters[cluster].cores()
    }

    /// Retargets one cluster's V-F rail to OPP `index`. The transition
    /// latency is charged to that cluster's next frame as overhead.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` or `index` is out of range (use
    /// [`try_set_cluster_opp`](ManyCorePlatform::try_set_cluster_opp)
    /// for untrusted input).
    pub fn set_cluster_opp(&mut self, cluster: usize, index: usize) {
        self.try_set_cluster_opp(cluster, index)
            .expect("cluster / OPP index out of range");
    }

    /// Fallible variant of
    /// [`set_cluster_opp`](ManyCorePlatform::set_cluster_opp).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ClusterOutOfRange`] or
    /// [`SimError::OppOutOfRange`] for bad indices.
    pub fn try_set_cluster_opp(&mut self, cluster: usize, index: usize) -> Result<(), SimError> {
        self.cluster_checked_mut(cluster)?
            .try_set_cluster_opp(index)
    }

    /// Current OPP index of one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn current_opp(&self, cluster: usize) -> usize {
        self.clusters[cluster].current_opp()
    }

    /// One cluster's operating-point table.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn opp_table(&self, cluster: usize) -> &crate::OppTable {
        self.clusters[cluster].opp_table()
    }

    /// Charges overhead time (e.g. a per-cluster governor's processing
    /// cost) to one cluster's next frame.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn add_overhead(&mut self, cluster: usize, t: SimTime) {
        self.clusters[cluster].add_overhead(t);
    }

    /// One cluster's current die temperature.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn temperature(&self, cluster: usize) -> Temp {
        self.clusters[cluster].temperature()
    }

    /// Peak die temperature across all clusters so far.
    #[must_use]
    pub fn peak_temperature(&self) -> Temp {
        self.clusters
            .iter()
            .map(Platform::peak_temperature)
            .fold(Temp::default(), Temp::max)
    }

    /// Ground-truth energy dissipated across all clusters since
    /// construction.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.clusters
            .iter()
            .fold(Energy::ZERO, |acc, c| acc + c.total_energy())
    }

    /// Total V-F transitions across all clusters.
    #[must_use]
    pub fn total_transitions(&self) -> u64 {
        self.clusters.iter().map(|c| c.vf().transitions()).sum()
    }

    /// Cumulated V-F transition latency across all clusters.
    #[must_use]
    pub fn total_transition_latency(&self) -> SimTime {
        self.clusters
            .iter()
            .fold(SimTime::ZERO, |acc, c| acc + c.vf().total_latency())
    }

    /// Simulated time on the slowest cluster's local clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clusters
            .iter()
            .fold(SimTime::ZERO, |acc, c| acc.max(c.now()))
    }

    /// Frames executed so far (all clusters step in lockstep).
    #[must_use]
    pub fn frames_run(&self) -> u64 {
        self.clusters.first().map_or(0, Platform::frames_run)
    }

    /// Runs one frame on every cluster: cluster `c` executes
    /// `work[c]` through the unchanged single-cluster
    /// [`Platform::run_frame_into`] kernel, then all clusters join at
    /// the chip barrier and the result reports the slowest one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WorkLengthMismatch`] if `work.len()` differs
    /// from the cluster count or any `work[c].len()` differs from
    /// cluster `c`'s core count, or [`SimError::InvalidConfig`] if
    /// `period` is zero. All lengths are validated before any cluster
    /// runs, so no cluster state is mutated and `out` is left untouched
    /// on error.
    pub fn run_frame_into(
        &mut self,
        work: &[Vec<WorkSlice>],
        period: SimTime,
        out: &mut ManyCoreFrameResult,
    ) -> Result<(), SimError> {
        if work.len() != self.clusters.len() {
            return Err(SimError::WorkLengthMismatch {
                cores: self.clusters.len(),
                got: work.len(),
            });
        }
        if period.is_zero() {
            return Err(SimError::InvalidConfig {
                reason: "frame period must be non-zero".into(),
            });
        }
        for (cluster, slices) in work.iter().enumerate() {
            if slices.len() != self.clusters[cluster].cores() {
                return Err(SimError::WorkLengthMismatch {
                    cores: self.clusters[cluster].cores(),
                    got: slices.len(),
                });
            }
        }

        out.clusters.truncate(self.clusters.len());
        while out.clusters.len() < self.clusters.len() {
            out.clusters.push(FrameResult::empty());
        }

        let mut frame_time = SimTime::ZERO;
        let mut wall_time = SimTime::ZERO;
        let mut energy = Energy::ZERO;
        for (cluster, slices) in work.iter().enumerate() {
            let slot = &mut out.clusters[cluster];
            self.clusters[cluster]
                .run_frame_into(slices, period, slot)
                .expect("lengths validated above");
            frame_time = frame_time.max(slot.frame_time);
            wall_time = wall_time.max(slot.wall_time);
            energy += slot.energy;
        }
        out.frame_time = frame_time;
        out.wall_time = wall_time;
        out.period = period;
        out.energy = energy;
        Ok(())
    }

    /// Allocating convenience form of
    /// [`run_frame_into`](ManyCorePlatform::run_frame_into).
    ///
    /// # Errors
    ///
    /// Same as [`run_frame_into`](ManyCorePlatform::run_frame_into).
    pub fn run_frame(
        &mut self,
        work: &[Vec<WorkSlice>],
        period: SimTime,
    ) -> Result<ManyCoreFrameResult, SimError> {
        let mut out = ManyCoreFrameResult::empty();
        self.run_frame_into(work, period, &mut out)?;
        Ok(out)
    }

    fn cluster_checked_mut(&mut self, cluster: usize) -> Result<&mut Platform, SimError> {
        let clusters = self.clusters.len();
        self.clusters
            .get_mut(cluster)
            .ok_or(SimError::ClusterOutOfRange { cluster, clusters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SensorConfig;
    use qgov_units::Cycles;

    fn quiet(config: PlatformConfig) -> PlatformConfig {
        PlatformConfig {
            sensor: SensorConfig::ideal(),
            ..config
        }
    }

    fn biglittle() -> ManyCorePlatform {
        ManyCorePlatform::new(Topology::new(vec![
            ClusterConfig::new("big", quiet(PlatformConfig::odroid_xu3_a15())),
            ClusterConfig::new("LITTLE", quiet(PlatformConfig::odroid_xu3_little())),
        ]))
        .unwrap()
    }

    #[test]
    fn presets_have_expected_shape() {
        let board = Topology::odroid_xu3_biglittle();
        assert_eq!(board.cluster_count(), 2);
        assert_eq!(board.total_cores(), 8);
        assert_eq!(board.clusters[0].name, "big");
        assert_eq!(board.clusters[1].name, "LITTLE");

        let mesh = Topology::homogeneous_mesh(4, PlatformConfig::odroid_xu3_a15());
        assert_eq!(mesh.total_cores(), 16);
        assert_eq!(mesh.clusters[3].name, "mesh3");

        assert_eq!(
            Topology::single(PlatformConfig::odroid_xu3_a15()).total_cores(),
            4
        );
    }

    #[test]
    fn empty_topology_is_rejected() {
        assert!(Topology::new(Vec::new()).validate().is_err());
        assert!(ManyCorePlatform::new(Topology::new(Vec::new())).is_err());
    }

    #[test]
    fn single_cluster_topology_is_bit_identical_to_the_platform() {
        let config = quiet(PlatformConfig::odroid_xu3_a15());
        let mut flat = Platform::new(config.clone()).unwrap();
        let mut chip = ManyCorePlatform::new(Topology::single(config)).unwrap();

        flat.set_cluster_opp(9);
        chip.set_cluster_opp(0, 9);

        let slices = vec![
            WorkSlice::cpu_only(Cycles::from_mcycles(25)),
            WorkSlice::new(Cycles::from_mcycles(40), SimTime::from_ms(3)),
            WorkSlice::IDLE,
            WorkSlice::cpu_only(Cycles::from_mcycles(8)),
        ];
        let work = vec![slices.clone()];
        let period = SimTime::from_ms(40);

        let mut slot = ManyCoreFrameResult::empty();
        for _ in 0..50 {
            let reference = flat.run_frame(&slices, period).unwrap();
            chip.run_frame_into(&work, period, &mut slot).unwrap();
            assert_eq!(slot.clusters[0], reference);
            assert_eq!(
                slot.energy.as_joules().to_bits(),
                reference.energy.as_joules().to_bits()
            );
            assert_eq!(slot.frame_time, reference.frame_time);
            assert_eq!(slot.wall_time, reference.wall_time);
        }
        assert_eq!(
            chip.total_energy().as_joules().to_bits(),
            flat.total_energy().as_joules().to_bits()
        );
        assert_eq!(chip.now(), flat.now());
        assert_eq!(chip.peak_temperature(), flat.peak_temperature());
        assert_eq!(chip.total_transitions(), flat.vf().transitions());
    }

    #[test]
    fn chip_barrier_reports_the_slowest_cluster() {
        let mut chip = biglittle();
        chip.set_cluster_opp(0, 18); // big at 2 GHz
        chip.set_cluster_opp(1, 0); // LITTLE at 200 MHz

        // 20 Mc: 10 ms on big, 100 ms on LITTLE — LITTLE overruns.
        let work = vec![
            vec![WorkSlice::cpu_only(Cycles::from_mcycles(20)); 4],
            vec![WorkSlice::cpu_only(Cycles::from_mcycles(20)); 4],
        ];
        let frame = chip.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert!(!frame.met_deadline());
        assert!(frame.frame_time >= SimTime::from_ms(100));
        assert!(frame.clusters[0].met_deadline());
        assert!(!frame.clusters[1].met_deadline());
        assert_eq!(
            frame.energy.as_joules().to_bits(),
            (frame.clusters[0].energy + frame.clusters[1].energy)
                .as_joules()
                .to_bits()
        );
    }

    #[test]
    fn per_cluster_opp_control_is_independent() {
        let mut chip = biglittle();
        chip.set_cluster_opp(0, 18);
        assert_eq!(chip.current_opp(0), 18);
        assert_eq!(chip.current_opp(1), 0);
        assert_eq!(chip.opp_table(0).len(), 19);
        assert_eq!(chip.opp_table(1).len(), 13);
        assert_eq!(chip.cluster_name(0), "big");
        assert!(matches!(
            chip.try_set_cluster_opp(2, 0),
            Err(SimError::ClusterOutOfRange {
                cluster: 2,
                clusters: 2
            })
        ));
        assert!(chip.try_set_cluster_opp(1, 13).is_err());
    }

    #[test]
    fn run_frame_into_validates_before_mutating() {
        let mut chip = biglittle();
        let mut slot = ManyCoreFrameResult::empty();
        let good = vec![
            vec![WorkSlice::cpu_only(Cycles::from_mcycles(5)); 4],
            vec![WorkSlice::cpu_only(Cycles::from_mcycles(5)); 4],
        ];
        chip.run_frame_into(&good, SimTime::from_ms(40), &mut slot)
            .unwrap();
        let before = slot.clone();
        let frames = chip.frames_run();

        // Wrong cluster count, wrong per-cluster core count, zero period:
        // all rejected with no cluster stepped and the slot untouched.
        let wrong_clusters = vec![good[0].clone()];
        let wrong_cores = vec![good[0].clone(), vec![WorkSlice::IDLE; 3]];
        assert!(chip
            .run_frame_into(&wrong_clusters, SimTime::from_ms(40), &mut slot)
            .is_err());
        assert!(chip
            .run_frame_into(&wrong_cores, SimTime::from_ms(40), &mut slot)
            .is_err());
        assert!(chip
            .run_frame_into(&good, SimTime::ZERO, &mut slot)
            .is_err());
        assert_eq!(slot, before);
        assert_eq!(chip.frames_run(), frames);
        assert_eq!(chip.cluster(1).frames_run(), frames);
    }

    #[test]
    fn little_cluster_is_cheaper_on_the_same_light_work() {
        // The board's whole premise: for work both clusters can finish
        // in time, the A7 quad dissipates far less energy.
        let mut chip = biglittle();
        chip.set_cluster_opp(0, 18);
        chip.set_cluster_opp(1, 12);

        // 14 Mc fits the period on both (7 ms big, 10 ms LITTLE).
        let work = vec![
            vec![WorkSlice::cpu_only(Cycles::from_mcycles(14)); 4],
            vec![WorkSlice::cpu_only(Cycles::from_mcycles(14)); 4],
        ];
        let frame = chip.run_frame(&work, SimTime::from_ms(40)).unwrap();
        assert!(frame.clusters[0].met_deadline());
        assert!(frame.clusters[1].met_deadline());
        assert!(
            frame.clusters[1].energy.as_joules() < 0.5 * frame.clusters[0].energy.as_joules(),
            "LITTLE ({}) should be far cheaper than big ({})",
            frame.clusters[1].energy,
            frame.clusters[0].energy
        );
    }
}
