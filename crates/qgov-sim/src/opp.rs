//! Voltage–frequency operating points.

use crate::SimError;
use qgov_units::{Freq, Volt};

/// A single operating performance point: a frequency and the supply
/// voltage required to sustain it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Opp {
    /// Clock frequency of the point.
    pub freq: Freq,
    /// Supply voltage of the point.
    pub volt: Volt,
}

impl Opp {
    /// Creates an operating point.
    #[must_use]
    pub const fn new(freq: Freq, volt: Volt) -> Self {
        Opp { freq, volt }
    }
}

impl core::fmt::Display for Opp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} @ {}", self.freq, self.volt)
    }
}

/// An ordered table of operating points — the action space `A{V, F}` of
/// the paper's Q-table.
///
/// Points are kept in strictly ascending frequency order with
/// non-decreasing voltage, the invariant real `cpufreq` tables satisfy.
///
/// # Examples
///
/// ```
/// use qgov_sim::OppTable;
///
/// let table = OppTable::odroid_xu3_a15();
/// assert_eq!(table.len(), 19); // 200 MHz ..= 2000 MHz in 100 MHz steps
/// assert_eq!(table.get(0).unwrap().freq.as_mhz(), 200.0);
/// assert_eq!(table.get(18).unwrap().freq.as_mhz(), 2000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OppTable {
    points: Vec<Opp>,
}

impl OppTable {
    /// Creates a table from ascending operating points.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the table is empty, the
    /// frequencies are not strictly ascending, or the voltages decrease
    /// with frequency.
    pub fn new(points: Vec<Opp>) -> Result<Self, SimError> {
        if points.is_empty() {
            return Err(SimError::InvalidConfig {
                reason: "operating-point table must be non-empty".into(),
            });
        }
        for pair in points.windows(2) {
            if pair[0].freq >= pair[1].freq {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "frequencies must be strictly ascending ({} then {})",
                        pair[0].freq, pair[1].freq
                    ),
                });
            }
            if pair[0].volt > pair[1].volt {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "voltage must not decrease with frequency ({} then {})",
                        pair[0].volt, pair[1].volt
                    ),
                });
            }
        }
        Ok(OppTable { points })
    }

    /// The 19-point ARM Cortex-A15 cluster table of the ODROID-XU3:
    /// 200 MHz to 2000 MHz in 100 MHz steps, with a voltage curve
    /// matching the board's stock DVFS table (0.90 V – 1.3625 V).
    #[must_use]
    pub fn odroid_xu3_a15() -> Self {
        const TABLE_MHZ_MV: [(u64, f64); 19] = [
            (200, 900.0),
            (300, 912.5),
            (400, 925.0),
            (500, 937.5),
            (600, 950.0),
            (700, 975.0),
            (800, 1000.0),
            (900, 1025.0),
            (1000, 1050.0),
            (1100, 1075.0),
            (1200, 1112.5),
            (1300, 1150.0),
            (1400, 1187.5),
            (1500, 1225.0),
            (1600, 1262.5),
            (1700, 1300.0),
            (1800, 1337.5),
            (1900, 1350.0),
            (2000, 1362.5),
        ];
        let points = TABLE_MHZ_MV
            .iter()
            .map(|&(mhz, mv)| Opp::new(Freq::from_mhz(mhz), Volt::from_mv(mv)))
            .collect();
        Self::new(points).expect("built-in A15 table is valid")
    }

    /// The 13-point ARM Cortex-A7 cluster table of the ODROID-XU3:
    /// 200 MHz to 1400 MHz in 100 MHz steps.
    #[must_use]
    pub fn odroid_xu3_a7() -> Self {
        const TABLE_MHZ_MV: [(u64, f64); 13] = [
            (200, 912.5),
            (300, 925.0),
            (400, 937.5),
            (500, 950.0),
            (600, 975.0),
            (700, 987.5),
            (800, 1000.0),
            (900, 1037.5),
            (1000, 1075.0),
            (1100, 1112.5),
            (1200, 1150.0),
            (1300, 1200.0),
            (1400, 1250.0),
        ];
        let points = TABLE_MHZ_MV
            .iter()
            .map(|&(mhz, mv)| Opp::new(Freq::from_mhz(mhz), Volt::from_mv(mv)))
            .collect();
        Self::new(points).expect("built-in A7 table is valid")
    }

    /// Number of operating points (19 for the XU3 A15 — the paper's
    /// action-space size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `false`: a table is never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The operating point at `index`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Opp> {
        self.points.get(index).copied()
    }

    /// All points in ascending frequency order.
    #[must_use]
    pub fn points(&self) -> &[Opp] {
        &self.points
    }

    /// Iterates over the points in ascending frequency order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Opp> + '_ {
        self.points.iter().copied()
    }

    /// The index of the lowest operating point.
    #[must_use]
    pub fn min_index(&self) -> usize {
        0
    }

    /// The index of the highest operating point.
    #[must_use]
    pub fn max_index(&self) -> usize {
        self.points.len() - 1
    }

    /// The lowest frequency in the table.
    #[must_use]
    pub fn min_freq(&self) -> Freq {
        self.points[0].freq
    }

    /// The highest frequency in the table.
    #[must_use]
    pub fn max_freq(&self) -> Freq {
        self.points[self.points.len() - 1].freq
    }

    /// The index of the slowest point whose frequency is at least
    /// `freq`, or the top point if none suffices — how `cpufreq` maps a
    /// requested frequency onto a discrete table.
    #[must_use]
    pub fn index_at_or_above(&self, freq: Freq) -> usize {
        self.points
            .iter()
            .position(|p| p.freq >= freq)
            .unwrap_or(self.points.len() - 1)
    }

    /// The index of the fastest point whose frequency is at most
    /// `freq`, or the bottom point if none qualifies.
    #[must_use]
    pub fn index_at_or_below(&self, freq: Freq) -> usize {
        self.points
            .iter()
            .rposition(|p| p.freq <= freq)
            .unwrap_or_default()
    }

    /// The index of the point closest in frequency to `freq` (ties go
    /// down, favouring the lower-power point).
    #[must_use]
    pub fn nearest_index(&self, freq: Freq) -> usize {
        let mut best = 0;
        let mut best_diff = self.points[0].freq.abs_diff(freq);
        for (i, p) in self.points.iter().enumerate().skip(1) {
            let d = p.freq.abs_diff(freq);
            if d < best_diff {
                best = i;
                best_diff = d;
            }
        }
        best
    }

    /// Per-point frequencies in GHz — the `F` vector consumed by the
    /// EPD exploration policy (Eq. 2).
    #[must_use]
    pub fn freqs_ghz(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.freq.as_ghz()).collect()
    }

    /// Validates an index, converting it to a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OppOutOfRange`] if `index >= len()`.
    pub fn check_index(&self, index: usize) -> Result<(), SimError> {
        if index >= self.points.len() {
            Err(SimError::OppOutOfRange {
                index,
                len: self.points.len(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a15_table_matches_paper() {
        let t = OppTable::odroid_xu3_a15();
        assert_eq!(t.len(), 19);
        assert_eq!(t.min_freq(), Freq::from_mhz(200));
        assert_eq!(t.max_freq(), Freq::from_mhz(2000));
        // 100 MHz steps.
        for (i, p) in t.iter().enumerate() {
            assert_eq!(p.freq, Freq::from_mhz(200 + 100 * i as u64));
        }
    }

    #[test]
    fn a7_table_is_smaller_and_slower() {
        let t = OppTable::odroid_xu3_a7();
        assert_eq!(t.len(), 13);
        assert_eq!(t.max_freq(), Freq::from_mhz(1400));
    }

    #[test]
    fn voltages_are_monotone() {
        for t in [OppTable::odroid_xu3_a15(), OppTable::odroid_xu3_a7()] {
            for pair in t.points().windows(2) {
                assert!(pair[0].volt <= pair[1].volt);
            }
        }
    }

    #[test]
    fn rejects_unsorted_frequencies() {
        let pts = vec![
            Opp::new(Freq::from_mhz(500), Volt::from_mv(900.0)),
            Opp::new(Freq::from_mhz(400), Volt::from_mv(950.0)),
        ];
        assert!(OppTable::new(pts).is_err());
    }

    #[test]
    fn rejects_decreasing_voltage() {
        let pts = vec![
            Opp::new(Freq::from_mhz(400), Volt::from_mv(950.0)),
            Opp::new(Freq::from_mhz(500), Volt::from_mv(900.0)),
        ];
        assert!(OppTable::new(pts).is_err());
    }

    #[test]
    fn rejects_empty_table() {
        assert!(OppTable::new(vec![]).is_err());
    }

    #[test]
    fn index_lookups() {
        let t = OppTable::odroid_xu3_a15();
        assert_eq!(t.index_at_or_above(Freq::from_mhz(1)), 0);
        assert_eq!(t.index_at_or_above(Freq::from_mhz(200)), 0);
        assert_eq!(t.index_at_or_above(Freq::from_mhz(250)), 1);
        assert_eq!(t.index_at_or_above(Freq::from_mhz(2000)), 18);
        assert_eq!(t.index_at_or_above(Freq::from_mhz(9999)), 18);
        assert_eq!(t.index_at_or_below(Freq::from_mhz(1)), 0);
        assert_eq!(t.index_at_or_below(Freq::from_mhz(250)), 0);
        assert_eq!(t.index_at_or_below(Freq::from_mhz(2000)), 18);
        assert_eq!(t.nearest_index(Freq::from_mhz(240)), 0);
        assert_eq!(t.nearest_index(Freq::from_mhz(260)), 1);
        // Tie 250: goes down.
        assert_eq!(t.nearest_index(Freq::from_mhz(250)), 0);
    }

    #[test]
    fn freqs_ghz_matches_table() {
        let t = OppTable::odroid_xu3_a15();
        let f = t.freqs_ghz();
        assert_eq!(f.len(), 19);
        assert!((f[0] - 0.2).abs() < 1e-12);
        assert!((f[18] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn check_index_bounds() {
        let t = OppTable::odroid_xu3_a15();
        assert!(t.check_index(18).is_ok());
        assert!(t.check_index(19).is_err());
    }

    #[test]
    fn display_shows_freq_and_volt() {
        let t = OppTable::odroid_xu3_a15();
        let s = t.get(18).unwrap().to_string();
        assert!(s.contains("2000 MHz"));
        assert!(s.contains("1.3625 V"));
    }
}
