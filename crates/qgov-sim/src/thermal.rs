//! Lumped RC thermal model.
//!
//! The paper neglects the thermal constraint when comparing against the
//! thermal-aware baseline of Ge & Qiu ("the thermal constraint was
//! neglected for equivalence of comparison", Section III-A), but the
//! leakage term of the power model depends on die temperature, and the
//! thermal trajectory is needed for extensions. A single-node RC network
//! is the standard compact model:
//!
//! ```text
//! T(t + Δt) = T_amb + P·R_th + (T(t) − T_amb − P·R_th)·exp(−Δt/τ)
//! ```

use qgov_units::{Power, SimTime, Temp};

/// Thermal network parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThermalConfig {
    /// Thermal resistance junction→ambient in °C per watt.
    pub r_th: f64,
    /// Thermal time constant τ.
    pub tau: SimTime,
    /// Ambient temperature.
    pub ambient: Temp,
}

impl ThermalConfig {
    /// XU3-like passively-cooled SoC: 8 °C/W, τ = 4 s, 25 °C ambient
    /// (quad-A15 full load settles near 70–80 °C, where the stock board
    /// starts throttling).
    #[must_use]
    pub fn odroid_xu3() -> Self {
        ThermalConfig {
            r_th: 8.0,
            tau: SimTime::from_secs(4),
            ambient: Temp::from_celsius(25.0),
        }
    }
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self::odroid_xu3()
    }
}

/// Integrates the RC network over frame-sized steps.
///
/// # Examples
///
/// ```
/// use qgov_sim::{ThermalConfig, ThermalModel};
/// use qgov_units::{Power, SimTime, Temp};
///
/// let mut t = ThermalModel::new(ThermalConfig::odroid_xu3());
/// for _ in 0..10_000 {
///     t.step(Power::from_watts(5.0), SimTime::from_ms(40));
/// }
/// // Steady state: 25 + 5 W * 8 degC/W = 65 degC.
/// assert!((t.temperature().as_celsius() - 65.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalModel {
    config: ThermalConfig,
    temperature: Temp,
    peak: Temp,
}

impl ThermalModel {
    /// Creates a model starting at ambient.
    ///
    /// # Panics
    ///
    /// Panics if `r_th` is not finite/positive or `tau` is zero.
    #[must_use]
    pub fn new(config: ThermalConfig) -> Self {
        assert!(
            config.r_th.is_finite() && config.r_th > 0.0,
            "thermal resistance must be finite and positive"
        );
        assert!(
            !config.tau.is_zero(),
            "thermal time constant must be non-zero"
        );
        ThermalModel {
            temperature: config.ambient,
            peak: config.ambient,
            config,
        }
    }

    /// Current die temperature.
    #[must_use]
    pub fn temperature(&self) -> Temp {
        self.temperature
    }

    /// Highest die temperature seen so far.
    #[must_use]
    pub fn peak(&self) -> Temp {
        self.peak
    }

    /// The temperature the die would settle at under constant `power`.
    #[must_use]
    pub fn steady_state(&self, power: Power) -> Temp {
        Temp::from_celsius(self.config.ambient.as_celsius() + power.as_watts() * self.config.r_th)
    }

    /// Advances the network by `dt` under dissipated `power`, returning
    /// the new die temperature.
    pub fn step(&mut self, power: Power, dt: SimTime) -> Temp {
        let target = self.steady_state(power).as_celsius();
        let t = self.temperature.as_celsius();
        let decay = (-dt.as_secs_f64() / self.config.tau.as_secs_f64()).exp();
        self.temperature = Temp::from_celsius(target + (t - target) * decay);
        self.peak = self.peak.max(self.temperature);
        self.temperature
    }

    /// Resets the die to ambient.
    pub fn reset(&mut self) {
        self.temperature = self.config.ambient;
        self.peak = self.config.ambient;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient() {
        let t = ThermalModel::new(ThermalConfig::odroid_xu3());
        assert_eq!(t.temperature().as_celsius(), 25.0);
    }

    #[test]
    fn heats_towards_steady_state_monotonically() {
        let mut t = ThermalModel::new(ThermalConfig::odroid_xu3());
        let mut prev = t.temperature().as_celsius();
        for _ in 0..100 {
            let now = t
                .step(Power::from_watts(5.0), SimTime::from_ms(100))
                .as_celsius();
            assert!(now >= prev, "heating must be monotone");
            assert!(now <= 65.0 + 1e-9, "must not overshoot steady state");
            prev = now;
        }
    }

    #[test]
    fn cools_when_power_drops() {
        let mut t = ThermalModel::new(ThermalConfig::odroid_xu3());
        for _ in 0..1000 {
            t.step(Power::from_watts(6.0), SimTime::from_ms(100));
        }
        let hot = t.temperature().as_celsius();
        for _ in 0..1000 {
            t.step(Power::from_watts(0.5), SimTime::from_ms(100));
        }
        assert!(t.temperature().as_celsius() < hot);
        assert!(t.temperature().as_celsius() >= 25.0);
        assert!(
            (t.peak().as_celsius() - hot).abs() < 1e-9,
            "peak is remembered"
        );
    }

    #[test]
    fn time_constant_governs_speed() {
        let fast_cfg = ThermalConfig {
            tau: SimTime::from_ms(500),
            ..ThermalConfig::odroid_xu3()
        };
        let mut fast = ThermalModel::new(fast_cfg);
        let mut slow = ThermalModel::new(ThermalConfig::odroid_xu3());
        for _ in 0..10 {
            fast.step(Power::from_watts(5.0), SimTime::from_ms(100));
            slow.step(Power::from_watts(5.0), SimTime::from_ms(100));
        }
        assert!(fast.temperature() > slow.temperature());
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut t = ThermalModel::new(ThermalConfig::odroid_xu3());
        t.step(Power::from_watts(6.0), SimTime::from_secs(10));
        t.reset();
        assert_eq!(t.temperature().as_celsius(), 25.0);
        assert_eq!(t.peak().as_celsius(), 25.0);
    }

    #[test]
    fn steady_state_formula() {
        let t = ThermalModel::new(ThermalConfig::odroid_xu3());
        assert_eq!(t.steady_state(Power::from_watts(2.0)).as_celsius(), 41.0);
    }
}
