//! Deterministic many-core platform simulator.
//!
//! This crate stands in for the ODROID-XU3 board the paper evaluates on
//! (four ARM Cortex-A15 cores, 19 V-F operating points, on-board INA231
//! power sensors, per-core performance monitoring units). A run-time
//! manager only ever *observes* cycle counts, execution times, and power
//! readings, and *actuates* operating-point changes — so a simulator
//! exposing the same observation/actuation surface with realistic
//! magnitudes exercises the full governor code path.
//!
//! The pieces:
//!
//! * [`OppTable`] / [`Opp`] — voltage–frequency operating points, with
//!   the XU3 A15 table as a preset ([`OppTable::odroid_xu3_a15`]);
//! * [`CmosPowerModel`] — dynamic `C·V²·f` switching power plus
//!   temperature-dependent leakage, calibrated against published XU3
//!   A15 measurements;
//! * [`Pmu`] — per-core cycle/instruction counters;
//! * [`PowerSensor`] — quantised, optionally noisy power readings, as
//!   delivered by the board's INA231 sensors;
//! * [`ThermalModel`] — a lumped RC thermal network;
//! * [`VfController`] — applies OPP changes with realistic transition
//!   latency (voltage-regulator slew + PLL relock);
//! * [`Platform`] — ties everything together with frame-synchronous
//!   execution: the governor assigns per-core [`WorkSlice`]s, the
//!   platform runs them to the barrier and returns a [`FrameResult`];
//! * [`FaultPlan`] / [`FaultInjector`] — deterministic, seeded fault
//!   injection between the platform and the governor: sensor
//!   corruption, actuation faults, and permanent core drop-outs.
//!
//! # Example
//!
//! ```
//! use qgov_sim::{Platform, PlatformConfig, WorkSlice};
//! use qgov_units::{Cycles, SimTime};
//!
//! let mut platform = Platform::new(PlatformConfig::odroid_xu3_a15()).unwrap();
//! let top = platform.opp_table().len() - 1;
//! platform.set_cluster_opp(top);
//!
//! // Run one 40 ms frame with 10 Mcycles of work on each core.
//! let work = vec![WorkSlice::cpu_only(qgov_units::Cycles::from_mcycles(10)); 4];
//! let frame = platform.run_frame(&work, SimTime::from_ms(40)).unwrap();
//! assert!(frame.frame_time < SimTime::from_ms(40)); // 2 GHz is plenty
//! assert!(frame.energy.as_joules() > 0.0);
//! # let _ = Cycles::ZERO;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod dvfs;
mod error;
mod fault;
mod opp;
mod platform;
mod pmu;
mod power;
mod sensor;
mod thermal;

pub use cluster::{ClusterConfig, ManyCoreFrameResult, ManyCorePlatform, Topology};
pub use dvfs::{DvfsConfig, VfController, VfDomain};
pub use error::SimError;
pub use fault::{Actuation, Fault, FaultInjector, FaultKind, FaultPlan};
pub use opp::{Opp, OppTable};
pub use platform::{FrameResult, Platform, PlatformConfig, WorkSlice};
pub use pmu::Pmu;
pub use power::{CmosPowerModel, PowerBreakdown, PowerModel};
pub use sensor::{PowerSensor, SensorConfig};
pub use thermal::{ThermalConfig, ThermalModel};
