//! Deterministic, seeded fault injection.
//!
//! Real boards lie: INA231 readings glitch, thermal sensors stick,
//! DVFS requests get lost between the governor and the regulator, and
//! cores drop out of the mesh for good. A [`FaultPlan`] describes such
//! a schedule declaratively; a [`FaultInjector`] replays it as a *pure
//! function of the plan, a seed, and the epoch index* — no hidden RNG
//! state — so any faulted run can be reproduced bit-for-bit from
//! `(plan, seed)` alone.
//!
//! The injector sits *between* the platform and the governor in the
//! harness loop:
//!
//! 1. [`FaultInjector::begin_epoch`] refreshes the dead-core masks;
//! 2. [`FaultInjector::redistribute_dead`] moves a dead core's work to
//!    its surviving neighbours before the frame runs;
//! 3. the platform executes the frame truthfully (physics are never
//!    faulted — only what the governor *sees* and *actuates*);
//! 4. [`FaultInjector::perturb_sensing`] corrupts the governor's copy
//!    of the [`FrameResult`];
//! 5. [`FaultInjector::actuation`] decides whether the governor's OPP
//!    request is honoured, ignored, clamped, or latched one epoch.
//!
//! An **empty plan is a guaranteed no-op**: every perturbation method
//! returns without touching its arguments, so a run threaded through an
//! empty-plan injector is bit-identical to one that never constructed
//! an injector at all (pinned by `tests/fault_injection.rs`).
//!
//! The injector allocates only at construction; every per-epoch method
//! is allocation-free.

use crate::platform::{FrameResult, WorkSlice};
use qgov_units::{Cycles, Energy, Power, Temp};

/// What one fault does while its window is active.
///
/// Sensor faults corrupt the governor-visible copy of a frame's
/// readings; actuation faults intercept the governor's OPP request;
/// [`CoreDrop`](FaultKind::CoreDrop) permanently removes a core from
/// service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The power sensor reports a constant `watts` regardless of the
    /// true dissipation.
    PowerStuck {
        /// The stuck reading, in watts.
        watts: f64,
    },
    /// Multiplicative noise on the power reading: the reported value is
    /// scaled by `1 + fraction · u` with `u ∈ [-1, 1)` drawn
    /// deterministically from the injector seed and epoch.
    PowerNoise {
        /// Peak relative perturbation (e.g. `0.5` for ±50 %).
        fraction: f64,
    },
    /// The power sensor returns zero (reading dropped on the wire).
    PowerDropped,
    /// The thermal sensor sticks at a constant `celsius`.
    TempStuck {
        /// The stuck reading, in °C.
        celsius: f64,
    },
    /// The thermal sensor reads `delta_c` above the true temperature —
    /// a transient spike as seen by the governor.
    TempSpike {
        /// Spike magnitude, in °C above truth.
        delta_c: f64,
    },
    /// Every PMU in the cluster reports a constant cycle count.
    PmuStuck {
        /// The stuck per-core cycle count.
        cycles: u64,
    },
    /// Every PMU in the cluster reads zero.
    PmuDropped,
    /// OPP requests are silently discarded: the platform stays at its
    /// current operating point.
    ActuationIgnored,
    /// OPP requests are clamped to at most `max_opp`.
    ActuationClamped {
        /// Highest OPP index the faulty regulator will accept.
        max_opp: usize,
    },
    /// OPP requests land one epoch late: each request is buffered and
    /// the previous epoch's buffered request is applied instead.
    ActuationLatched,
    /// Core `core` fails permanently at the fault's `start` epoch. The
    /// window `end` is ignored — dropped cores never come back.
    CoreDrop {
        /// Index of the failing core within its cluster.
        core: usize,
    },
}

/// One scheduled fault: a [`FaultKind`] active on `cluster` over the
/// half-open epoch window `[start, end)` (`end == None` means forever).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// Which cluster it happens to (use `0` on a single-cluster
    /// [`Platform`](crate::Platform) harness).
    pub cluster: usize,
    /// First epoch the fault is active.
    pub start: u64,
    /// First epoch the fault is no longer active; `None` keeps it
    /// active for the rest of the run.
    pub end: Option<u64>,
}

impl Fault {
    /// A fault active from `start` to the end of the run.
    #[must_use]
    pub const fn permanent(kind: FaultKind, cluster: usize, start: u64) -> Self {
        Fault {
            kind,
            cluster,
            start,
            end: None,
        }
    }

    /// A fault active over `[start, end)`.
    #[must_use]
    pub const fn window(kind: FaultKind, cluster: usize, start: u64, end: u64) -> Self {
        Fault {
            kind,
            cluster,
            start,
            end: Some(end),
        }
    }

    /// `true` if the fault is active at `epoch` on `cluster`.
    #[must_use]
    pub fn active_at(&self, epoch: u64, cluster: usize) -> bool {
        self.cluster == cluster
            && epoch >= self.start
            && match self.end {
                Some(end) => epoch < end,
                None => true,
            }
    }
}

/// A declarative fault schedule: the full list of [`Fault`]s a run will
/// experience, fixed before the run starts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (injects nothing; bit-identical to no injector).
    #[must_use]
    pub const fn none() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Builder-style append.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Appends a fault to the schedule.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// `true` if the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The scheduled faults, in insertion order (earlier faults win
    /// ties on the actuation path).
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// What happens to the governor's OPP request this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Actuation {
    /// The request reaches the platform unmodified.
    Honest,
    /// The request is discarded; the platform keeps its current OPP.
    Ignored,
    /// The request is clamped to at most the given OPP index.
    Clamped(usize),
    /// The request is buffered for one epoch; last epoch's buffered
    /// request (if any) applies instead — see
    /// [`FaultInjector::exchange_latched`].
    Latched,
}

/// Replays a [`FaultPlan`] deterministically against a running
/// experiment. See the module docs for where each method sits in the
/// per-epoch loop.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    faults: Vec<Fault>,
    seed: u64,
    /// Per-cluster core counts (fixed at construction).
    cores: Vec<usize>,
    /// Per-cluster dead-core bitmask, refreshed by [`begin_epoch`].
    ///
    /// [`begin_epoch`]: FaultInjector::begin_epoch
    dead: Vec<u64>,
    /// Per-cluster OPP request buffered by an active
    /// [`FaultKind::ActuationLatched`] fault.
    latched: Vec<Option<usize>>,
}

impl FaultInjector {
    /// Builds an injector for a chip with the given per-cluster core
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if any fault names a cluster outside the topology, a
    /// [`FaultKind::CoreDrop`] names a core outside its cluster, or a
    /// cluster has more than 64 cores (the dead mask is a `u64`).
    #[must_use]
    pub fn new(plan: &FaultPlan, seed: u64, cluster_cores: &[usize]) -> Self {
        assert!(
            cluster_cores.iter().all(|&c| c <= 64),
            "dead-core masks support at most 64 cores per cluster"
        );
        for fault in plan.faults() {
            assert!(
                fault.cluster < cluster_cores.len(),
                "fault targets cluster {} but the chip has {}",
                fault.cluster,
                cluster_cores.len()
            );
            if let FaultKind::CoreDrop { core } = fault.kind {
                assert!(
                    core < cluster_cores[fault.cluster],
                    "core drop targets core {core} but cluster {} has {} cores",
                    fault.cluster,
                    cluster_cores[fault.cluster]
                );
            }
        }
        FaultInjector {
            faults: plan.faults().to_vec(),
            seed,
            cores: cluster_cores.to_vec(),
            dead: vec![0; cluster_cores.len()],
            latched: vec![None; cluster_cores.len()],
        }
    }

    /// Builds an injector for a single-cluster [`Platform`] harness
    /// with `cores` cores (all faults must target cluster 0).
    ///
    /// [`Platform`]: crate::Platform
    ///
    /// # Panics
    ///
    /// Same conditions as [`FaultInjector::new`].
    #[must_use]
    pub fn single(plan: &FaultPlan, seed: u64, cores: usize) -> Self {
        Self::new(plan, seed, &[cores])
    }

    /// `true` if the plan schedules nothing (every method is a no-op).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Refreshes the per-cluster dead-core masks for `epoch`. Call once
    /// at the top of each decision epoch, before
    /// [`redistribute_dead`](FaultInjector::redistribute_dead).
    pub fn begin_epoch(&mut self, epoch: u64) {
        if self.faults.is_empty() {
            return;
        }
        for fault in &self.faults {
            // Core drops are permanent: active from `start` on,
            // regardless of the window end.
            if let FaultKind::CoreDrop { core } = fault.kind {
                if epoch >= fault.start {
                    self.dead[fault.cluster] |= 1u64 << core;
                }
            }
        }
    }

    /// `true` if `core` of `cluster` has dropped out.
    #[must_use]
    pub fn is_core_dead(&self, cluster: usize, core: usize) -> bool {
        self.dead[cluster] & (1u64 << core) != 0
    }

    /// Number of dropped cores on `cluster`.
    #[must_use]
    pub fn dead_core_count(&self, cluster: usize) -> u32 {
        self.dead[cluster].count_ones()
    }

    /// `true` if every core of `cluster` has dropped out.
    #[must_use]
    pub fn cluster_dead(&self, cluster: usize) -> bool {
        self.dead_core_count(cluster) as usize == self.cores[cluster]
    }

    /// Moves work assigned to dead cores onto the surviving cores of
    /// `cluster`, spreading the orphaned cycles and memory time evenly.
    /// Dead cores end up idle. If the whole cluster is dead nothing can
    /// run the work: it is dropped, and the dropped cycle count is
    /// returned — a harness must count a frame whose work was dropped
    /// as a missed deadline (the computation never happened). Returns
    /// [`Cycles::ZERO`] whenever every orphaned cycle found a survivor.
    pub fn redistribute_dead(&self, cluster: usize, work: &mut [WorkSlice]) -> Cycles {
        let mask = self.dead[cluster];
        if mask == 0 {
            return Cycles::ZERO;
        }
        let mut orphaned = WorkSlice::IDLE;
        for (core, slice) in work.iter_mut().enumerate() {
            if mask & (1u64 << core) != 0 {
                orphaned.cpu_cycles += slice.cpu_cycles;
                orphaned.mem_time += slice.mem_time;
                *slice = WorkSlice::IDLE;
            }
        }
        let alive = work.len() as u64 - mask.count_ones() as u64;
        if alive == 0 {
            return orphaned.cpu_cycles;
        }
        if orphaned.is_idle() {
            return Cycles::ZERO;
        }
        let share = WorkSlice::new(orphaned.cpu_cycles / alive, orphaned.mem_time / alive);
        let mut remainder = WorkSlice::new(orphaned.cpu_cycles - share.cpu_cycles * alive, {
            orphaned.mem_time - share.mem_time * alive
        });
        for (core, slice) in work.iter_mut().enumerate() {
            if mask & (1u64 << core) == 0 {
                slice.cpu_cycles += share.cpu_cycles + remainder.cpu_cycles;
                slice.mem_time += share.mem_time + remainder.mem_time;
                remainder = WorkSlice::IDLE; // first survivor takes it
            }
        }
        Cycles::ZERO
    }

    /// Corrupts the governor-visible copy of a frame's readings with
    /// every sensor fault active at `(epoch, cluster)`. The platform's
    /// own state (and the truth-side report) is never touched — pass a
    /// *copy* of the true [`FrameResult`].
    pub fn perturb_sensing(&self, epoch: u64, cluster: usize, sensed: &mut FrameResult) {
        for (index, fault) in self.faults.iter().enumerate() {
            if !fault.active_at(epoch, cluster) {
                continue;
            }
            match fault.kind {
                FaultKind::PowerStuck { watts } => {
                    sensed.measured_power = Power::from_watts(watts);
                    sensed.measured_energy = sensed.measured_power * sensed.wall_time;
                }
                FaultKind::PowerNoise { fraction } => {
                    let u = self.unit_draw(epoch, cluster, index);
                    let scale = 1.0 + fraction * u;
                    sensed.measured_power = sensed.measured_power * scale;
                    sensed.measured_energy = sensed.measured_power * sensed.wall_time;
                }
                FaultKind::PowerDropped => {
                    sensed.measured_power = Power::ZERO;
                    sensed.measured_energy = Energy::ZERO;
                }
                FaultKind::TempStuck { celsius } => {
                    sensed.temperature = Temp::from_celsius(celsius);
                }
                FaultKind::TempSpike { delta_c } => {
                    sensed.temperature =
                        Temp::from_celsius(sensed.temperature.as_celsius() + delta_c);
                }
                FaultKind::PmuStuck { cycles } => {
                    for c in sensed.per_core_cycles.iter_mut() {
                        *c = Cycles::new(cycles);
                    }
                }
                FaultKind::PmuDropped => {
                    for c in sensed.per_core_cycles.iter_mut() {
                        *c = Cycles::ZERO;
                    }
                }
                FaultKind::ActuationIgnored
                | FaultKind::ActuationClamped { .. }
                | FaultKind::ActuationLatched
                | FaultKind::CoreDrop { .. } => {}
            }
        }
    }

    /// What happens to an OPP request on `cluster` this epoch. The
    /// first active actuation fault in plan order wins.
    #[must_use]
    pub fn actuation(&self, epoch: u64, cluster: usize) -> Actuation {
        for fault in &self.faults {
            if !fault.active_at(epoch, cluster) {
                continue;
            }
            match fault.kind {
                FaultKind::ActuationIgnored => return Actuation::Ignored,
                FaultKind::ActuationClamped { max_opp } => return Actuation::Clamped(max_opp),
                FaultKind::ActuationLatched => return Actuation::Latched,
                _ => {}
            }
        }
        Actuation::Honest
    }

    /// Buffers `requested` for one epoch and returns the previously
    /// buffered request (the one that should be applied *now*). Used by
    /// the harness when [`actuation`](FaultInjector::actuation) returns
    /// [`Actuation::Latched`].
    pub fn exchange_latched(&mut self, cluster: usize, requested: usize) -> Option<usize> {
        self.latched[cluster].replace(requested)
    }

    /// Drains any request still buffered by a latched-actuation fault
    /// once the fault window has closed (so the delayed request is not
    /// lost forever).
    pub fn take_latched(&mut self, cluster: usize) -> Option<usize> {
        self.latched[cluster].take()
    }

    /// A deterministic draw in `[-1, 1)`, a pure function of the
    /// injector seed, epoch, cluster, and fault index (splitmix64).
    fn unit_draw(&self, epoch: u64, cluster: usize, index: usize) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((cluster as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((index as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // 53 random mantissa bits → [0, 1) → [-1, 1).
        ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_units::SimTime;

    fn frame() -> FrameResult {
        let mut f = FrameResult::empty();
        f.wall_time = SimTime::from_ms(40);
        f.per_core_cycles = vec![Cycles::from_mcycles(10); 4];
        f.measured_power = Power::from_watts(2.0);
        f.measured_energy = f.measured_power * f.wall_time;
        f.temperature = Temp::from_celsius(50.0);
        f
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let mut inj = FaultInjector::single(&FaultPlan::none(), 42, 4);
        assert!(inj.is_empty());
        inj.begin_epoch(7);
        let mut sensed = frame();
        let truth = sensed.clone();
        inj.perturb_sensing(7, 0, &mut sensed);
        assert_eq!(sensed, truth);
        let mut work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(5)); 4];
        let before = work.clone();
        inj.redistribute_dead(0, &mut work);
        assert_eq!(work, before);
        assert_eq!(inj.actuation(7, 0), Actuation::Honest);
    }

    #[test]
    fn windows_bound_sensor_faults() {
        let plan = FaultPlan::none().with(Fault::window(FaultKind::PowerDropped, 0, 10, 20));
        let inj = FaultInjector::single(&plan, 1, 4);
        let mut sensed = frame();
        inj.perturb_sensing(9, 0, &mut sensed);
        assert!(sensed.measured_power.as_watts() > 0.0);
        inj.perturb_sensing(10, 0, &mut sensed);
        assert_eq!(sensed.measured_power, Power::ZERO);
        let mut sensed = frame();
        inj.perturb_sensing(20, 0, &mut sensed);
        assert!(sensed.measured_power.as_watts() > 0.0);
    }

    #[test]
    fn power_noise_is_deterministic_and_bounded() {
        let plan = FaultPlan::none().with(Fault::permanent(
            FaultKind::PowerNoise { fraction: 0.5 },
            0,
            0,
        ));
        let a = FaultInjector::single(&plan, 99, 4);
        let b = FaultInjector::single(&plan, 99, 4);
        for epoch in 0..50 {
            let mut fa = frame();
            let mut fb = frame();
            a.perturb_sensing(epoch, 0, &mut fa);
            b.perturb_sensing(epoch, 0, &mut fb);
            assert_eq!(fa.measured_power.as_watts(), fb.measured_power.as_watts());
            let w = fa.measured_power.as_watts();
            assert!((1.0..=3.0).contains(&w), "noisy reading {w} out of range");
        }
        // A different seed perturbs differently somewhere.
        let c = FaultInjector::single(&plan, 100, 4);
        let differs = (0..50).any(|epoch| {
            let mut fa = frame();
            let mut fc = frame();
            a.perturb_sensing(epoch, 0, &mut fa);
            c.perturb_sensing(epoch, 0, &mut fc);
            fa.measured_power != fc.measured_power
        });
        assert!(differs);
    }

    #[test]
    fn core_drop_is_permanent_and_redistributes_work() {
        let plan = FaultPlan::none().with(Fault::window(FaultKind::CoreDrop { core: 1 }, 0, 5, 6));
        let mut inj = FaultInjector::single(&plan, 3, 4);
        inj.begin_epoch(4);
        assert!(!inj.is_core_dead(0, 1));
        inj.begin_epoch(5);
        assert!(inj.is_core_dead(0, 1));
        // The window end is ignored: drops are permanent.
        inj.begin_epoch(100);
        assert!(inj.is_core_dead(0, 1));
        assert_eq!(inj.dead_core_count(0), 1);
        assert!(!inj.cluster_dead(0));

        let mut work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(9)); 4];
        let total_before: u64 = work.iter().map(|s| s.cpu_cycles.count()).sum();
        inj.redistribute_dead(0, &mut work);
        assert!(work[1].is_idle());
        let total_after: u64 = work.iter().map(|s| s.cpu_cycles.count()).sum();
        assert_eq!(total_before, total_after, "cycles are conserved");
        assert!(work[0].cpu_cycles > Cycles::from_mcycles(9));
    }

    #[test]
    fn fully_dead_cluster_drops_all_work() {
        let mut plan = FaultPlan::none();
        for core in 0..4 {
            plan.push(Fault::permanent(FaultKind::CoreDrop { core }, 0, 0));
        }
        let mut inj = FaultInjector::single(&plan, 3, 4);
        inj.begin_epoch(0);
        assert!(inj.cluster_dead(0));
        let mut work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(9)); 4];
        inj.redistribute_dead(0, &mut work);
        assert!(work.iter().all(WorkSlice::is_idle));
    }

    #[test]
    fn actuation_faults_intercept_in_plan_order() {
        let plan = FaultPlan::none()
            .with(Fault::window(FaultKind::ActuationIgnored, 0, 10, 20))
            .with(Fault::window(
                FaultKind::ActuationClamped { max_opp: 3 },
                0,
                15,
                30,
            ));
        let mut inj = FaultInjector::single(&plan, 0, 4);
        assert_eq!(inj.actuation(5, 0), Actuation::Honest);
        assert_eq!(inj.actuation(10, 0), Actuation::Ignored);
        assert_eq!(inj.actuation(17, 0), Actuation::Ignored); // first wins
        assert_eq!(inj.actuation(25, 0), Actuation::Clamped(3));
        assert_eq!(inj.actuation(30, 0), Actuation::Honest);

        assert_eq!(inj.exchange_latched(0, 7), None);
        assert_eq!(inj.exchange_latched(0, 9), Some(7));
        assert_eq!(inj.take_latched(0), Some(9));
        assert_eq!(inj.take_latched(0), None);
    }

    #[test]
    fn stuck_sensors_override_readings() {
        let plan = FaultPlan::none()
            .with(Fault::permanent(
                FaultKind::TempStuck { celsius: 42.0 },
                0,
                0,
            ))
            .with(Fault::permanent(FaultKind::PmuStuck { cycles: 1234 }, 0, 0));
        let inj = FaultInjector::single(&plan, 0, 4);
        let mut sensed = frame();
        inj.perturb_sensing(0, 0, &mut sensed);
        assert_eq!(sensed.temperature.as_celsius(), 42.0);
        assert!(sensed.per_core_cycles.iter().all(|c| c.count() == 1234));
    }

    #[test]
    #[should_panic(expected = "core drop targets core 9")]
    fn out_of_range_core_drop_is_rejected() {
        let plan = FaultPlan::none().with(Fault::permanent(FaultKind::CoreDrop { core: 9 }, 0, 0));
        let _ = FaultInjector::single(&plan, 0, 4);
    }
}
