//! The voltage–frequency controller.
//!
//! Changing operating point on real silicon is not free: the voltage
//! regulator slews at a finite rate and the PLL must relock. These
//! latencies are one of the three learning-overhead components the paper
//! identifies ("sensor sampling …, processing and V-F transitions",
//! Section III-D) and feed the `T_OVH` term of the slack equation
//! (Eq. 5).

use crate::{OppTable, SimError};
use qgov_units::{SimTime, Volt};

/// Whether one V-F setting drives the whole cluster or each core has its
/// own domain.
///
/// The XU3's A15 cluster has a single shared V-F domain
/// ([`VfDomain::PerCluster`], the faithful default); per-core domains
/// ([`VfDomain::PerCore`]) are provided for the per-core baseline
/// governors and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VfDomain {
    /// One V-F setting shared by every core (hardware-faithful).
    #[default]
    PerCluster,
    /// An independent V-F setting per core.
    PerCore,
}

/// Transition-cost parameters of the V-F controller.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DvfsConfig {
    /// Fixed cost per transition (PLL relock, driver bookkeeping).
    pub base_latency: SimTime,
    /// Additional latency per millivolt of voltage change (regulator
    /// slew rate).
    pub latency_per_mv: SimTime,
}

impl DvfsConfig {
    /// Typical embedded regulator: 30 µs fixed cost plus 100 ns/mV slew
    /// (≈ 46 µs worst case across the full A15 voltage range).
    #[must_use]
    pub fn typical() -> Self {
        DvfsConfig {
            base_latency: SimTime::from_us(30),
            latency_per_mv: SimTime::from_ns(100),
        }
    }

    /// Zero-cost transitions (for isolating algorithmic effects in
    /// ablations).
    #[must_use]
    pub fn free() -> Self {
        DvfsConfig {
            base_latency: SimTime::ZERO,
            latency_per_mv: SimTime::ZERO,
        }
    }
}

impl Default for DvfsConfig {
    fn default() -> Self {
        Self::typical()
    }
}

/// Tracks the current operating point(s) and accounts for transition
/// latency.
///
/// # Examples
///
/// ```
/// use qgov_sim::{DvfsConfig, OppTable, VfController, VfDomain};
///
/// let table = OppTable::odroid_xu3_a15();
/// let mut vf = VfController::new(table, VfDomain::PerCluster, 4, DvfsConfig::typical()).unwrap();
/// assert_eq!(vf.cluster_opp(), 0); // boots at the lowest point
/// let latency = vf.set_cluster_opp(18).unwrap();
/// assert!(!latency.is_zero());
/// assert_eq!(vf.cluster_opp(), 18);
/// assert_eq!(vf.transitions(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfController {
    table: OppTable,
    domain: VfDomain,
    /// Current OPP index per core (all identical under `PerCluster`).
    current: Vec<usize>,
    config: DvfsConfig,
    transitions: u64,
    total_latency: SimTime,
}

impl VfController {
    /// Creates a controller for `cores` cores, booting every domain at
    /// the table's lowest operating point (as Linux does before a
    /// governor takes over).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `cores` is zero.
    pub fn new(
        table: OppTable,
        domain: VfDomain,
        cores: usize,
        config: DvfsConfig,
    ) -> Result<Self, SimError> {
        if cores == 0 {
            return Err(SimError::InvalidConfig {
                reason: "a platform needs at least one core".into(),
            });
        }
        Ok(VfController {
            table,
            domain,
            current: vec![0; cores],
            config,
            transitions: 0,
            total_latency: SimTime::ZERO,
        })
    }

    /// The operating-point table.
    #[must_use]
    pub fn table(&self) -> &OppTable {
        &self.table
    }

    /// The V-F domain granularity.
    #[must_use]
    pub fn domain(&self) -> VfDomain {
        self.domain
    }

    /// The cluster's OPP index (under `PerCore`, core 0's index).
    #[must_use]
    pub fn cluster_opp(&self) -> usize {
        self.current[0]
    }

    /// The OPP index of `core`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoreOutOfRange`] for a bad core index.
    pub fn core_opp(&self, core: usize) -> Result<usize, SimError> {
        self.current
            .get(core)
            .copied()
            .ok_or(SimError::CoreOutOfRange {
                core,
                cores: self.current.len(),
            })
    }

    fn transition_latency(&self, from: usize, to: usize) -> SimTime {
        if from == to {
            return SimTime::ZERO;
        }
        let dv: Volt = {
            let a = self.table.get(from).expect("validated index").volt;
            let b = self.table.get(to).expect("validated index").volt;
            if a >= b {
                a - b
            } else {
                b - a
            }
        };
        let mv = dv.as_mv().round() as u64;
        self.config.base_latency + self.config.latency_per_mv * mv
    }

    /// Retargets the whole cluster to OPP `index`, returning the
    /// transition latency (zero if already there).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OppOutOfRange`] for a bad index.
    pub fn set_cluster_opp(&mut self, index: usize) -> Result<SimTime, SimError> {
        self.table.check_index(index)?;
        let latency = self.transition_latency(self.current[0], index);
        if !latency.is_zero() {
            self.transitions += 1;
            self.total_latency += latency;
        }
        self.current.fill(index);
        Ok(latency)
    }

    /// Retargets one core's domain to OPP `index` (only meaningful under
    /// [`VfDomain::PerCore`]; under `PerCluster` it retargets the whole
    /// cluster, matching how a per-core governor behaves on shared-rail
    /// hardware).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OppOutOfRange`] or
    /// [`SimError::CoreOutOfRange`] for bad indices.
    pub fn set_core_opp(&mut self, core: usize, index: usize) -> Result<SimTime, SimError> {
        self.table.check_index(index)?;
        if core >= self.current.len() {
            return Err(SimError::CoreOutOfRange {
                core,
                cores: self.current.len(),
            });
        }
        match self.domain {
            VfDomain::PerCluster => self.set_cluster_opp(index),
            VfDomain::PerCore => {
                let latency = self.transition_latency(self.current[core], index);
                if !latency.is_zero() {
                    self.transitions += 1;
                    self.total_latency += latency;
                }
                self.current[core] = index;
                Ok(latency)
            }
        }
    }

    /// Number of actual (non-no-op) transitions performed.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Cumulated transition latency — the V-F component of `T_OVH`.
    #[must_use]
    pub fn total_latency(&self) -> SimTime {
        self.total_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(domain: VfDomain) -> VfController {
        VfController::new(OppTable::odroid_xu3_a15(), domain, 4, DvfsConfig::typical()).unwrap()
    }

    #[test]
    fn boots_at_lowest_point() {
        let vf = controller(VfDomain::PerCluster);
        assert_eq!(vf.cluster_opp(), 0);
        for core in 0..4 {
            assert_eq!(vf.core_opp(core).unwrap(), 0);
        }
    }

    #[test]
    fn noop_transition_is_free() {
        let mut vf = controller(VfDomain::PerCluster);
        assert_eq!(vf.set_cluster_opp(0).unwrap(), SimTime::ZERO);
        assert_eq!(vf.transitions(), 0);
        assert_eq!(vf.total_latency(), SimTime::ZERO);
    }

    #[test]
    fn latency_scales_with_voltage_distance() {
        let mut vf = controller(VfDomain::PerCluster);
        let small = vf.set_cluster_opp(1).unwrap(); // 900 -> 912.5 mV
        let big = vf.set_cluster_opp(18).unwrap(); // 912.5 -> 1362.5 mV
        assert!(big > small, "bigger voltage swing must take longer");
        assert_eq!(vf.transitions(), 2);
        assert_eq!(vf.total_latency(), small + big);
    }

    #[test]
    fn per_cluster_core_set_retargets_everyone() {
        let mut vf = controller(VfDomain::PerCluster);
        vf.set_core_opp(2, 10).unwrap();
        for core in 0..4 {
            assert_eq!(vf.core_opp(core).unwrap(), 10);
        }
    }

    #[test]
    fn per_core_domains_are_independent() {
        let mut vf = controller(VfDomain::PerCore);
        vf.set_core_opp(2, 10).unwrap();
        assert_eq!(vf.core_opp(2).unwrap(), 10);
        assert_eq!(vf.core_opp(0).unwrap(), 0);
        assert_eq!(vf.core_opp(1).unwrap(), 0);
    }

    #[test]
    fn free_config_has_zero_latency() {
        let mut vf = VfController::new(
            OppTable::odroid_xu3_a15(),
            VfDomain::PerCluster,
            4,
            DvfsConfig::free(),
        )
        .unwrap();
        assert_eq!(vf.set_cluster_opp(18).unwrap(), SimTime::ZERO);
        // Still counted as a transition even though free.
        assert_eq!(vf.transitions(), 0, "zero-latency moves are not counted");
        assert_eq!(vf.cluster_opp(), 18);
    }

    #[test]
    fn bad_indices_are_rejected() {
        let mut vf = controller(VfDomain::PerCore);
        assert!(matches!(
            vf.set_cluster_opp(19),
            Err(SimError::OppOutOfRange { .. })
        ));
        assert!(matches!(
            vf.set_core_opp(4, 0),
            Err(SimError::CoreOutOfRange { .. })
        ));
        assert!(matches!(
            vf.core_opp(9),
            Err(SimError::CoreOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_cores_rejected() {
        assert!(VfController::new(
            OppTable::odroid_xu3_a15(),
            VfDomain::PerCluster,
            0,
            DvfsConfig::typical()
        )
        .is_err());
    }
}
