//! Property-based tests on the platform simulator: physical invariants
//! that must hold for arbitrary workloads and operating points.

use proptest::prelude::*;
use qgov_sim::{DvfsConfig, Platform, PlatformConfig, SensorConfig, VfDomain, WorkSlice};
use qgov_units::{Cycles, SimTime};

fn platform() -> Platform {
    Platform::new(PlatformConfig {
        sensor: SensorConfig::ideal(),
        dvfs: DvfsConfig::free(),
        ..PlatformConfig::odroid_xu3_a15()
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Higher operating points never make a frame slower.
    #[test]
    fn frame_time_monotone_in_opp(
        mcycles in 1u64..100,
        opp_lo in 0usize..19,
        opp_hi in 0usize..19,
    ) {
        prop_assume!(opp_lo < opp_hi);
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(mcycles)); 4];
        let period = SimTime::from_ms(1_000);

        let mut p_lo = platform();
        p_lo.set_cluster_opp(opp_lo);
        let slow = p_lo.run_frame(&work, period).unwrap();

        let mut p_hi = platform();
        p_hi.set_cluster_opp(opp_hi);
        let fast = p_hi.run_frame(&work, period).unwrap();

        prop_assert!(fast.frame_time <= slow.frame_time,
            "opp {opp_hi} slower than opp {opp_lo}");
    }

    /// Energy over a fixed wall window rises with operating point for
    /// fully-busy frames (racing costs more when there is no idle to
    /// harvest).
    #[test]
    fn busy_energy_monotone_in_opp(opp in 0usize..18) {
        let period = SimTime::from_ms(100);
        // Enough work to keep even 2 GHz busy the whole period.
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(250)); 4];

        let run = |idx: usize| {
            let mut p = platform();
            p.set_cluster_opp(idx);
            let r = p.run_frame(&work, period).unwrap();
            // Normalise to energy per unit time (frames last different spans).
            r.energy.as_joules() / r.wall_time.as_secs_f64()
        };
        prop_assert!(run(opp + 1) > run(opp), "avg power must rise with OPP");
    }

    /// Energy is always positive and finite; wall time always covers the
    /// period.
    #[test]
    fn frame_results_are_physical(
        mcycles in proptest::collection::vec(0u64..200, 4),
        mem_us in proptest::collection::vec(0u64..10_000, 4),
        opp in 0usize..19,
        period_ms in 1u64..200,
    ) {
        let mut p = platform();
        p.set_cluster_opp(opp);
        let work: Vec<WorkSlice> = mcycles
            .iter()
            .zip(&mem_us)
            .map(|(&mc, &us)| WorkSlice::new(Cycles::from_mcycles(mc), SimTime::from_us(us)))
            .collect();
        let r = p.run_frame(&work, SimTime::from_ms(period_ms)).unwrap();
        prop_assert!(r.energy.as_joules() > 0.0);
        prop_assert!(r.energy.as_joules().is_finite());
        prop_assert!(r.wall_time >= SimTime::from_ms(period_ms));
        prop_assert!(r.wall_time >= r.frame_time);
        prop_assert!(r.frame_time >= *r.per_core_busy.iter().max().unwrap());
        for c in 0..4 {
            let u = r.utilization(c);
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    /// The simulator is deterministic: identical command sequences give
    /// identical results.
    #[test]
    fn identical_runs_are_bit_identical(
        opps in proptest::collection::vec(0usize..19, 1..20),
        mcycles in 1u64..100,
    ) {
        let run = || {
            let mut p = Platform::new(PlatformConfig::odroid_xu3_a15()).unwrap();
            let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(mcycles)); 4];
            let mut log = Vec::new();
            for &opp in &opps {
                p.set_cluster_opp(opp);
                let r = p.run_frame(&work, SimTime::from_ms(40)).unwrap();
                log.push((r.frame_time, r.energy.as_joules().to_bits(),
                          r.measured_power.as_watts().to_bits()));
            }
            log
        };
        prop_assert_eq!(run(), run());
    }

    /// Per-core busy time equals cycles/f + mem for every core.
    #[test]
    fn busy_time_matches_two_component_model(
        mcycles in 1u64..500,
        mem_us in 0u64..20_000,
        opp in 0usize..19,
    ) {
        let mut p = platform();
        p.set_cluster_opp(opp);
        let slice = WorkSlice::new(Cycles::from_mcycles(mcycles), SimTime::from_us(mem_us));
        let work = vec![slice; 4];
        let r = p.run_frame(&work, SimTime::from_ms(1)).unwrap();
        let freq = p.opp_table().get(opp).unwrap().freq;
        let expect = Cycles::from_mcycles(mcycles).time_at(freq) + SimTime::from_us(mem_us);
        for c in 0..4 {
            prop_assert_eq!(r.per_core_busy[c], expect);
        }
    }

    /// Under a per-core V-F domain, a faster sibling never slows the
    /// barrier.
    #[test]
    fn per_core_speedup_never_hurts(base_opp in 0usize..18) {
        let work = vec![WorkSlice::cpu_only(Cycles::from_mcycles(50)); 4];
        let period = SimTime::from_ms(1_000);
        let make = |boost: bool| {
            let mut p = Platform::new(PlatformConfig {
                vf_domain: VfDomain::PerCore,
                sensor: SensorConfig::ideal(),
                dvfs: DvfsConfig::free(),
                ..PlatformConfig::odroid_xu3_a15()
            })
            .unwrap();
            for c in 0..4 {
                p.try_set_core_opp(c, base_opp).unwrap();
            }
            if boost {
                p.try_set_core_opp(2, 18).unwrap();
            }
            p.run_frame(&work, period).unwrap().frame_time
        };
        prop_assert!(make(true) <= make(false));
    }
}
