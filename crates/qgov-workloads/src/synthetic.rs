//! Synthetic workload patterns for targeted tests and ablations.

use crate::process::gaussian;
use crate::{Application, FrameDemand, WorkloadError};
use qgov_units::{Cycles, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic shape of a synthetic workload's per-frame demand.
#[derive(Debug, Clone, PartialEq)]
enum Pattern {
    /// The same demand every frame.
    Constant,
    /// Linear interpolation from 1× at frame 0 to `to` at the last frame.
    Ramp {
        /// Final multiplier.
        to: f64,
    },
    /// Alternates between 1× and `hi` every `half_period` frames.
    Square {
        /// High-phase multiplier.
        hi: f64,
        /// Frames per half period.
        half_period: u64,
    },
    /// `1 + amp·sin(2π·frame/period)`.
    Sine {
        /// Amplitude (must be < 1 so demand stays positive).
        amp: f64,
        /// Frames per full period.
        period: u64,
    },
    /// Constant with a single step to `to` at `at_frame` (the canonical
    /// step-response probe for predictors).
    Step {
        /// Multiplier after the step.
        to: f64,
        /// Frame index of the step.
        at_frame: u64,
    },
}

/// A synthetic frame-based workload with a deterministic base pattern
/// and optional multiplicative Gaussian noise.
///
/// # Examples
///
/// ```
/// use qgov_workloads::{Application, SyntheticWorkload};
/// use qgov_units::{Cycles, SimTime};
///
/// let mut app = SyntheticWorkload::step(
///     "step", Cycles::from_mcycles(10), 2.0, 50,
///     SimTime::from_ms(40), 100, 4, 7,
/// );
/// let before = app.next_frame().total_cycles();
/// for _ in 1..60 { app.next_frame(); }
/// let after = app.next_frame().total_cycles();
/// assert!(after.count() > 18 * before.count() / 10);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    name: String,
    base: Cycles,
    pattern: Pattern,
    noise_cv: f64,
    mem_time: SimTime,
    period: SimTime,
    frames: u64,
    threads: usize,
    seed: u64,
    rng: StdRng,
    frame_index: u64,
}

impl SyntheticWorkload {
    #[allow(clippy::too_many_arguments)]
    fn build(
        name: impl Into<String>,
        base: Cycles,
        pattern: Pattern,
        period: SimTime,
        frames: u64,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(!base.is_zero(), "base cycles must be non-zero");
        assert!(!period.is_zero(), "period must be non-zero");
        assert!(frames > 0, "frames must be non-zero");
        assert!(threads > 0, "threads must be non-zero");
        SyntheticWorkload {
            name: name.into(),
            base,
            pattern,
            noise_cv: 0.0,
            mem_time: SimTime::ZERO,
            period,
            frames,
            threads,
            seed,
            rng: StdRng::seed_from_u64(seed),
            frame_index: 0,
        }
    }

    /// A constant workload of `base` total cycles per frame.
    ///
    /// # Panics
    ///
    /// Panics if any count or the period is zero.
    #[must_use]
    pub fn constant(
        name: impl Into<String>,
        base: Cycles,
        period: SimTime,
        frames: u64,
        threads: usize,
        seed: u64,
    ) -> Self {
        Self::build(name, base, Pattern::Constant, period, frames, threads, seed)
    }

    /// A workload ramping linearly from `base` to `base × to`.
    ///
    /// # Panics
    ///
    /// Panics if any count or the period is zero, or `to` is not
    /// positive/finite.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn ramp(
        name: impl Into<String>,
        base: Cycles,
        to: f64,
        period: SimTime,
        frames: u64,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(to.is_finite() && to > 0.0, "ramp target must be positive");
        Self::build(
            name,
            base,
            Pattern::Ramp { to },
            period,
            frames,
            threads,
            seed,
        )
    }

    /// A square wave alternating between `base` and `base × hi` every
    /// `half_period` frames.
    ///
    /// # Panics
    ///
    /// Panics if any count or the period is zero, `hi` is not
    /// positive/finite, or `half_period` is zero.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn square(
        name: impl Into<String>,
        base: Cycles,
        hi: f64,
        half_period: u64,
        period: SimTime,
        frames: u64,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(
            hi.is_finite() && hi > 0.0,
            "square high level must be positive"
        );
        assert!(half_period > 0, "half period must be non-zero");
        Self::build(
            name,
            base,
            Pattern::Square { hi, half_period },
            period,
            frames,
            threads,
            seed,
        )
    }

    /// A sinusoidal workload `base × (1 + amp·sin)`.
    ///
    /// # Panics
    ///
    /// Panics if any count or the period is zero, `amp` is not in
    /// `(0, 1)`, or `sine_period` is zero.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn sine(
        name: impl Into<String>,
        base: Cycles,
        amp: f64,
        sine_period: u64,
        period: SimTime,
        frames: u64,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(
            amp.is_finite() && amp > 0.0 && amp < 1.0,
            "amplitude must lie in (0, 1)"
        );
        assert!(sine_period > 0, "sine period must be non-zero");
        Self::build(
            name,
            base,
            Pattern::Sine {
                amp,
                period: sine_period,
            },
            period,
            frames,
            threads,
            seed,
        )
    }

    /// A single step from `base` to `base × to` at `at_frame`.
    ///
    /// # Panics
    ///
    /// Panics if any count or the period is zero, or `to` is not
    /// positive/finite.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn step(
        name: impl Into<String>,
        base: Cycles,
        to: f64,
        at_frame: u64,
        period: SimTime,
        frames: u64,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(to.is_finite() && to > 0.0, "step target must be positive");
        Self::build(
            name,
            base,
            Pattern::Step { to, at_frame },
            period,
            frames,
            threads,
            seed,
        )
    }

    /// Adds multiplicative Gaussian noise with coefficient of variation
    /// `cv` to every frame.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ cv < 1`.
    #[must_use]
    pub fn with_noise(mut self, cv: f64) -> Self {
        assert!(
            cv.is_finite() && (0.0..1.0).contains(&cv),
            "cv must lie in [0, 1)"
        );
        self.noise_cv = cv;
        self
    }

    /// Adds a frequency-invariant memory component to every thread.
    #[must_use]
    pub fn with_mem_time(mut self, mem_time: SimTime) -> Self {
        self.mem_time = mem_time;
        self
    }

    /// Validates an external configuration (mirrors the panics of the
    /// constructors as a fallible check).
    ///
    /// # Errors
    ///
    /// Currently always `Ok`; kept for forward compatibility.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn multiplier_at(&self, frame: u64) -> f64 {
        match self.pattern {
            Pattern::Constant => 1.0,
            Pattern::Ramp { to } => {
                if self.frames <= 1 {
                    1.0
                } else {
                    1.0 + (to - 1.0) * frame as f64 / (self.frames - 1) as f64
                }
            }
            Pattern::Square { hi, half_period } => {
                if (frame / half_period) % 2 == 1 {
                    hi
                } else {
                    1.0
                }
            }
            Pattern::Sine { amp, period } => {
                1.0 + amp * (std::f64::consts::TAU * frame as f64 / period as f64).sin()
            }
            Pattern::Step { to, at_frame } => {
                if frame >= at_frame {
                    to
                } else {
                    1.0
                }
            }
        }
    }
}

impl Application for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> SimTime {
        self.period
    }

    fn frames(&self) -> u64 {
        self.frames
    }

    fn next_frame(&mut self) -> FrameDemand {
        let mut out = FrameDemand::default();
        self.next_frame_into(&mut out);
        out
    }

    fn next_frame_into(&mut self, out: &mut FrameDemand) {
        let mut m = self.multiplier_at(self.frame_index);
        if self.noise_cv > 0.0 {
            m *= (1.0 + self.noise_cv * gaussian(&mut self.rng)).max(0.1);
        }
        self.frame_index += 1;
        out.fill_split_evenly(self.base.scale(m), self.threads, self.mem_time);
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.frame_index = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERIOD: SimTime = SimTime::from_ms(40);

    #[test]
    fn constant_is_constant() {
        let mut app = SyntheticWorkload::constant("c", Cycles::from_mcycles(10), PERIOD, 50, 4, 0);
        let first = app.next_frame();
        for _ in 1..50 {
            assert_eq!(app.next_frame(), first);
        }
    }

    #[test]
    fn ramp_reaches_target() {
        let mut app =
            SyntheticWorkload::ramp("r", Cycles::from_mcycles(10), 3.0, PERIOD, 100, 1, 0);
        let first = app.next_frame().total_cycles().count();
        for _ in 1..99 {
            app.next_frame();
        }
        let last = app.next_frame().total_cycles().count();
        assert_eq!(first, 10_000_000);
        assert_eq!(last, 30_000_000);
    }

    #[test]
    fn square_alternates() {
        let mut app =
            SyntheticWorkload::square("s", Cycles::from_mcycles(10), 2.0, 3, PERIOD, 12, 1, 0);
        let cycles: Vec<u64> = (0..12)
            .map(|_| app.next_frame().total_cycles().count())
            .collect();
        assert_eq!(&cycles[0..3], &[10_000_000; 3]);
        assert_eq!(&cycles[3..6], &[20_000_000; 3]);
        assert_eq!(&cycles[6..9], &[10_000_000; 3]);
    }

    #[test]
    fn sine_oscillates_around_base() {
        let mut app =
            SyntheticWorkload::sine("w", Cycles::from_mcycles(10), 0.5, 20, PERIOD, 40, 1, 0);
        let cycles: Vec<f64> = (0..40)
            .map(|_| app.next_frame().total_cycles().count() as f64)
            .collect();
        let mean = cycles.iter().sum::<f64>() / cycles.len() as f64;
        assert!((mean / 1e7 - 1.0).abs() < 0.02, "mean {mean}");
        let max = cycles.iter().copied().fold(0.0f64, f64::max);
        let min = cycles.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > 1.45e7 && min < 0.55e7);
    }

    #[test]
    fn noise_is_seeded_and_reproducible() {
        let make = |seed| {
            SyntheticWorkload::constant("n", Cycles::from_mcycles(10), PERIOD, 30, 2, seed)
                .with_noise(0.2)
        };
        let run = |mut app: SyntheticWorkload| -> Vec<u64> {
            (0..30)
                .map(|_| app.next_frame().total_cycles().count())
                .collect()
        };
        assert_eq!(run(make(5)), run(make(5)));
        assert_ne!(run(make(5)), run(make(6)));
    }

    #[test]
    fn mem_time_is_applied_to_all_threads() {
        let mut app = SyntheticWorkload::constant("m", Cycles::from_mcycles(4), PERIOD, 5, 4, 0)
            .with_mem_time(SimTime::from_ms(3));
        let f = app.next_frame();
        for t in &f.threads {
            assert_eq!(t.mem_time, SimTime::from_ms(3));
        }
    }

    #[test]
    fn reset_restarts_pattern_and_noise() {
        let mut app = SyntheticWorkload::ramp("r", Cycles::from_mcycles(10), 2.0, PERIOD, 50, 1, 1)
            .with_noise(0.1);
        let a: Vec<u64> = (0..20)
            .map(|_| app.next_frame().total_cycles().count())
            .collect();
        app.reset();
        let b: Vec<u64> = (0..20)
            .map(|_| app.next_frame().total_cycles().count())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn sine_amplitude_validated() {
        let _ = SyntheticWorkload::sine("w", Cycles::from_mcycles(1), 1.5, 10, PERIOD, 10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "cv")]
    fn noise_cv_validated() {
        let _ = SyntheticWorkload::constant("n", Cycles::from_mcycles(1), PERIOD, 10, 1, 0)
            .with_noise(1.0);
    }
}
