//! The application abstraction.

use crate::FrameDemand;
use qgov_units::SimTime;

/// A periodic, frame-structured application — the form every workload
/// takes in the paper's evaluation ("each application is transformed to
/// a periodic structure, where it is executed for several iterations
/// each of which is accompanied by a deadline", Section III).
///
/// Implementations are deterministic: a model constructed with the same
/// seed yields the same frame sequence, and [`reset`](Application::reset)
/// rewinds to frame zero of that same sequence.
pub trait Application {
    /// Human-readable application name ("mpeg4", "h264", ...).
    fn name(&self) -> &str;

    /// The frame period, i.e. the per-frame deadline `T_ref`.
    fn period(&self) -> SimTime;

    /// Total number of frames in the run.
    fn frames(&self) -> u64;

    /// Produces the next frame's work demand.
    fn next_frame(&mut self) -> FrameDemand;

    /// Produces the next frame's work demand into a caller-provided
    /// slot, advancing the cursor exactly like
    /// [`next_frame`](Application::next_frame) and leaving `out` equal
    /// to what `next_frame` would have returned.
    ///
    /// The default implementation just assigns `next_frame()`'s value
    /// (allocating). Implementations on the experiment hot path
    /// ([`SyntheticWorkload`](crate::SyntheticWorkload),
    /// [`WorkloadTrace`](crate::WorkloadTrace),
    /// [`ShardedTrace`](crate::ShardedTrace)) override it to refill
    /// `out.threads` in place, so a harness reusing one slot drives the
    /// steady-state frame loop without per-frame heap allocation.
    fn next_frame_into(&mut self, out: &mut FrameDemand) {
        *out = self.next_frame();
    }

    /// Rewinds to frame zero, reproducing the identical sequence.
    fn reset(&mut self);

    /// The frame rate in frames per second (derived from
    /// [`period`](Application::period)).
    fn fps(&self) -> f64 {
        1.0 / self.period().as_secs_f64()
    }
}

/// Blanket impl so `Box<dyn Application>` is itself an application.
impl<A: Application + ?Sized> Application for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn period(&self) -> SimTime {
        (**self).period()
    }
    fn frames(&self) -> u64 {
        (**self).frames()
    }
    fn next_frame(&mut self) -> FrameDemand {
        (**self).next_frame()
    }
    fn next_frame_into(&mut self, out: &mut FrameDemand) {
        (**self).next_frame_into(out);
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticWorkload;
    use qgov_units::Cycles;

    #[test]
    fn fps_inverts_period() {
        let app = SyntheticWorkload::constant(
            "c",
            Cycles::from_mcycles(1),
            SimTime::from_ms(40),
            10,
            1,
            0,
        );
        assert!((app.fps() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn boxed_application_delegates() {
        let mut app: Box<dyn Application> = Box::new(SyntheticWorkload::constant(
            "c",
            Cycles::from_mcycles(2),
            SimTime::from_ms(20),
            5,
            2,
            0,
        ));
        assert_eq!(app.name(), "c");
        assert_eq!(app.frames(), 5);
        let f = app.next_frame();
        assert_eq!(f.thread_count(), 2);
        app.reset();
        assert_eq!(app.next_frame(), f);
    }
}
