//! Sharded streaming trace record and replay.
//!
//! [`WorkloadTrace`] materialises every frame of a recording in one
//! `Vec`, which caps experiments at horizons that fit in memory. The
//! paper's Q-learning governor, however, is pitched for *run-time*
//! operation: long-horizon evaluation — hundreds of thousands of
//! decision epochs — is exactly where a learned policy separates from
//! the static heuristics it is compared against. This module provides
//! the bounded-memory counterpart:
//!
//! * [`ShardWriter`] — records a frame stream to a directory of CSV
//!   *shard files*, flushing every `frames_per_shard` frames, so the
//!   writer never holds more than one shard of frames;
//! * [`TraceShard`] — one loaded shard: a contiguous slice of the
//!   recorded sequence with its global frame offset;
//! * [`ShardedTrace`] — the streamed reader: implements
//!   [`Application`] by lazily pulling the shard containing its cursor
//!   from disk, so replay holds at most `frames_per_shard` frames
//!   resident however long the trace is.
//!
//! # File format
//!
//! Every shard file is itself a complete [`WorkloadTrace`] CSV
//! document (the shard's frames, the trace's name and period), written
//! as `shard-NNNNNN.csv`. A `manifest.csv` header line ties them
//! together and carries the pre-characterisation workload bounds
//! measured during recording, so the learning governors can be
//! configured without a second pass over the data:
//!
//! ```text
//! # name=h264 period_ns=66666666 frames=100000 frames_per_shard=4096 shards=25 min_cycles=... max_cycles=...
//! ```
//!
//! # Replay contract
//!
//! Streamed replay is **bit-identical** to in-memory replay: for the
//! same recorded application, [`ShardedTrace`] and [`WorkloadTrace`]
//! yield the same [`FrameDemand`] sequence frame-for-frame, including
//! the wrap-around past the end (`tests/shard_streaming.rs` pins this
//! with a property test; the workspace-level
//! `tests/long_horizon_streaming.rs` pins bit-identical *experiment
//! reports* through the full harness).
//!
//! # Examples
//!
//! Record a workload into shards, then stream it back:
//!
//! ```
//! use qgov_units::{Cycles, SimTime};
//! use qgov_workloads::{Application, ShardedTrace, SyntheticWorkload, WorkloadTrace};
//!
//! let dir = std::env::temp_dir().join(format!("qgov-shard-doc-{}", std::process::id()));
//! let mut app = SyntheticWorkload::constant(
//!     "c", Cycles::from_mcycles(8), SimTime::from_ms(40), 100, 4, 7,
//! )
//! .with_noise(0.2);
//!
//! // 100 frames in shards of 32: three full shards + a 4-frame tail.
//! let mut streamed = ShardedTrace::record(&mut app, &dir, 100, 32).unwrap();
//! assert_eq!(streamed.shard_count(), 4);
//!
//! // Streamed replay equals in-memory replay frame-for-frame...
//! let mut whole = WorkloadTrace::record(&mut app);
//! for _ in 0..100 {
//!     assert_eq!(streamed.next_frame(), whole.next_frame());
//! }
//! // ...while holding at most one shard of frames resident.
//! assert!(streamed.resident_frames() <= 32);
//!
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::{Application, FrameDemand, WorkloadError, WorkloadTrace};
use qgov_units::SimTime;
use std::fs;
use std::path::{Path, PathBuf};

/// File name of the manifest inside a sharded-trace directory.
pub const MANIFEST_FILE: &str = "manifest.csv";

/// A uniquely named scratch directory for throwaway sharded-trace
/// recordings, removed (best-effort) on drop.
///
/// Concurrent recorders — parallel sweep cells, concurrent test
/// threads — must never share shard files, so the path combines the
/// caller's prefix with the process id and a process-wide counter.
/// The directory itself is *not* created here;
/// [`ShardWriter::create`] / [`ShardedTrace::record`] do that.
/// Experiment results never depend on the directory name.
///
/// # Examples
///
/// ```
/// use qgov_units::{Cycles, SimTime};
/// use qgov_workloads::{shard::ScratchDir, ShardedTrace, SyntheticWorkload};
///
/// let scratch = ScratchDir::unique("qgov-scratch-doc");
/// let mut app = SyntheticWorkload::constant(
///     "c", Cycles::from_mcycles(1), SimTime::from_ms(40), 10, 2, 0,
/// );
/// let trace = ShardedTrace::record(&mut app, scratch.path(), 10, 4).unwrap();
/// assert_eq!(trace.shard_count(), 3);
/// drop(scratch); // recording removed from disk
/// ```
#[derive(Debug)]
pub struct ScratchDir(PathBuf);

impl ScratchDir {
    /// A process-unique path under the system temp directory:
    /// `<tmp>/<prefix>-<pid>-<counter>`.
    #[must_use]
    pub fn unique(prefix: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        ScratchDir(std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id())))
    }

    /// The scratch path (may not exist yet).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// File name of shard `index` inside a sharded-trace directory.
#[must_use]
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:06}.csv")
}

/// One loaded shard: a contiguous run of recorded frames together with
/// its position in the global sequence.
///
/// Shards are produced by [`ShardedTrace::load_shard`]; the streaming
/// reader holds at most one at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceShard {
    index: usize,
    start_frame: u64,
    frames: Vec<FrameDemand>,
}

impl TraceShard {
    /// The shard's index within the trace.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Global index of the shard's first frame.
    #[must_use]
    pub fn start_frame(&self) -> u64 {
        self.start_frame
    }

    /// Number of frames in the shard (every shard holds
    /// `frames_per_shard` frames except possibly the last).
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `false`: shards are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard's frames, in global order.
    #[must_use]
    pub fn frame_demands(&self) -> &[FrameDemand] {
        &self.frames
    }

    /// `true` when the shard covers global frame index `frame`.
    #[must_use]
    pub fn contains(&self, frame: u64) -> bool {
        frame >= self.start_frame && frame < self.start_frame + self.frames.len() as u64
    }

    /// The frame at global index `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the shard does not [`contain`](TraceShard::contains)
    /// `frame`.
    #[must_use]
    pub fn frame(&self, frame: u64) -> &FrameDemand {
        assert!(
            self.contains(frame),
            "shard {} covers frames {}..{}, not {frame}",
            self.index,
            self.start_frame,
            self.start_frame + self.frames.len() as u64
        );
        &self.frames[(frame - self.start_frame) as usize]
    }
}

/// Incremental writer for a sharded trace: buffers frames and flushes a
/// shard file every `frames_per_shard` frames, so recording a
/// million-frame trace never holds more than one shard in memory.
///
/// [`ShardWriter::finish`] flushes the (possibly shorter) final shard,
/// writes the manifest and reopens the directory as a [`ShardedTrace`].
/// The writer also tracks the min/max total cycles per frame while
/// streaming — the pre-characterisation bounds the learning governors
/// need — and persists them in the manifest, so no second pass over
/// the recording is required.
#[derive(Debug)]
pub struct ShardWriter {
    dir: PathBuf,
    name: String,
    period: SimTime,
    frames_per_shard: usize,
    buffer: Vec<FrameDemand>,
    frames_written: u64,
    shards_written: usize,
    min_cycles: u64,
    max_cycles: u64,
}

impl ShardWriter {
    /// Creates the shard directory (and parents) and an empty writer.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Io`] if the directory cannot be
    /// created.
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_shard` is zero, `period` is zero, or
    /// `name` is empty or contains whitespace — all programming
    /// errors, caught *before* any shard I/O happens. (The name is
    /// embedded in the space-delimited CSV metadata headers, where
    /// whitespace would corrupt the document the writer is about to
    /// produce.)
    pub fn create(
        dir: impl Into<PathBuf>,
        name: impl Into<String>,
        period: SimTime,
        frames_per_shard: usize,
    ) -> Result<Self, WorkloadError> {
        assert!(frames_per_shard > 0, "a shard needs at least one frame");
        assert!(!period.is_zero(), "period must be non-zero");
        let name = name.into();
        assert!(
            !name.is_empty() && !name.chars().any(char::is_whitespace),
            "workload name {name:?} must be non-empty without whitespace: \
             it is embedded in space-delimited CSV headers"
        );
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| WorkloadError::io(&dir, &e))?;
        Ok(ShardWriter {
            dir,
            name,
            period,
            frames_per_shard,
            buffer: Vec::with_capacity(frames_per_shard),
            frames_written: 0,
            shards_written: 0,
            min_cycles: u64::MAX,
            max_cycles: 0,
        })
    }

    /// Appends one frame, flushing a shard file when the buffer fills.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Io`] if a full shard fails to write.
    pub fn push(&mut self, frame: FrameDemand) -> Result<(), WorkloadError> {
        let cycles = frame.total_cycles().count();
        self.min_cycles = self.min_cycles.min(cycles);
        self.max_cycles = self.max_cycles.max(cycles);
        self.buffer.push(frame);
        self.frames_written += 1;
        if self.buffer.len() == self.frames_per_shard {
            self.flush_shard()?;
        }
        Ok(())
    }

    /// Frames pushed so far (buffered or flushed).
    #[must_use]
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Shard files flushed so far.
    #[must_use]
    pub fn shards_written(&self) -> usize {
        self.shards_written
    }

    fn flush_shard(&mut self) -> Result<(), WorkloadError> {
        let frames = std::mem::replace(&mut self.buffer, Vec::with_capacity(self.frames_per_shard));
        // A shard file is a complete WorkloadTrace CSV document: the
        // in-memory codec is the single source of truth for the format.
        let csv = WorkloadTrace::from_frames(&self.name, self.period, frames).to_csv();
        let path = self.dir.join(shard_file_name(self.shards_written));
        fs::write(&path, csv).map_err(|e| WorkloadError::io(&path, &e))?;
        self.shards_written += 1;
        Ok(())
    }

    /// Flushes the final (possibly short) shard, writes the manifest
    /// and reopens the directory as a streamed [`ShardedTrace`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Io`] on any write failure.
    ///
    /// # Panics
    ///
    /// Panics if no frames were pushed — a trace needs at least one
    /// frame, matching [`WorkloadTrace::from_frames`].
    pub fn finish(mut self) -> Result<ShardedTrace, WorkloadError> {
        assert!(
            self.frames_written > 0,
            "a sharded trace needs at least one frame"
        );
        if !self.buffer.is_empty() {
            self.flush_shard()?;
        }
        let manifest = format!(
            "# name={} period_ns={} frames={} frames_per_shard={} shards={} \
             min_cycles={} max_cycles={}\n",
            self.name,
            self.period.as_ns(),
            self.frames_written,
            self.frames_per_shard,
            self.shards_written,
            self.min_cycles,
            self.max_cycles,
        );
        let path = self.dir.join(MANIFEST_FILE);
        fs::write(&path, manifest).map_err(|e| WorkloadError::io(&path, &e))?;
        ShardedTrace::open(&self.dir)
    }
}

/// A recorded trace streamed from CSV shards on disk: replayable as an
/// [`Application`] while holding at most one shard of frames in
/// memory, however many frames the trace spans.
///
/// Obtained from [`ShardedTrace::record`] (record an application in
/// bounded memory), [`ShardWriter::finish`] (incremental recording) or
/// [`ShardedTrace::open`] (an existing directory).
///
/// # Replay
///
/// [`next_frame`](Application::next_frame) pulls the shard containing
/// the cursor lazily and wraps around at the end, exactly like
/// [`WorkloadTrace`]; `reset()` rewinds the cursor without touching
/// disk (the resident shard is re-used if it covers frame zero).
/// Cloning is cheap — metadata plus the resident shard — and each
/// clone streams independently, which is what lets parallel experiment
/// cells share one recording on disk without sharing any mutable
/// state.
#[derive(Debug, Clone)]
pub struct ShardedTrace {
    dir: PathBuf,
    name: String,
    period: SimTime,
    total_frames: u64,
    frames_per_shard: usize,
    shard_count: usize,
    min_cycles: u64,
    max_cycles: u64,
    cursor: u64,
    current: Option<TraceShard>,
    shard_loads: u64,
}

/// Equality compares the recorded *identity* (directory, name, period,
/// frame geometry); the replay cursor, the resident shard and the
/// load counter are iteration state, not content — mirroring
/// [`WorkloadTrace`]'s cursor-blind equality.
impl PartialEq for ShardedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.dir == other.dir
            && self.name == other.name
            && self.period == other.period
            && self.total_frames == other.total_frames
            && self.frames_per_shard == other.frames_per_shard
            && self.shard_count == other.shard_count
    }
}

impl Eq for ShardedTrace {}

impl ShardedTrace {
    /// Records exactly `frames` frames of `app` into `dir` (resetting
    /// `app` first, and leaving it reset afterwards, like
    /// [`WorkloadTrace::record`]) and returns the streamed reader.
    /// Memory stays bounded by one shard throughout, so horizons far
    /// beyond what fits in memory record safely.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Io`] on any filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if `frames` or `frames_per_shard` is zero.
    pub fn record(
        app: &mut dyn Application,
        dir: impl Into<PathBuf>,
        frames: u64,
        frames_per_shard: usize,
    ) -> Result<Self, WorkloadError> {
        assert!(frames > 0, "a sharded trace needs at least one frame");
        app.reset();
        let mut writer = ShardWriter::create(dir, app.name(), app.period(), frames_per_shard)?;
        for _ in 0..frames {
            writer.push(app.next_frame())?;
        }
        app.reset();
        writer.finish()
    }

    /// Opens an existing sharded-trace directory by parsing its
    /// manifest and checking every declared shard file exists (frame
    /// contents are validated lazily, shard by shard, as replay
    /// reaches them — opening a million-frame trace reads only the
    /// manifest).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Io`] if the manifest is unreadable or
    /// a shard file is missing, and [`WorkloadError::ParseTraceError`]
    /// if the manifest is malformed or internally inconsistent.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WorkloadError> {
        let dir = dir.into();
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).map_err(|e| WorkloadError::io(&path, &e))?;
        let err = |reason: &str| WorkloadError::ParseTraceError {
            line: 1,
            reason: reason.to_owned(),
        };

        let mut name = None;
        let mut period = None;
        let mut total_frames = None;
        let mut frames_per_shard = None;
        let mut shard_count = None;
        let mut min_cycles = None;
        let mut max_cycles = None;
        for (key, value) in crate::trace::header_fields(text.lines().next(), &err)? {
            let parse_u64 = || -> Result<u64, WorkloadError> {
                value
                    .parse()
                    .map_err(|_| err(&format!("{key} is not an integer")))
            };
            match key {
                "name" => name = Some(value.to_owned()),
                "period_ns" => period = Some(SimTime::from_ns(parse_u64()?)),
                "frames" => total_frames = Some(parse_u64()?),
                "frames_per_shard" => frames_per_shard = Some(parse_u64()? as usize),
                "shards" => shard_count = Some(parse_u64()? as usize),
                "min_cycles" => min_cycles = Some(parse_u64()?),
                "max_cycles" => max_cycles = Some(parse_u64()?),
                _ => return Err(err("unknown manifest key")),
            }
        }
        let name = name.ok_or_else(|| err("missing name"))?;
        let period = period.ok_or_else(|| err("missing period_ns"))?;
        let total_frames = total_frames.ok_or_else(|| err("missing frames"))?;
        let frames_per_shard = frames_per_shard.ok_or_else(|| err("missing frames_per_shard"))?;
        let shard_count = shard_count.ok_or_else(|| err("missing shards"))?;
        let min_cycles = min_cycles.ok_or_else(|| err("missing min_cycles"))?;
        let max_cycles = max_cycles.ok_or_else(|| err("missing max_cycles"))?;

        if period.is_zero() {
            return Err(err("period must be non-zero"));
        }
        if total_frames == 0 {
            return Err(err("a sharded trace needs at least one frame"));
        }
        if frames_per_shard == 0 {
            return Err(err("frames_per_shard must be non-zero"));
        }
        let expected_shards = total_frames.div_ceil(frames_per_shard as u64) as usize;
        if shard_count != expected_shards {
            return Err(err(&format!(
                "manifest declares {shard_count} shards but \
                 {total_frames} frames at {frames_per_shard} per shard \
                 need {expected_shards}"
            )));
        }
        for index in 0..shard_count {
            let shard = dir.join(shard_file_name(index));
            if !shard.exists() {
                return Err(WorkloadError::Io {
                    path: shard.display().to_string(),
                    reason: "shard file declared in the manifest is missing".to_owned(),
                });
            }
        }

        Ok(ShardedTrace {
            dir,
            name,
            period,
            total_frames,
            frames_per_shard,
            shard_count,
            min_cycles,
            max_cycles,
            cursor: 0,
            current: None,
            shard_loads: 0,
        })
    }

    /// The directory the shards live in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total recorded frames.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total_frames
    }

    /// `false`: sharded traces are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Frames per full shard (the final shard may be shorter).
    #[must_use]
    pub fn frames_per_shard(&self) -> usize {
        self.frames_per_shard
    }

    /// Number of shard files.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Frames currently resident in memory — at most
    /// [`frames_per_shard`](ShardedTrace::frames_per_shard), the
    /// bounded-memory guarantee tests assert.
    #[must_use]
    pub fn resident_frames(&self) -> usize {
        self.current.as_ref().map_or(0, TraceShard::len)
    }

    /// Shard files loaded from disk so far (a replay diagnostic: one
    /// sequential pass loads each shard exactly once).
    #[must_use]
    pub fn shard_loads(&self) -> u64 {
        self.shard_loads
    }

    /// The smallest and largest total cycles of any recorded frame, as
    /// measured during recording.
    #[must_use]
    pub fn cycle_extrema(&self) -> (u64, u64) {
        (self.min_cycles, self.max_cycles)
    }

    /// Pre-characterisation workload bounds `(min, max)` in cycles —
    /// the same values `qgov_bench::harness::precharacterize` derives
    /// from an in-memory trace, including its widening of degenerate
    /// constant workloads, but computed during recording so no second
    /// pass over the frames is needed.
    #[must_use]
    pub fn workload_bounds(&self) -> (f64, f64) {
        let mut min = self.min_cycles as f64;
        let mut max = self.max_cycles as f64;
        if min >= max {
            // Degenerate constant workload: widen artificially,
            // mirroring `precharacterize` bit-for-bit.
            min *= 0.9;
            max *= 1.1 + 1e-9;
        }
        (min, max)
    }

    /// Index of the shard covering global frame `frame`.
    #[must_use]
    pub fn shard_index_of(&self, frame: u64) -> usize {
        (frame / self.frames_per_shard as u64) as usize
    }

    /// Loads shard `index` from disk, validating it against the
    /// manifest (name, period and the exact frame count the geometry
    /// demands — a truncated or padded shard file is rejected here).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Io`] if the file is unreadable and
    /// [`WorkloadError::ParseTraceError`] if it is malformed or
    /// inconsistent with the manifest.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn load_shard(&self, index: usize) -> Result<TraceShard, WorkloadError> {
        assert!(
            index < self.shard_count,
            "shard {index} out of range ({} shards)",
            self.shard_count
        );
        let path = self.dir.join(shard_file_name(index));
        let text = fs::read_to_string(&path).map_err(|e| WorkloadError::io(&path, &e))?;
        let trace = WorkloadTrace::from_csv(&text)?;
        let mismatch = |reason: String| WorkloadError::ParseTraceError { line: 1, reason };
        if trace.name() != self.name || trace.period() != self.period {
            return Err(mismatch(format!(
                "shard {index} metadata ({}, {} ns) does not match the \
                 manifest ({}, {} ns)",
                trace.name(),
                trace.period().as_ns(),
                self.name,
                self.period.as_ns()
            )));
        }
        let start_frame = index as u64 * self.frames_per_shard as u64;
        let expected = (self.total_frames - start_frame).min(self.frames_per_shard as u64);
        if trace.len() as u64 != expected {
            return Err(mismatch(format!(
                "shard {index} holds {} frames but the manifest geometry \
                 expects {expected} (truncated or padded shard file?)",
                trace.len()
            )));
        }
        Ok(TraceShard {
            index,
            start_frame,
            frames: trace.into_frames(),
        })
    }

    /// Materialises the whole trace into a [`WorkloadTrace`] — the
    /// inverse of sharded recording, for tests and for consumers (like
    /// the Oracle governor) that genuinely need every frame at once.
    /// Defeats the bounded-memory purpose for long traces; replay
    /// through [`Application`] instead wherever possible.
    ///
    /// # Errors
    ///
    /// Returns the first shard-load error encountered.
    pub fn to_trace(&self) -> Result<WorkloadTrace, WorkloadError> {
        let mut frames = Vec::with_capacity(usize::try_from(self.total_frames).unwrap_or(0));
        for index in 0..self.shard_count {
            frames.extend(self.load_shard(index)?.frames);
        }
        Ok(WorkloadTrace::from_frames(&self.name, self.period, frames))
    }
}

impl Application for ShardedTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> SimTime {
        self.period
    }

    fn frames(&self) -> u64 {
        self.total_frames
    }

    /// Replays the recorded frames in order, streaming the shard that
    /// covers the cursor from disk on demand; wraps around at the end
    /// like [`WorkloadTrace`].
    ///
    /// # Panics
    ///
    /// Panics if the shard covering the cursor cannot be loaded
    /// (deleted, truncated or corrupted since
    /// [`open`](ShardedTrace::open) validated the directory) — the
    /// [`Application`] contract has no error channel, and a trace that
    /// changes mid-replay is unrecoverable for a deterministic
    /// experiment anyway. Use [`load_shard`](ShardedTrace::load_shard)
    /// directly to handle shard errors as values.
    fn next_frame(&mut self) -> FrameDemand {
        let mut out = FrameDemand::default();
        self.next_frame_into(&mut out);
        out
    }

    /// Allocation-free streaming replay within a resident shard:
    /// refills `out` from the covering frame in place. Heap activity is
    /// confined to shard-boundary loads (O(frames / shard_frames)
    /// amortised); [`next_frame`](Application::next_frame) delegates
    /// here.
    fn next_frame_into(&mut self, out: &mut FrameDemand) {
        let index = self.shard_index_of(self.cursor);
        if self.current.as_ref().is_none_or(|s| s.index() != index) {
            let shard = self.load_shard(index).unwrap_or_else(|e| {
                panic!(
                    "streaming replay of {} failed at frame {}: {e}",
                    self.dir.display(),
                    self.cursor
                )
            });
            self.current = Some(shard);
            self.shard_loads += 1;
        }
        let shard = self.current.as_ref().expect("shard just loaded");
        out.copy_from(shard.frame(self.cursor));
        self.cursor = (self.cursor + 1) % self.total_frames;
    }

    /// Rewinds to frame zero without touching disk: the resident shard
    /// is kept and simply re-used if it covers the start.
    fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticWorkload;
    use qgov_units::Cycles;

    fn test_dir(tag: &str) -> ScratchDir {
        ScratchDir::unique(&format!("qgov-shard-test-{tag}"))
    }

    fn sample_app(frames: u64) -> SyntheticWorkload {
        SyntheticWorkload::constant(
            "sample",
            Cycles::from_mcycles(5),
            SimTime::from_ms(40),
            frames,
            2,
            3,
        )
        .with_noise(0.1)
        .with_mem_time(SimTime::from_us(500))
    }

    #[test]
    fn record_creates_expected_geometry() {
        let dir = test_dir("geometry");
        let mut app = sample_app(25);
        let trace = ShardedTrace::record(&mut app, dir.path(), 25, 10).unwrap();
        assert_eq!(trace.len(), 25);
        assert_eq!(trace.frames_per_shard(), 10);
        assert_eq!(trace.shard_count(), 3);
        assert_eq!(trace.load_shard(0).unwrap().len(), 10);
        assert_eq!(trace.load_shard(2).unwrap().len(), 5); // truncated tail
        assert_eq!(trace.load_shard(2).unwrap().start_frame(), 20);
        assert!(dir.path().join(MANIFEST_FILE).exists());
        assert!(dir.path().join(shard_file_name(2)).exists());
        assert!(!dir.path().join(shard_file_name(3)).exists());
    }

    #[test]
    fn streamed_replay_matches_in_memory_replay() {
        let dir = test_dir("replay");
        let mut app = sample_app(23);
        let mut streamed = ShardedTrace::record(&mut app, dir.path(), 23, 7).unwrap();
        let mut whole = WorkloadTrace::record(&mut app);
        // Two full wraps: equality must survive the wrap-around.
        for i in 0..46 {
            assert_eq!(streamed.next_frame(), whole.next_frame(), "frame {i}");
        }
        assert!(streamed.resident_frames() <= 7);
    }

    #[test]
    fn reset_rewinds_and_reuses_resident_shard() {
        let dir = test_dir("reset");
        let mut app = sample_app(12);
        let mut trace = ShardedTrace::record(&mut app, dir.path(), 12, 12).unwrap();
        let first = trace.next_frame();
        for _ in 1..5 {
            trace.next_frame();
        }
        let loads = trace.shard_loads();
        trace.reset();
        assert_eq!(trace.next_frame(), first);
        // Single shard: the reset replay must not reload it.
        assert_eq!(trace.shard_loads(), loads);
    }

    #[test]
    fn sequential_pass_loads_each_shard_once() {
        let dir = test_dir("loads");
        let mut app = sample_app(40);
        let mut trace = ShardedTrace::record(&mut app, dir.path(), 40, 8).unwrap();
        for _ in 0..40 {
            trace.next_frame();
        }
        assert_eq!(trace.shard_loads(), 5);
        assert!(trace.resident_frames() <= 8);
    }

    #[test]
    fn clones_stream_independently() {
        let dir = test_dir("clone");
        let mut app = sample_app(20);
        let mut a = ShardedTrace::record(&mut app, dir.path(), 20, 6).unwrap();
        let mut b = a.clone();
        let first = a.next_frame();
        for _ in 1..15 {
            a.next_frame();
        }
        // b's cursor is untouched by a's replay.
        assert_eq!(b.next_frame(), first);
        assert_eq!(a, b); // identity equality ignores cursors
    }

    #[test]
    fn workload_bounds_widen_degenerate_constant_workloads() {
        let dir = test_dir("bounds");
        let mut app = sample_app(10); // noisy: genuine spread
        let trace = ShardedTrace::record(&mut app, dir.path(), 10, 4).unwrap();
        let (min, max) = trace.workload_bounds();
        let (raw_min, raw_max) = trace.cycle_extrema();
        assert!(min < max);
        assert_eq!(min, raw_min as f64);
        assert_eq!(max, raw_max as f64);

        let dir = test_dir("bounds-const");
        let mut constant = SyntheticWorkload::constant(
            "c",
            Cycles::from_mcycles(5),
            SimTime::from_ms(40),
            10,
            2,
            0,
        );
        let trace = ShardedTrace::record(&mut constant, dir.path(), 10, 4).unwrap();
        let (min, max) = trace.workload_bounds();
        let (raw_min, raw_max) = trace.cycle_extrema();
        assert_eq!(raw_min, raw_max);
        assert!((min - raw_min as f64 * 0.9).abs() < 1e-6);
        assert!(max > raw_max as f64 * 1.1 - 1e-6);
    }

    #[test]
    fn record_resets_the_app_like_workload_trace() {
        let dir = test_dir("reset-app");
        let mut app = sample_app(8);
        app.next_frame();
        app.next_frame();
        let mut trace = ShardedTrace::record(&mut app, dir.path(), 8, 3).unwrap();
        // App was left reset: its next frame equals the trace's first.
        assert_eq!(app.next_frame(), trace.next_frame());
    }

    #[test]
    fn open_round_trips_the_manifest() {
        let dir = test_dir("open");
        let mut app = sample_app(15);
        let recorded = ShardedTrace::record(&mut app, dir.path(), 15, 4).unwrap();
        let opened = ShardedTrace::open(dir.path()).unwrap();
        assert_eq!(recorded, opened);
        assert_eq!(opened.name(), "sample");
        assert_eq!(opened.period(), SimTime::from_ms(40));
        assert_eq!(opened.cycle_extrema(), recorded.cycle_extrema());
    }

    #[test]
    fn to_trace_materialises_the_full_recording() {
        let dir = test_dir("materialise");
        let mut app = sample_app(17);
        let sharded = ShardedTrace::record(&mut app, dir.path(), 17, 5).unwrap();
        let whole = WorkloadTrace::record(&mut app);
        assert_eq!(sharded.to_trace().unwrap(), whole);
    }

    #[test]
    fn open_rejects_missing_and_malformed_manifests() {
        let dir = test_dir("bad-manifest");
        // No directory at all.
        assert!(matches!(
            ShardedTrace::open(dir.path()),
            Err(WorkloadError::Io { .. })
        ));

        fs::create_dir_all(dir.path()).unwrap();
        let manifest = dir.path().join(MANIFEST_FILE);

        // Garbage header.
        fs::write(&manifest, "garbage\n").unwrap();
        assert!(matches!(
            ShardedTrace::open(dir.path()),
            Err(WorkloadError::ParseTraceError { .. })
        ));

        // Zero frames.
        fs::write(
            &manifest,
            "# name=x period_ns=1000 frames=0 frames_per_shard=4 shards=0 \
             min_cycles=0 max_cycles=0\n",
        )
        .unwrap();
        assert!(ShardedTrace::open(dir.path()).is_err());

        // Inconsistent geometry: 10 frames at 4 per shard is 3 shards.
        fs::write(
            &manifest,
            "# name=x period_ns=1000 frames=10 frames_per_shard=4 shards=2 \
             min_cycles=1 max_cycles=2\n",
        )
        .unwrap();
        assert!(ShardedTrace::open(dir.path()).is_err());
    }

    #[test]
    fn open_rejects_missing_shard_files() {
        let dir = test_dir("missing-shard");
        let mut app = sample_app(12);
        let _ = ShardedTrace::record(&mut app, dir.path(), 12, 4).unwrap();
        fs::remove_file(dir.path().join(shard_file_name(1))).unwrap();
        assert!(matches!(
            ShardedTrace::open(dir.path()),
            Err(WorkloadError::Io { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frame_record_panics() {
        let dir = test_dir("zero");
        let mut app = sample_app(5);
        let _ = ShardedTrace::record(&mut app, dir.path(), 0, 4);
    }

    #[test]
    #[should_panic(expected = "without whitespace")]
    fn whitespace_in_workload_name_is_rejected_before_any_io() {
        // The name is embedded in space-delimited CSV headers: a name
        // like "my app" would corrupt the manifest the writer is about
        // to produce, so it must fail up front, not after shard I/O.
        let _ = ShardWriter::create(
            std::env::temp_dir().join("qgov-shard-bad-name"),
            "my app",
            SimTime::from_ms(1),
            4,
        );
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_shard_size_panics() {
        let _ = ShardWriter::create(
            std::env::temp_dir().join("qgov-shard-zero-size"),
            "x",
            SimTime::from_ms(1),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "streaming replay")]
    fn replay_panics_when_a_shard_vanishes_mid_run() {
        let dir = test_dir("vanish");
        let mut app = sample_app(12);
        let mut trace = ShardedTrace::record(&mut app, dir.path(), 12, 4).unwrap();
        trace.next_frame();
        fs::remove_file(dir.path().join(shard_file_name(1))).unwrap();
        for _ in 0..8 {
            trace.next_frame();
        }
    }
}
