//! Concurrently executing applications — the paper's stated future
//! work ("investigating how to extend this approach to manage the
//! energy consumption of multiple concurrently executing applications",
//! Section IV), provided here as a workload-level composition: each
//! member application contributes its threads to disjoint cores of the
//! same frame-synchronous epoch.

use crate::{Application, FrameDemand, WorkloadError};
use qgov_units::SimTime;

/// Two or more applications running concurrently under one governor.
///
/// All members must share the same frame period (the composite is
/// frame-synchronous); each member's threads are appended in order, so
/// member 0 occupies cores `0..t₀`, member 1 cores `t₀..t₀+t₁`, and so
/// on. The composite ends when its shortest member ends.
///
/// # Examples
///
/// ```
/// use qgov_workloads::{Application, CompositeWorkload, SyntheticWorkload};
/// use qgov_units::{Cycles, SimTime};
///
/// let a = SyntheticWorkload::constant(
///     "a", Cycles::from_mcycles(20), SimTime::from_ms(40), 100, 2, 1,
/// );
/// let b = SyntheticWorkload::constant(
///     "b", Cycles::from_mcycles(30), SimTime::from_ms(40), 80, 2, 2,
/// );
/// let mut both = CompositeWorkload::new(vec![Box::new(a), Box::new(b)]).unwrap();
/// assert_eq!(both.name(), "a+b");
/// assert_eq!(both.frames(), 80);          // shortest member
/// let frame = both.next_frame();
/// assert_eq!(frame.thread_count(), 4);    // 2 + 2 threads
/// ```
pub struct CompositeWorkload {
    name: String,
    period: SimTime,
    frames: u64,
    members: Vec<Box<dyn Application>>,
}

impl CompositeWorkload {
    /// Composes applications into one concurrent workload.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if fewer than two
    /// members are given or their periods differ.
    pub fn new(members: Vec<Box<dyn Application>>) -> Result<Self, WorkloadError> {
        if members.len() < 2 {
            return Err(WorkloadError::InvalidConfig {
                reason: "a composite needs at least two applications".into(),
            });
        }
        let period = members[0].period();
        for m in &members[1..] {
            if m.period() != period {
                return Err(WorkloadError::InvalidConfig {
                    reason: format!(
                        "member `{}` has period {} but `{}` has {}; concurrent members must \
                         share one frame period",
                        m.name(),
                        m.period(),
                        members[0].name(),
                        period
                    ),
                });
            }
        }
        let frames = members.iter().map(|m| m.frames()).min().expect("non-empty");
        let name = members
            .iter()
            .map(|m| m.name().to_owned())
            .collect::<Vec<_>>()
            .join("+");
        Ok(CompositeWorkload {
            name,
            period,
            frames,
            members,
        })
    }

    /// Number of member applications.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Names of the members, in core-assignment order.
    #[must_use]
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl core::fmt::Debug for CompositeWorkload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CompositeWorkload")
            .field("name", &self.name)
            .field("period", &self.period)
            .field("frames", &self.frames)
            .field("members", &self.member_names())
            .finish()
    }
}

impl Application for CompositeWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> SimTime {
        self.period
    }

    fn frames(&self) -> u64 {
        self.frames
    }

    fn next_frame(&mut self) -> FrameDemand {
        let mut threads = Vec::new();
        for m in &mut self.members {
            threads.extend(m.next_frame().threads);
        }
        FrameDemand::new(threads)
    }

    fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyntheticWorkload, VideoDecoderModel};
    use qgov_units::Cycles;

    fn two_thread_app(name: &str, mc: u64, frames: u64, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::constant(
            name,
            Cycles::from_mcycles(mc),
            SimTime::from_ms(40),
            frames,
            2,
            seed,
        )
    }

    #[test]
    fn threads_concatenate_in_member_order() {
        let a = two_thread_app("a", 20, 50, 1);
        let b = two_thread_app("b", 60, 50, 2);
        let mut both = CompositeWorkload::new(vec![Box::new(a), Box::new(b)]).unwrap();
        let f = both.next_frame();
        assert_eq!(f.thread_count(), 4);
        // Member b's threads (30 Mc each) occupy the upper cores.
        assert!(f.threads[2].cpu_cycles > f.threads[0].cpu_cycles);
    }

    #[test]
    fn shortest_member_bounds_the_run() {
        let a = two_thread_app("a", 10, 100, 1);
        let b = two_thread_app("b", 10, 30, 2);
        let both = CompositeWorkload::new(vec![Box::new(a), Box::new(b)]).unwrap();
        assert_eq!(both.frames(), 30);
    }

    #[test]
    fn mismatched_periods_are_rejected() {
        let a = two_thread_app("a", 10, 50, 1);
        let b = SyntheticWorkload::constant(
            "b",
            Cycles::from_mcycles(10),
            SimTime::from_ms(33),
            50,
            2,
            2,
        );
        assert!(CompositeWorkload::new(vec![Box::new(a), Box::new(b)]).is_err());
    }

    #[test]
    fn single_member_is_rejected() {
        let a = two_thread_app("a", 10, 50, 1);
        let only: Vec<Box<dyn Application>> = vec![Box::new(a)];
        assert!(CompositeWorkload::new(only).is_err());
    }

    #[test]
    fn reset_rewinds_every_member() {
        let a = VideoDecoderModel::mpeg4_svga_24fps(3).with_frames(40);
        let b = VideoDecoderModel::mpeg4_svga_24fps(9).with_frames(40);
        // Same period (24 fps), different seeds.
        let mut both = CompositeWorkload::new(vec![Box::new(a), Box::new(b)]).unwrap();
        let first: Vec<FrameDemand> = (0..10).map(|_| both.next_frame()).collect();
        both.reset();
        let second: Vec<FrameDemand> = (0..10).map(|_| both.next_frame()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn composite_name_and_members() {
        let a = two_thread_app("alpha", 10, 50, 1);
        let b = two_thread_app("beta", 10, 50, 2);
        let both = CompositeWorkload::new(vec![Box::new(a), Box::new(b)]).unwrap();
        assert_eq!(both.name(), "alpha+beta");
        assert_eq!(both.member_count(), 2);
        assert_eq!(both.member_names(), vec!["alpha", "beta"]);
    }
}
