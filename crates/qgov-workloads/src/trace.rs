//! Workload trace record and replay.
//!
//! The Oracle baseline of Table I requires "offline determination of
//! optimized V-F for the observed CPU workloads": it must see the exact
//! per-frame demands before choosing operating points. Recording any
//! [`Application`] into a [`WorkloadTrace`] provides that offline view,
//! and replaying the trace guarantees every governor is evaluated on the
//! *identical* frame sequence.

use crate::{Application, FrameDemand, ThreadDemand, WorkloadError};
use qgov_units::{Cycles, SimTime};

/// Splits a `# key=value key=value …` metadata header line into its
/// fields — the one parser behind both the per-trace CSV header
/// ([`WorkloadTrace::from_csv`]) and the sharded-trace manifest
/// (`crate::shard`). `err` wraps a reason into the caller's error
/// (carrying its own line-number context).
pub(crate) fn header_fields<'a>(
    line: Option<&'a str>,
    err: &dyn Fn(&str) -> WorkloadError,
) -> Result<Vec<(&'a str, &'a str)>, WorkloadError> {
    let header = line
        .and_then(|l| l.strip_prefix("# "))
        .ok_or_else(|| err("missing `# ` metadata header"))?;
    header
        .split_whitespace()
        .map(|field| {
            field
                .split_once('=')
                .ok_or_else(|| err("metadata field without `=`"))
        })
        .collect()
}

/// A fully materialised frame sequence with its deadline, replayable as
/// an [`Application`] and round-trippable through CSV.
///
/// # Examples
///
/// ```
/// use qgov_workloads::{Application, SyntheticWorkload, WorkloadTrace};
/// use qgov_units::{Cycles, SimTime};
///
/// let mut app = SyntheticWorkload::constant(
///     "c", Cycles::from_mcycles(8), SimTime::from_ms(40), 20, 4, 0,
/// );
/// let trace = WorkloadTrace::record(&mut app);
/// assert_eq!(trace.len(), 20);
///
/// // CSV round-trip preserves everything.
/// let csv = trace.to_csv();
/// let back = WorkloadTrace::from_csv(&csv).unwrap();
/// assert_eq!(trace, back);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadTrace {
    name: String,
    period: SimTime,
    frames: Vec<FrameDemand>,
    cursor: usize,
}

/// Trace equality compares the recorded *data* (name, period, frames);
/// the replay cursor is iteration state, not content, so a partially
/// replayed trace still equals its freshly parsed CSV round-trip.
impl PartialEq for WorkloadTrace {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.period == other.period && self.frames == other.frames
    }
}

impl Eq for WorkloadTrace {}

impl WorkloadTrace {
    /// Creates a trace from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or `period` is zero.
    #[must_use]
    pub fn from_frames(name: impl Into<String>, period: SimTime, frames: Vec<FrameDemand>) -> Self {
        assert!(!frames.is_empty(), "a trace needs at least one frame");
        assert!(!period.is_zero(), "period must be non-zero");
        WorkloadTrace {
            name: name.into(),
            period,
            frames,
            cursor: 0,
        }
    }

    /// Records the full run of `app` (resetting it first so the trace
    /// starts at frame zero; the application is left reset afterwards,
    /// ready for a live run on the same sequence).
    #[must_use]
    pub fn record(app: &mut dyn Application) -> Self {
        app.reset();
        let frames = (0..app.frames()).map(|_| app.next_frame()).collect();
        let trace = WorkloadTrace {
            name: app.name().to_owned(),
            period: app.period(),
            frames,
            cursor: 0,
        };
        app.reset();
        trace
    }

    /// Number of frames in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `false`: traces are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The recorded frames.
    #[must_use]
    pub fn frame_demands(&self) -> &[FrameDemand] {
        &self.frames
    }

    /// Consumes the trace into its recorded frames (the sharded
    /// streaming layer parses each shard file through
    /// [`WorkloadTrace::from_csv`] and keeps only the frames).
    #[must_use]
    pub fn into_frames(self) -> Vec<FrameDemand> {
        self.frames
    }

    /// Total cycles of frame `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn total_cycles(&self, index: usize) -> Cycles {
        self.frames[index].total_cycles()
    }

    /// Serialises to a self-describing CSV document.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# name={} period_ns={} frames={}",
            self.name,
            self.period.as_ns(),
            self.frames.len()
        );
        let _ = writeln!(out, "frame,thread,cpu_cycles,mem_ns");
        for (fi, frame) in self.frames.iter().enumerate() {
            for (ti, t) in frame.threads.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{fi},{ti},{},{}",
                    t.cpu_cycles.count(),
                    t.mem_time.as_ns()
                );
            }
        }
        out
    }

    /// Parses a document produced by [`to_csv`](WorkloadTrace::to_csv).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ParseTraceError`] with a line number on
    /// any malformed input.
    pub fn from_csv(text: &str) -> Result<Self, WorkloadError> {
        let err = |line: usize, reason: &str| WorkloadError::ParseTraceError {
            line,
            reason: reason.to_owned(),
        };
        let mut lines = text.lines().enumerate();

        // Header line: "# name=<..> period_ns=<..> frames=<..>".
        let (hno, header) = lines.next().ok_or_else(|| err(1, "empty document"))?;
        let mut name = None;
        let mut period = None;
        let mut frame_count = None;
        for (key, value) in
            crate::trace::header_fields(Some(header), &|reason| err(hno + 1, reason))?
        {
            match key {
                "name" => name = Some(value.to_owned()),
                "period_ns" => {
                    period = Some(SimTime::from_ns(
                        value
                            .parse()
                            .map_err(|_| err(hno + 1, "period_ns is not an integer"))?,
                    ));
                }
                "frames" => {
                    frame_count = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| err(hno + 1, "frames is not an integer"))?,
                    );
                }
                _ => return Err(err(hno + 1, "unknown metadata key")),
            }
        }
        let name = name.ok_or_else(|| err(hno + 1, "missing name"))?;
        let period = period.ok_or_else(|| err(hno + 1, "missing period_ns"))?;
        let frame_count = frame_count.ok_or_else(|| err(hno + 1, "missing frames"))?;
        if period.is_zero() {
            return Err(err(hno + 1, "period must be non-zero"));
        }

        // Column header.
        let (cno, columns) = lines
            .next()
            .ok_or_else(|| err(2, "missing column header"))?;
        if columns != "frame,thread,cpu_cycles,mem_ns" {
            return Err(err(cno + 1, "unexpected column header"));
        }

        let mut frames: Vec<FrameDemand> = vec![FrameDemand::default(); frame_count];
        for (lno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let mut next_u64 = |what: &str| -> Result<u64, WorkloadError> {
                parts
                    .next()
                    .ok_or_else(|| err(lno + 1, &format!("missing {what}")))?
                    .trim()
                    .parse()
                    .map_err(|_| err(lno + 1, &format!("{what} is not an integer")))
            };
            let frame = next_u64("frame index")? as usize;
            let thread = next_u64("thread index")? as usize;
            let cycles = next_u64("cpu_cycles")?;
            let mem_ns = next_u64("mem_ns")?;
            if frame >= frame_count {
                return Err(err(lno + 1, "frame index beyond declared frame count"));
            }
            let threads = &mut frames[frame].threads;
            if thread != threads.len() {
                return Err(err(lno + 1, "thread indices must be consecutive from 0"));
            }
            threads.push(ThreadDemand::new(
                Cycles::new(cycles),
                SimTime::from_ns(mem_ns),
            ));
        }
        if frames.iter().any(|f| f.threads.is_empty()) {
            return Err(err(0, "trace is missing frames declared in the header"));
        }
        Ok(WorkloadTrace {
            name,
            period,
            frames,
            cursor: 0,
        })
    }
}

impl Application for WorkloadTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> SimTime {
        self.period
    }

    fn frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Replays the recorded frames in order; wraps around at the end
    /// (replay beyond the recorded length repeats the sequence).
    fn next_frame(&mut self) -> FrameDemand {
        let mut out = FrameDemand::default();
        self.next_frame_into(&mut out);
        out
    }

    /// Allocation-free replay: refills `out` from the current frame in
    /// place (the harness's steady-state path);
    /// [`next_frame`](Application::next_frame) delegates here.
    fn next_frame_into(&mut self, out: &mut FrameDemand) {
        out.copy_from(&self.frames[self.cursor]);
        self.cursor = (self.cursor + 1) % self.frames.len();
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyntheticWorkload, VideoDecoderModel};

    fn sample_app() -> SyntheticWorkload {
        SyntheticWorkload::constant(
            "sample",
            Cycles::from_mcycles(5),
            SimTime::from_ms(40),
            6,
            2,
            3,
        )
        .with_noise(0.1)
        .with_mem_time(SimTime::from_us(500))
    }

    #[test]
    fn record_captures_whole_run_and_resets_app() {
        let mut app = sample_app();
        // Burn a few frames first: record must rewind to frame 0.
        app.next_frame();
        app.next_frame();
        let trace = WorkloadTrace::record(&mut app);
        assert_eq!(trace.len(), 6);
        // App was reset: its next frame equals the trace's first.
        assert_eq!(app.next_frame(), trace.frame_demands()[0]);
    }

    #[test]
    fn replay_matches_live_run_exactly() {
        let mut app = sample_app();
        let mut trace = WorkloadTrace::record(&mut app);
        app.reset();
        for _ in 0..6 {
            assert_eq!(trace.next_frame(), app.next_frame());
        }
    }

    #[test]
    fn replay_wraps_around() {
        let mut app = sample_app();
        let mut trace = WorkloadTrace::record(&mut app);
        let first = trace.next_frame();
        for _ in 1..6 {
            trace.next_frame();
        }
        assert_eq!(trace.next_frame(), first);
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let mut app = sample_app();
        let trace = WorkloadTrace::record(&mut app);
        let back = WorkloadTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(trace, back);
        assert_eq!(back.period(), SimTime::from_ms(40));
        assert_eq!(back.name(), "sample");
    }

    #[test]
    fn csv_round_trip_on_video_workload() {
        let mut app = VideoDecoderModel::mpeg4_svga_24fps(1).with_frames(25);
        let trace = WorkloadTrace::record(&mut app);
        let back = WorkloadTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        // Bad metadata.
        let e = WorkloadTrace::from_csv("garbage").unwrap_err();
        assert!(matches!(e, WorkloadError::ParseTraceError { line: 1, .. }));

        // Bad integer on a data line.
        let text = "# name=x period_ns=1000000 frames=1\n\
                    frame,thread,cpu_cycles,mem_ns\n\
                    0,0,notanumber,0\n";
        let e = WorkloadTrace::from_csv(text).unwrap_err();
        assert!(matches!(e, WorkloadError::ParseTraceError { line: 3, .. }));

        // Frame index out of declared range.
        let text = "# name=x period_ns=1000000 frames=1\n\
                    frame,thread,cpu_cycles,mem_ns\n\
                    5,0,10,0\n";
        assert!(WorkloadTrace::from_csv(text).is_err());

        // Missing frames.
        let text = "# name=x period_ns=1000000 frames=2\n\
                    frame,thread,cpu_cycles,mem_ns\n\
                    0,0,10,0\n";
        assert!(WorkloadTrace::from_csv(text).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_trace_panics() {
        let _ = WorkloadTrace::from_frames("x", SimTime::from_ms(1), vec![]);
    }
}
