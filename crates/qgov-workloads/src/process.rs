//! Seeded stochastic building blocks for workload variation.

use rand::rngs::StdRng;
use rand::Rng;

/// Draws a standard-normal sample via Box–Muller.
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// A first-order autoregressive process,
/// `x' = mean + phi·(x − mean) + sigma·N(0,1)`, clamped to a range.
///
/// Models smoothly varying workload intensity such as video motion: the
/// process is correlated frame-to-frame (persistence `phi`) with
/// Gaussian innovations.
///
/// # Examples
///
/// ```
/// use qgov_workloads::Ar1Process;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut p = Ar1Process::new(1.0, 0.9, 0.05, 0.5, 1.5);
/// for _ in 0..100 {
///     let v = p.step(&mut rng);
///     assert!((0.5..=1.5).contains(&v));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ar1Process {
    mean: f64,
    phi: f64,
    sigma: f64,
    min: f64,
    max: f64,
    current: f64,
}

impl Ar1Process {
    /// Creates an AR(1) process starting at its mean.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ phi < 1`, `sigma ≥ 0`, `min < max`, and the
    /// mean lies inside `[min, max]`.
    #[must_use]
    pub fn new(mean: f64, phi: f64, sigma: f64, min: f64, max: f64) -> Self {
        assert!((0.0..1.0).contains(&phi), "phi must lie in [0, 1)");
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative"
        );
        assert!(min < max, "min must be below max");
        assert!(
            (min..=max).contains(&mean),
            "mean {mean} must lie within [{min}, {max}]"
        );
        Ar1Process {
            mean,
            phi,
            sigma,
            min,
            max,
            current: mean,
        }
    }

    /// Current value without advancing.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.current
    }

    /// Advances one step and returns the new value.
    pub fn step(&mut self, rng: &mut StdRng) -> f64 {
        let innovation = self.sigma * gaussian(rng);
        let next = self.mean + self.phi * (self.current - self.mean) + innovation;
        self.current = next.clamp(self.min, self.max);
        self.current
    }

    /// Jumps the process to `value` (clamped), e.g. on a scene change.
    pub fn jump_to(&mut self, value: f64) {
        self.current = value.clamp(self.min, self.max);
    }

    /// Restarts from the mean.
    pub fn reset(&mut self) {
        self.current = self.mean;
    }
}

/// A discrete-time Markov chain over workload regimes.
///
/// Models abrupt mode switches such as video scene changes or benchmark
/// phase transitions; each state carries a workload multiplier.
///
/// # Examples
///
/// ```
/// use qgov_workloads::MarkovChain;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Two regimes: calm (x1.0) and action (x1.6); sticky transitions.
/// let chain = MarkovChain::new(
///     vec![1.0, 1.6],
///     vec![vec![0.95, 0.05], vec![0.10, 0.90]],
/// ).unwrap();
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut c = chain;
/// let mut saw_action = false;
/// for _ in 0..500 {
///     if c.step(&mut rng) > 1.0 { saw_action = true; }
/// }
/// assert!(saw_action);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    values: Vec<f64>,
    transitions: Vec<Vec<f64>>,
    state: usize,
}

impl MarkovChain {
    /// Creates a chain starting in state 0.
    ///
    /// # Errors
    ///
    /// Returns an error if dimensions are inconsistent, any row does not
    /// sum to ≈ 1, or any probability is negative.
    pub fn new(values: Vec<f64>, transitions: Vec<Vec<f64>>) -> Result<Self, crate::WorkloadError> {
        let n = values.len();
        if n == 0 {
            return Err(crate::WorkloadError::InvalidConfig {
                reason: "markov chain needs at least one state".into(),
            });
        }
        if transitions.len() != n {
            return Err(crate::WorkloadError::InvalidConfig {
                reason: format!(
                    "transition matrix has {} rows for {n} states",
                    transitions.len()
                ),
            });
        }
        for (i, row) in transitions.iter().enumerate() {
            if row.len() != n {
                return Err(crate::WorkloadError::InvalidConfig {
                    reason: format!(
                        "transition row {i} has {} entries for {n} states",
                        row.len()
                    ),
                });
            }
            if row.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
                return Err(crate::WorkloadError::InvalidConfig {
                    reason: format!("transition row {i} has probabilities outside [0, 1]"),
                });
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(crate::WorkloadError::InvalidConfig {
                    reason: format!("transition row {i} sums to {sum}, expected 1"),
                });
            }
        }
        Ok(MarkovChain {
            values,
            transitions,
            state: 0,
        })
    }

    /// Current state index.
    #[must_use]
    pub fn state(&self) -> usize {
        self.state
    }

    /// Current state's value without advancing.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.values[self.state]
    }

    /// Advances one step and returns the new state's value.
    pub fn step(&mut self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let row = &self.transitions[self.state];
        let mut acc = 0.0;
        for (i, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                self.state = i;
                break;
            }
        }
        self.values[self.state]
    }

    /// `true` if this step just entered a different state than `prev`.
    #[must_use]
    pub fn changed_from(&self, prev: usize) -> bool {
        self.state != prev
    }

    /// Restarts in state 0.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ar1_stays_in_bounds_and_reverts_to_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Ar1Process::new(10.0, 0.8, 1.0, 5.0, 15.0);
        let mut sum = 0.0;
        let n = 5000;
        for _ in 0..n {
            let v = p.step(&mut rng);
            assert!((5.0..=15.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 10.0).abs() < 0.5, "sample mean {mean} far from 10");
    }

    #[test]
    fn ar1_jump_and_reset() {
        let mut p = Ar1Process::new(1.0, 0.9, 0.0, 0.0, 2.0);
        p.jump_to(5.0);
        assert_eq!(p.value(), 2.0, "jump clamps to range");
        p.reset();
        assert_eq!(p.value(), 1.0);
    }

    #[test]
    fn ar1_zero_sigma_decays_deterministically() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = Ar1Process::new(0.0, 0.5, 0.0, -10.0, 10.0);
        p.jump_to(8.0);
        assert_eq!(p.step(&mut rng), 4.0);
        assert_eq!(p.step(&mut rng), 2.0);
        assert_eq!(p.step(&mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn ar1_rejects_unstable_phi() {
        let _ = Ar1Process::new(0.0, 1.0, 0.1, -1.0, 1.0);
    }

    #[test]
    fn markov_respects_stationary_distribution() {
        // Sticky two-state chain: stationary pi = (2/3, 1/3) for these
        // transition probabilities.
        let mut c = MarkovChain::new(vec![0.0, 1.0], vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut ones = 0;
        let n = 20_000;
        for _ in 0..n {
            if c.step(&mut rng) > 0.5 {
                ones += 1;
            }
        }
        let frac = f64::from(ones) / f64::from(n);
        assert!(
            (frac - 1.0 / 3.0).abs() < 0.03,
            "occupancy {frac} far from 1/3"
        );
    }

    #[test]
    fn markov_rejects_bad_matrices() {
        assert!(MarkovChain::new(vec![], vec![]).is_err());
        assert!(MarkovChain::new(vec![1.0], vec![vec![0.5]]).is_err()); // row sums to 0.5
        assert!(MarkovChain::new(vec![1.0, 2.0], vec![vec![1.0, 0.0]]).is_err()); // missing row
        assert!(MarkovChain::new(vec![1.0, 2.0], vec![vec![1.5, -0.5], vec![0.5, 0.5]]).is_err());
    }

    #[test]
    fn markov_reset_returns_to_state_zero() {
        let mut c = MarkovChain::new(vec![0.0, 1.0], vec![vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        c.step(&mut rng);
        assert_eq!(c.state(), 1);
        c.reset();
        assert_eq!(c.state(), 0);
    }
}
