//! Error type for workload construction and trace parsing.

use core::fmt;

/// Error returned by workload constructors and trace I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A workload model was configured inconsistently.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A CSV trace line could not be parsed.
    ParseTraceError {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A filesystem operation on a sharded trace failed.
    ///
    /// Carries the rendered [`std::io::Error`] rather than the error
    /// itself so the type stays `Clone + PartialEq` like its siblings.
    Io {
        /// The file or directory the operation touched.
        path: String,
        /// The rendered I/O error.
        reason: String,
    },
}

impl WorkloadError {
    /// Wraps an [`std::io::Error`] for `path` into [`WorkloadError::Io`].
    #[must_use]
    pub fn io(path: &std::path::Path, error: &std::io::Error) -> Self {
        WorkloadError::Io {
            path: path.display().to_string(),
            reason: error.to_string(),
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { reason } => {
                write!(f, "invalid workload configuration: {reason}")
            }
            WorkloadError::ParseTraceError { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
            WorkloadError::Io { path, reason } => {
                write!(f, "trace I/O error on {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_number() {
        let e = WorkloadError::ParseTraceError {
            line: 17,
            reason: "bad integer".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("bad integer"));
    }
}
