//! GOP-structured video-decoder workload models.
//!
//! Video decoding is the paper's primary workload (an MPEG4/H.264
//! decoder playing a ~3000-frame football sequence). Its per-frame cycle
//! demand has three well-known statistical components, all modelled
//! here:
//!
//! 1. **Frame classes** — GOPs interleave expensive intra-coded
//!    I-frames, medium predicted P-frames and cheap bidirectional
//!    B-frames;
//! 2. **Motion intensity** — a slowly-varying AR(1) multiplier (a
//!    football match has sustained high-motion passages);
//! 3. **Scene changes** — abrupt Markov-style jumps that reset motion
//!    and force an I-frame, exactly the events that defeat lagging
//!    filter predictors (Fig. 3's mispredictions).

use crate::process::{gaussian, Ar1Process};
use crate::{Application, FrameDemand, ThreadDemand, WorkloadError};
use qgov_units::{Cycles, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The coding class of a video frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FrameClass {
    /// Intra-coded frame (most expensive to decode).
    I,
    /// Predicted frame.
    P,
    /// Bidirectionally predicted frame (cheapest).
    B,
}

/// Full parameterisation of a [`VideoDecoderModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct VideoParams {
    /// Application name for reports.
    pub name: String,
    /// Frame rate (determines the deadline `T_ref = 1/fps`).
    pub fps: f64,
    /// Total frames in the sequence.
    pub frames: u64,
    /// Decoder threads spawned per frame (slice-parallel decode).
    pub threads: usize,
    /// Video frames decoded per iteration (decision epoch). The paper's
    /// own overhead experiment runs "ffmpeg decoding three frames" per
    /// 31 ms iteration; batching a GOP-aligned chunk per epoch is what
    /// makes the workload EWMA-predictable at the 3–8 % error levels
    /// Fig. 3 reports.
    pub frames_per_iteration: usize,
    /// Decode cost of a nominal P-frame, summed over all threads.
    pub base_cycles: Cycles,
    /// I-frame cost multiplier relative to P.
    pub i_factor: f64,
    /// B-frame cost multiplier relative to P.
    pub b_factor: f64,
    /// GOP pattern repeated over the sequence.
    pub gop: Vec<FrameClass>,
    /// AR(1) persistence of the motion-intensity multiplier.
    pub motion_phi: f64,
    /// AR(1) innovation scale of the motion multiplier.
    pub motion_sigma: f64,
    /// Per-frame probability of a random scene change.
    pub scene_change_prob: f64,
    /// Frames at which a scene change is forced (deterministically), in
    /// addition to random ones — used to script Fig. 3's mid-run burst.
    pub forced_scene_frames: Vec<u64>,
    /// Memory-stall time of a nominal P-frame (scales with complexity).
    pub base_mem_time: SimTime,
    /// Relative imbalance between decoder threads (std-dev of weights).
    pub thread_imbalance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl VideoParams {
    /// The classic 12-frame `IBBPBBPBBPBB` GOP.
    #[must_use]
    pub fn gop_ibbp() -> Vec<FrameClass> {
        use FrameClass::{B, I, P};
        vec![I, B, B, P, B, B, P, B, B, P, B, B]
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for empty GOPs, zero
    /// threads/frames, non-positive factors or invalid probabilities.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let fail = |reason: String| Err(WorkloadError::InvalidConfig { reason });
        if self.gop.is_empty() {
            return fail("GOP pattern must be non-empty".into());
        }
        if self.threads == 0 {
            return fail("decoder needs at least one thread".into());
        }
        if self.frames_per_iteration == 0 {
            return fail("an iteration must decode at least one video frame".into());
        }
        if self.frames == 0 {
            return fail("sequence needs at least one frame".into());
        }
        if !(self.fps.is_finite() && self.fps > 0.0) {
            return fail(format!("fps must be positive, got {}", self.fps));
        }
        if self.base_cycles.is_zero() {
            return fail("base cycles must be non-zero".into());
        }
        let factor_ok = |f: f64| f.is_finite() && f > 0.0;
        if !factor_ok(self.i_factor) || !factor_ok(self.b_factor) {
            return fail("frame-class factors must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.scene_change_prob) {
            return fail(format!(
                "scene-change probability must lie in [0, 1], got {}",
                self.scene_change_prob
            ));
        }
        if !(0.0..1.0).contains(&self.motion_phi) {
            return fail(format!(
                "motion phi must lie in [0, 1), got {}",
                self.motion_phi
            ));
        }
        if !(self.thread_imbalance.is_finite() && self.thread_imbalance >= 0.0) {
            return fail("thread imbalance must be non-negative".into());
        }
        Ok(())
    }
}

/// A seeded, GOP-structured video-decoder workload.
///
/// # Examples
///
/// ```
/// use qgov_workloads::{Application, VideoDecoderModel};
///
/// let mut app = VideoDecoderModel::mpeg4_svga_24fps(7);
/// let a = app.next_frame();
/// app.reset();
/// let b = app.next_frame();
/// assert_eq!(a, b, "reset reproduces the identical sequence");
/// ```
#[derive(Debug, Clone)]
pub struct VideoDecoderModel {
    params: VideoParams,
    rng: StdRng,
    motion: Ar1Process,
    frame_index: u64,
    /// Extra I-frame pending because of a scene change.
    pending_scene_iframe: bool,
}

impl VideoDecoderModel {
    /// Builds a model from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if `params` fail
    /// validation.
    pub fn new(params: VideoParams) -> Result<Self, WorkloadError> {
        params.validate()?;
        let motion = Ar1Process::new(1.0, params.motion_phi, params.motion_sigma, 0.6, 1.35);
        let rng = StdRng::seed_from_u64(params.seed);
        Ok(VideoDecoderModel {
            params,
            rng,
            motion,
            frame_index: 0,
            pending_scene_iframe: false,
        })
    }

    /// MPEG4 SVGA decoding at 24 iterations/s — the Fig. 3 workload.
    /// Scene changes are scripted inside the first 25 frames and at
    /// frame 90, reproducing the paper's early-exploration and
    /// mid-exploitation misprediction bursts.
    #[must_use]
    pub fn mpeg4_svga_24fps(seed: u64) -> Self {
        Self::new(VideoParams {
            name: "mpeg4".into(),
            fps: 24.0,
            frames: 3_000,
            threads: 4,
            frames_per_iteration: 3,
            base_cycles: Cycles::from_mcycles(57),
            i_factor: 1.2,
            b_factor: 0.9,
            gop: VideoParams::gop_ibbp(),
            motion_phi: 0.97,
            motion_sigma: 0.025,
            scene_change_prob: 0.001,
            forced_scene_frames: vec![3, 7, 11, 16, 21, 90],
            base_mem_time: SimTime::from_us(1_800),
            thread_imbalance: 0.08,
            seed,
        })
        .expect("built-in preset is valid")
    }

    /// MPEG4 decoding at 30 fps — the Table II exploration workload.
    #[must_use]
    pub fn mpeg4_30fps(seed: u64) -> Self {
        let mut params = Self::mpeg4_svga_24fps(seed).params;
        params.name = "mpeg4-30".into();
        params.fps = 30.0;
        params.forced_scene_frames.clear();
        Self::new(params).expect("built-in preset is valid")
    }

    /// H.264 decoding of the ~3000-frame football sequence at 15
    /// iterations/s — the Table I / Table II workload. H.264 decode is
    /// ≈ 1.4× the MPEG4 cost, and a football broadcast has frequent
    /// cuts and sustained motion (higher innovation variance).
    #[must_use]
    pub fn h264_football_15fps(seed: u64) -> Self {
        Self::new(VideoParams {
            name: "h264".into(),
            fps: 15.0,
            frames: 3_000,
            threads: 4,
            frames_per_iteration: 3,
            base_cycles: Cycles::from_mcycles(90),
            i_factor: 1.25,
            b_factor: 0.9,
            gop: VideoParams::gop_ibbp(),
            motion_phi: 0.96,
            motion_sigma: 0.045,
            scene_change_prob: 0.01,
            forced_scene_frames: vec![],
            base_mem_time: SimTime::from_us(2_800),
            thread_imbalance: 0.05,
            seed,
        })
        .expect("built-in preset is valid")
    }

    /// H.264 football at 25 fps (tighter deadlines, same content).
    #[must_use]
    pub fn h264_football_25fps(seed: u64) -> Self {
        let mut params = Self::h264_football_15fps(seed).params;
        params.name = "h264-25".into();
        params.fps = 25.0;
        Self::new(params).expect("built-in preset is valid")
    }

    /// Returns a copy of this model truncated/extended to `frames`
    /// frames (other parameters unchanged, sequence restarted).
    #[must_use]
    pub fn with_frames(&self, frames: u64) -> Self {
        let mut params = self.params.clone();
        params.frames = frames;
        Self::new(params).expect("only the frame count changed")
    }

    /// The model's parameters.
    #[must_use]
    pub fn params(&self) -> &VideoParams {
        &self.params
    }

    /// The coding class of the *next* iteration's first video-frame
    /// slot (before scene-change promotion).
    #[must_use]
    pub fn upcoming_class(&self) -> FrameClass {
        let slot = self.frame_index * self.params.frames_per_iteration as u64;
        self.params.gop[(slot % self.params.gop.len() as u64) as usize]
    }

    /// `true` if the next iteration's chunk contains an I-slot (after
    /// GOP alignment, ignoring scene-change promotions).
    #[must_use]
    pub fn upcoming_chunk_has_iframe(&self) -> bool {
        let start = self.frame_index * self.params.frames_per_iteration as u64;
        (0..self.params.frames_per_iteration as u64).any(|k| {
            self.params.gop[((start + k) % self.params.gop.len() as u64) as usize] == FrameClass::I
        })
    }
}

impl Application for VideoDecoderModel {
    fn name(&self) -> &str {
        &self.params.name
    }

    fn period(&self) -> SimTime {
        SimTime::from_secs_f64(1.0 / self.params.fps)
    }

    fn frames(&self) -> u64 {
        self.params.frames
    }

    fn next_frame(&mut self) -> FrameDemand {
        // Scene-change process: random cuts plus scripted ones, checked
        // once per iteration.
        let forced = self.params.forced_scene_frames.contains(&self.frame_index);
        let random_cut = self.rng.gen::<f64>() < self.params.scene_change_prob;
        if forced || random_cut {
            // A cut jumps motion to a fresh level and forces an I-frame
            // at the next slot. The new level is what defeats the EWMA —
            // it cannot be predicted from history. Scripted cuts land on
            // action (replays, close-ups: the high-motion band), so the
            // burst they exist to produce is guaranteed regardless of the
            // level the AR(1) process happens to be tracking; random cuts
            // draw from the full range.
            let level = if forced {
                1.15 + 0.2 * self.rng.gen::<f64>()
            } else {
                0.9 + 0.45 * self.rng.gen::<f64>()
            };
            self.motion.jump_to(level);
            self.pending_scene_iframe = true;
        }

        // Decode `frames_per_iteration` consecutive video-frame slots.
        let chunk = self.params.frames_per_iteration as u64;
        let gop_len = self.params.gop.len() as u64;
        let start_slot = self.frame_index * chunk;
        let mut complexity_sum = 0.0;
        for k in 0..chunk {
            let gop_class = self.params.gop[((start_slot + k) % gop_len) as usize];
            let class = if self.pending_scene_iframe {
                self.pending_scene_iframe = false;
                FrameClass::I
            } else {
                gop_class
            };
            let class_factor = match class {
                FrameClass::I => self.params.i_factor,
                FrameClass::P => 1.0,
                FrameClass::B => self.params.b_factor,
            };
            let motion = self.motion.step(&mut self.rng);
            complexity_sum += class_factor * motion;
        }
        let total = self.params.base_cycles.scale(complexity_sum);
        let mem = self
            .params
            .base_mem_time
            .scale(complexity_sum.min(1.3 * chunk as f64));

        // Slice-parallel split with mild imbalance.
        let n = self.params.threads;
        let mut weights: Vec<f64> = (0..n)
            .map(|_| (1.0 + self.params.thread_imbalance * gaussian(&mut self.rng)).max(0.3))
            .collect();
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        let threads = weights
            .iter()
            .map(|&w| ThreadDemand::new(total.scale(w), mem))
            .collect();

        self.frame_index += 1;
        FrameDemand::new(threads)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed);
        self.motion.reset();
        self.frame_index = 0;
        self.pending_scene_iframe = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_rates() {
        // fps round-trips through integer nanoseconds, so compare with a
        // tolerance.
        let close = |a: f64, b: f64| (a - b).abs() < 1e-5 * b;
        assert!(close(VideoDecoderModel::mpeg4_svga_24fps(0).fps(), 24.0));
        assert!(close(VideoDecoderModel::mpeg4_30fps(0).fps(), 30.0));
        assert!(close(VideoDecoderModel::h264_football_15fps(0).fps(), 15.0));
        assert!(close(VideoDecoderModel::h264_football_25fps(0).fps(), 25.0));
        assert_eq!(VideoDecoderModel::h264_football_15fps(0).frames(), 3_000);
    }

    #[test]
    fn iframe_chunks_cost_more_than_plain_chunks() {
        // Deterministic model: no motion noise, no imbalance, no cuts.
        let mut params = VideoDecoderModel::mpeg4_svga_24fps(1).params().clone();
        params.motion_sigma = 0.0;
        params.scene_change_prob = 0.0;
        params.forced_scene_frames.clear();
        params.thread_imbalance = 0.0;
        let mut app = VideoDecoderModel::new(params).unwrap();
        // GOP IBBPBBPBBPBB with 3-slot chunks: iteration 0 = IBB,
        // iterations 1-3 = PBB.
        assert!(app.upcoming_chunk_has_iframe());
        let ibb = app.next_frame().total_cycles().count();
        assert!(!app.upcoming_chunk_has_iframe());
        let pbb = app.next_frame().total_cycles().count();
        assert!(
            ibb > pbb,
            "chunk with the I-frame must cost more ({ibb} vs {pbb})"
        );
        // Per the class factors: IBB/PBB = 3.0/2.8.
        let ratio = ibb as f64 / pbb as f64;
        assert!((ratio - 3.0 / 2.8).abs() < 0.01, "ratio {ratio:.3}");
    }

    #[test]
    fn workload_has_substantial_variance() {
        let mut app = VideoDecoderModel::h264_football_15fps(3);
        let cycles: Vec<f64> = (0..500)
            .map(|_| app.next_frame().total_cycles().count() as f64)
            .collect();
        let mean = cycles.iter().sum::<f64>() / cycles.len() as f64;
        let var = cycles.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / cycles.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(
            cv > 0.08,
            "football video should vary noticeably (cv > 0.08), got {cv:.3}"
        );
        assert!(cv < 0.5, "variation should stay plausible, got {cv:.3}");
    }

    #[test]
    fn forced_scene_change_spikes_the_iteration() {
        // Compare the same seeded sequence with and without the cut: the
        // promoted I-slot must make the iteration visibly dearer than
        // its no-cut twin.
        let mut params = VideoDecoderModel::mpeg4_svga_24fps(5).params().clone();
        params.scene_change_prob = 0.0;
        params.thread_imbalance = 0.0;
        params.motion_sigma = 0.0;

        params.forced_scene_frames = vec![7];
        let mut with_cut = VideoDecoderModel::new(params.clone()).unwrap();
        params.forced_scene_frames = vec![];
        let mut without_cut = VideoDecoderModel::new(params).unwrap();

        let run = |app: &mut VideoDecoderModel| -> Vec<u64> {
            (0..12)
                .map(|_| app.next_frame().total_cycles().count())
                .collect()
        };
        let a = run(&mut with_cut);
        let b = run(&mut without_cut);
        assert_eq!(a[..7], b[..7], "identical before the cut");
        // The promoted I-slot alone adds 7% (class sum 3.0 vs 2.8) and
        // the motion jump lands in [0.9, 1.35].
        assert!(
            a[7] as f64 > 1.02 * b[7] as f64,
            "cut iteration should cost more: {} vs {}",
            a[7],
            b[7]
        );
    }

    #[test]
    fn reset_reproduces_sequence_exactly() {
        let mut app = VideoDecoderModel::h264_football_15fps(11);
        let first: Vec<FrameDemand> = (0..50).map(|_| app.next_frame()).collect();
        app.reset();
        let second: Vec<FrameDemand> = (0..50).map(|_| app.next_frame()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = VideoDecoderModel::h264_football_15fps(1);
        let mut b = VideoDecoderModel::h264_football_15fps(2);
        let fa: Vec<u64> = (0..20)
            .map(|_| a.next_frame().total_cycles().count())
            .collect();
        let fb: Vec<u64> = (0..20)
            .map(|_| b.next_frame().total_cycles().count())
            .collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn with_frames_overrides_length() {
        let app = VideoDecoderModel::mpeg4_svga_24fps(0).with_frames(120);
        assert_eq!(app.frames(), 120);
    }

    #[test]
    fn thread_split_conserves_total() {
        let mut app = VideoDecoderModel::mpeg4_svga_24fps(9);
        for _ in 0..20 {
            let f = app.next_frame();
            assert_eq!(f.thread_count(), 4);
            let total = f.total_cycles().count();
            let max = f.max_thread_cycles().count();
            // With 8 % imbalance no thread should carry more than half.
            assert!(max < total / 2 + total / 10, "extreme imbalance");
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        let good = VideoDecoderModel::mpeg4_svga_24fps(0).params().clone();
        for (mutate, _desc) in [
            (
                Box::new(|p: &mut VideoParams| p.gop.clear()) as Box<dyn Fn(&mut VideoParams)>,
                "empty gop",
            ),
            (Box::new(|p: &mut VideoParams| p.threads = 0), "no threads"),
            (Box::new(|p: &mut VideoParams| p.frames = 0), "no frames"),
            (Box::new(|p: &mut VideoParams| p.fps = 0.0), "zero fps"),
            (
                Box::new(|p: &mut VideoParams| p.scene_change_prob = 1.5),
                "bad prob",
            ),
            (Box::new(|p: &mut VideoParams| p.motion_phi = 1.0), "phi 1"),
            (
                Box::new(|p: &mut VideoParams| p.frames_per_iteration = 0),
                "zero chunk",
            ),
            (
                Box::new(|p: &mut VideoParams| p.base_cycles = Cycles::ZERO),
                "zero cycles",
            ),
        ] {
            let mut p = good.clone();
            mutate(&mut p);
            assert!(VideoDecoderModel::new(p).is_err());
        }
    }
}
