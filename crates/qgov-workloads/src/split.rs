//! Splitting one frame's demand across heterogeneous clusters.
//!
//! On a multi-cluster chip the chip-level coordinator owns a
//! *work-share* vector — the fraction of each frame's demand placed on
//! each cluster. [`split_demand_into`] turns one [`FrameDemand`] plus
//! that vector into per-cluster demands, allocation-free, conserving
//! the total cycle count exactly; [`capacity_shares`] seeds the vector
//! proportionally to each cluster's compute capacity (the natural
//! starting placement on heterogeneous cores).
//!
//! A placement that puts *everything* on one cluster is
//! thread-preserving: the demand is copied through unchanged, so a
//! 1-cluster topology (or a big-only/LITTLE-only static placement) sees
//! bit-for-bit the frames the single-cluster harness would.

use crate::FrameDemand;
use qgov_units::{Cycles, SimTime};

/// Normalises per-cluster capacities into work shares summing to 1
/// (uniform if all capacities are zero or negative).
///
/// # Panics
///
/// Panics if `out.len() != capacities.len()` or both are empty.
pub fn capacity_shares(capacities: &[f64], out: &mut [f64]) {
    assert_eq!(
        capacities.len(),
        out.len(),
        "one share slot per cluster capacity"
    );
    assert!(!capacities.is_empty(), "at least one cluster");
    let total: f64 = capacities
        .iter()
        .filter(|c| c.is_finite() && **c > 0.0)
        .sum();
    if total <= 0.0 {
        let uniform = 1.0 / out.len() as f64;
        out.fill(uniform);
        return;
    }
    for (slot, &capacity) in out.iter_mut().zip(capacities) {
        *slot = if capacity.is_finite() && capacity > 0.0 {
            capacity / total
        } else {
            0.0
        };
    }
}

/// Splits `demand` across clusters by `shares`: cluster `c` receives
/// `shares[c]` of the total CPU cycles spread evenly over its
/// `cores[c]` cores, with memory-stall time scaled by the same share.
/// Total cycles are conserved exactly (integer remainders land on the
/// last active cluster); clusters with a non-positive share receive an
/// empty demand.
///
/// When exactly one cluster holds the whole share, its demand is the
/// unsplit `demand` itself (thread-for-thread), which keeps single
/// cluster topologies and static one-cluster placements bit-identical
/// to the single-cluster harness.
///
/// # Panics
///
/// Panics if `shares`, `cores`, and `out` differ in length, the
/// topology is empty, or any active cluster has zero cores.
pub fn split_demand_into(
    demand: &FrameDemand,
    shares: &[f64],
    cores: &[usize],
    out: &mut [FrameDemand],
) {
    assert!(
        shares.len() == cores.len() && cores.len() == out.len(),
        "shares, cores, and output must be indexed by cluster"
    );
    assert!(!shares.is_empty(), "at least one cluster");

    let active = shares.iter().filter(|s| **s > 0.0).count();
    if active <= 1 {
        // Everything on one cluster (or nothing anywhere): pass the
        // demand through thread-for-thread.
        let target = shares.iter().position(|s| *s > 0.0).unwrap_or(0);
        for (cluster, slot) in out.iter_mut().enumerate() {
            if cluster == target {
                slot.copy_from(demand);
            } else {
                slot.threads.clear();
            }
        }
        return;
    }

    let share_sum: f64 = shares.iter().filter(|s| **s > 0.0).sum();
    let total = demand.total_cycles().count();
    let mem = demand
        .threads
        .iter()
        .map(|t| t.mem_time)
        .fold(SimTime::ZERO, SimTime::max);
    let last_active = shares
        .iter()
        .rposition(|s| *s > 0.0)
        .expect("active > 1 implies a positive share");

    let mut assigned = 0u64;
    for (cluster, slot) in out.iter_mut().enumerate() {
        let share = shares[cluster];
        if share <= 0.0 {
            slot.threads.clear();
            continue;
        }
        assert!(cores[cluster] > 0, "an active cluster needs cores");
        let cycles = if cluster == last_active {
            total - assigned
        } else {
            let exact = (total as f64 * (share / share_sum)).floor();
            (exact as u64).min(total - assigned)
        };
        assigned += cycles;
        slot.fill_split_evenly(
            Cycles::new(cycles),
            cores[cluster],
            mem.scale(share / share_sum),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadDemand;

    fn demand() -> FrameDemand {
        FrameDemand::new(vec![
            ThreadDemand::new(Cycles::new(40_000_003), SimTime::from_us(500)),
            ThreadDemand::new(Cycles::new(30_000_001), SimTime::from_us(400)),
            ThreadDemand::new(Cycles::new(20_000_000), SimTime::from_us(300)),
            ThreadDemand::new(Cycles::new(10_000_000), SimTime::from_us(200)),
        ])
    }

    #[test]
    fn capacity_shares_normalise() {
        let mut shares = [0.0; 2];
        capacity_shares(&[8e9, 5.6e9], &mut shares);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(shares[0] > shares[1]);

        capacity_shares(&[0.0, 0.0], &mut shares);
        assert_eq!(shares, [0.5, 0.5]);

        capacity_shares(&[1.0, f64::NAN], &mut shares);
        assert_eq!(shares, [1.0, 0.0]);
    }

    #[test]
    fn split_conserves_total_cycles() {
        let d = demand();
        let mut out = vec![FrameDemand::default(); 3];
        split_demand_into(&d, &[0.57, 0.13, 0.30], &[4, 2, 4], &mut out);
        let split_total: u64 = out.iter().map(|f| f.total_cycles().count()).sum();
        assert_eq!(split_total, d.total_cycles().count());
        assert_eq!(out[0].thread_count(), 4);
        assert_eq!(out[1].thread_count(), 2);
        // Shares order by magnitude.
        assert!(out[0].total_cycles() > out[2].total_cycles());
        assert!(out[2].total_cycles() > out[1].total_cycles());
        // Memory stall scales with the share.
        assert!(out[0].threads[0].mem_time > out[1].threads[0].mem_time);
    }

    #[test]
    fn single_active_share_is_thread_preserving() {
        let d = demand();
        let mut out = vec![FrameDemand::default(); 2];
        split_demand_into(&d, &[0.0, 1.0], &[4, 4], &mut out);
        assert_eq!(out[0].thread_count(), 0);
        assert_eq!(out[1], d);

        split_demand_into(&d, &[1.0, 0.0], &[4, 4], &mut out);
        assert_eq!(out[0], d);
        assert_eq!(out[1].thread_count(), 0);
    }

    #[test]
    fn all_zero_shares_default_to_cluster_zero() {
        let d = demand();
        let mut out = vec![FrameDemand::default(); 2];
        split_demand_into(&d, &[0.0, 0.0], &[4, 4], &mut out);
        assert_eq!(out[0], d);
        assert_eq!(out[1].thread_count(), 0);
    }

    #[test]
    fn splitting_is_allocation_stable() {
        // Re-splitting into the same slots must not lose or duplicate
        // cycles as shares drift (the migration path's invariant).
        let d = demand();
        let mut out = vec![FrameDemand::default(); 2];
        let mut shares = [0.6, 0.4];
        for _ in 0..100 {
            split_demand_into(&d, &shares, &[4, 4], &mut out);
            let total: u64 = out.iter().map(|f| f.total_cycles().count()).sum();
            assert_eq!(total, d.total_cycles().count());
            shares[0] -= 0.005;
            shares[1] += 0.005;
        }
    }
}
