//! A real radix-2 FFT kernel and the workload model built on it.
//!
//! The paper's FFT application "exhibits less workload variations
//! resulting in faster learning by the algorithm" (Section III-C). To
//! ground that workload in real computation rather than a synthetic
//! constant, this module implements an actual iterative radix-2
//! Cooley–Tukey FFT; the *counted butterfly operations* of the kernel
//! drive the cycle demands of [`FftModel`].

use crate::process::gaussian;
use crate::{Application, FrameDemand, WorkloadError};
use qgov_units::{Cycles, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A bare-bones complex number for the FFT kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Complex magnitude.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// Returns the number of butterfly operations performed
/// (`N/2 · log₂N`), which [`FftModel`] converts to cycle demands.
///
/// # Panics
///
/// Panics if the buffer length is not a power of two or is empty.
///
/// # Examples
///
/// ```
/// use qgov_workloads::{fft_radix2, Complex};
///
/// // The FFT of an impulse is flat.
/// let mut data = vec![Complex::ZERO; 8];
/// data[0] = Complex::new(1.0, 0.0);
/// let butterflies = fft_radix2(&mut data);
/// assert_eq!(butterflies, 12); // 8/2 * log2(8)
/// for bin in &data {
///     assert!((bin.abs() - 1.0).abs() < 1e-12);
/// }
/// ```
pub fn fft_radix2(data: &mut [Complex]) -> u64 {
    let n = data.len();
    assert!(
        n > 0 && n.is_power_of_two(),
        "FFT length must be a power of two"
    );
    if n == 1 {
        return 0;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly stages.
    let mut butterflies = 0u64;
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
                butterflies += 1;
            }
            i += len;
        }
        len <<= 1;
    }
    butterflies
}

/// An FFT streaming workload: each frame transforms one buffer of
/// samples, split across worker threads.
///
/// Cycle demand per frame is `butterflies × cycles_per_butterfly`, with
/// a small jitter representing cache effects — the near-constant profile
/// the paper reports (FFT needed the fewest explorations, Table II).
///
/// # Examples
///
/// ```
/// use qgov_workloads::{Application, FftModel};
///
/// let mut app = FftModel::fft_32fps(1);
/// assert_eq!(app.fps(), 32.0);
/// let f = app.next_frame();
/// assert_eq!(f.thread_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FftModel {
    name: String,
    fft_size: usize,
    butterflies: u64,
    cycles_per_butterfly: f64,
    jitter_cv: f64,
    fps: f64,
    frames: u64,
    threads: usize,
    mem_time: SimTime,
    seed: u64,
    rng: StdRng,
}

impl FftModel {
    /// Creates an FFT workload transforming `fft_size`-point buffers.
    ///
    /// The butterfly count is obtained by *running the kernel once* on a
    /// deterministic input, not from the closed-form formula, so the
    /// model stays truthful to the implementation.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if `fft_size` is not a
    /// power of two, or any count/rate is zero.
    #[allow(clippy::too_many_arguments)] // mirrors the preset's full parameter surface
    pub fn new(
        name: impl Into<String>,
        fft_size: usize,
        cycles_per_butterfly: f64,
        jitter_cv: f64,
        fps: f64,
        frames: u64,
        threads: usize,
        mem_time: SimTime,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        let fail = |reason: String| Err(WorkloadError::InvalidConfig { reason });
        if !fft_size.is_power_of_two() || fft_size < 2 {
            return fail(format!(
                "FFT size must be a power of two >= 2, got {fft_size}"
            ));
        }
        if !(cycles_per_butterfly.is_finite() && cycles_per_butterfly > 0.0) {
            return fail("cycles per butterfly must be positive".into());
        }
        if !(jitter_cv.is_finite() && (0.0..0.5).contains(&jitter_cv)) {
            return fail("jitter cv must lie in [0, 0.5)".into());
        }
        if !(fps.is_finite() && fps > 0.0) {
            return fail("fps must be positive".into());
        }
        if frames == 0 || threads == 0 {
            return fail("frames and threads must be non-zero".into());
        }

        // Measure the kernel once (on a small congruent buffer if the
        // requested size is large, then scale exactly: butterflies are
        // exactly N/2*log2(N), verified in tests).
        let measured = {
            let probe_n = fft_size.min(1 << 12);
            let mut buf: Vec<Complex> = (0..probe_n)
                .map(|i| Complex::new((i % 7) as f64, (i % 3) as f64))
                .collect();
            let measured_probe = fft_radix2(&mut buf);
            // Scale to the requested size via the exact structure of the
            // algorithm: butterflies(n) = n/2 * log2(n).
            let scale = |n: usize| (n as u64 / 2) * u64::from(n.trailing_zeros());
            measured_probe * scale(fft_size) / scale(probe_n)
        };

        Ok(FftModel {
            name: name.into(),
            fft_size,
            butterflies: measured,
            cycles_per_butterfly,
            jitter_cv,
            fps,
            frames,
            threads,
            mem_time,
            seed,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The paper's FFT workload at 32 fps: 2²⁰-point transforms on four
    /// threads (≈ 126 Mcycles/frame at 12 cycles per butterfly — a
    /// complex butterfly on an in-order A15 costs ~12 cycles including
    /// twiddle loads).
    #[must_use]
    pub fn fft_32fps(seed: u64) -> Self {
        Self::new(
            "fft",
            1 << 20,
            12.0,
            0.02,
            32.0,
            1_000,
            4,
            SimTime::from_ms(2),
            seed,
        )
        .expect("built-in preset is valid")
    }

    /// Transform size (points).
    #[must_use]
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// Butterflies per transform, as measured from the kernel.
    #[must_use]
    pub fn butterflies(&self) -> u64 {
        self.butterflies
    }
}

impl Application for FftModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> SimTime {
        SimTime::from_secs_f64(1.0 / self.fps)
    }

    fn frames(&self) -> u64 {
        self.frames
    }

    fn next_frame(&mut self) -> FrameDemand {
        let nominal = self.butterflies as f64 * self.cycles_per_butterfly;
        let jitter = 1.0 + self.jitter_cv * gaussian(&mut self.rng);
        let total = Cycles::new((nominal * jitter.max(0.5)) as u64);
        let mut frame = FrameDemand::split_evenly(total, self.threads, self.mem_time);
        // The final recombination stage is serial-ish: thread 0 carries a
        // small extra share.
        frame.threads[0].cpu_cycles += total.scale(0.03);
        frame
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) DFT for validating the FFT kernel.
    fn dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &x) in data.iter().enumerate() {
                    let ang = -std::f64::consts::TAU * (k * t) as f64 / n as f64;
                    acc = acc.add(x.mul(Complex::new(ang.cos(), ang.sin())));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 32] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let expect = dft(&data);
            let mut got = data.clone();
            fft_radix2(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!(
                    (g.re - e.re).abs() < 1e-9 && (g.im - e.im).abs() < 1e-9,
                    "FFT mismatch at n = {n}"
                );
            }
        }
    }

    #[test]
    fn fft_butterfly_count_is_exact() {
        for bits in 1..=10u32 {
            let n = 1usize << bits;
            let mut data = vec![Complex::new(1.0, 0.0); n];
            let count = fft_radix2(&mut data);
            assert_eq!(count, (n as u64 / 2) * u64::from(bits));
        }
    }

    #[test]
    fn fft_parseval_energy_is_conserved() {
        let n = 64;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        let time_energy: f64 = data.iter().map(|c| c.abs() * c.abs()).sum();
        let mut freq = data.clone();
        fft_radix2(&mut freq);
        let freq_energy: f64 = freq.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::ZERO; 6];
        let _ = fft_radix2(&mut data);
    }

    #[test]
    fn model_has_low_variance() {
        let mut app = FftModel::fft_32fps(5);
        let cycles: Vec<f64> = (0..300)
            .map(|_| app.next_frame().total_cycles().count() as f64)
            .collect();
        let mean = cycles.iter().sum::<f64>() / cycles.len() as f64;
        let var = cycles.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / cycles.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv < 0.05, "FFT should be near-constant, cv = {cv:.4}");
    }

    #[test]
    fn model_cycles_match_butterfly_budget() {
        let mut app = FftModel::fft_32fps(5);
        let expect = app.butterflies() as f64 * 12.0;
        let got = app.next_frame().total_cycles().count() as f64;
        // within jitter + serial share
        assert!(
            (got / expect - 1.0).abs() < 0.15,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn butterfly_scaling_matches_formula_for_large_sizes() {
        let app = FftModel::fft_32fps(0);
        let n = app.fft_size() as u64;
        assert_eq!(app.butterflies(), n / 2 * 20); // log2(2^20) = 20
    }

    #[test]
    fn reset_reproduces_sequence() {
        let mut app = FftModel::fft_32fps(9);
        let a: Vec<u64> = (0..10)
            .map(|_| app.next_frame().total_cycles().count())
            .collect();
        app.reset();
        let b: Vec<u64> = (0..10)
            .map(|_| app.next_frame().total_cycles().count())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(FftModel::new("x", 6, 9.0, 0.0, 30.0, 10, 4, SimTime::ZERO, 0).is_err());
        assert!(FftModel::new("x", 8, 0.0, 0.0, 30.0, 10, 4, SimTime::ZERO, 0).is_err());
        assert!(FftModel::new("x", 8, 9.0, 0.9, 30.0, 10, 4, SimTime::ZERO, 0).is_err());
        assert!(FftModel::new("x", 8, 9.0, 0.0, 0.0, 10, 4, SimTime::ZERO, 0).is_err());
        assert!(FftModel::new("x", 8, 9.0, 0.0, 30.0, 0, 4, SimTime::ZERO, 0).is_err());
    }
}
