//! Phase-structured parallel benchmark models.
//!
//! The paper's evaluation "tests various applications: … and the PARSEC
//! and SPLASH2 benchmarks" (Section III), each transformed to the
//! periodic frame structure. To a DVFS governor each benchmark is a
//! characteristic process of per-frame, per-thread cycle demands; the
//! presets here reproduce the documented qualitative profiles — uniform
//! data parallelism (blackscholes, swaptions), per-frame variability
//! (bodytrack), pipeline imbalance (ferret), memory-boundedness
//! (streamcluster, ocean), phase alternation (radix), and shrinking
//! parallel work (lu).

use crate::process::gaussian;
use crate::{Application, FrameDemand, ThreadDemand, WorkloadError};
use qgov_units::{Cycles, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One execution phase of a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// How many consecutive frames this phase lasts.
    pub frames: u64,
    /// Mean CPU cycles per thread per frame.
    pub cycles_per_thread: Cycles,
    /// Coefficient of variation of the per-frame demand.
    pub cv: f64,
    /// Frequency-invariant memory time per thread per frame.
    pub mem_time: SimTime,
    /// Relative per-thread load weights; empty means perfectly balanced.
    /// (`weights.len()` must equal the model's thread count otherwise.)
    pub weights: Vec<f64>,
}

impl Phase {
    /// A balanced phase.
    #[must_use]
    pub fn balanced(frames: u64, cycles_per_thread: Cycles, cv: f64, mem_time: SimTime) -> Self {
        Phase {
            frames,
            cycles_per_thread,
            cv,
            mem_time,
            weights: Vec::new(),
        }
    }
}

/// A benchmark that cycles through [`Phase`]s, emitting one frame per
/// decision epoch.
///
/// # Examples
///
/// ```
/// use qgov_workloads::{Application, suites};
///
/// let mut app = suites::bodytrack(3);
/// assert_eq!(app.name(), "bodytrack");
/// let f = app.next_frame();
/// assert_eq!(f.thread_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PhasedBenchmarkModel {
    name: String,
    period: SimTime,
    frames: u64,
    threads: usize,
    phases: Vec<Phase>,
    seed: u64,
    rng: StdRng,
    frame_index: u64,
}

impl PhasedBenchmarkModel {
    /// Creates a phased benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if there are no phases,
    /// any phase lasts zero frames, weights disagree with the thread
    /// count, or counts are zero.
    pub fn new(
        name: impl Into<String>,
        period: SimTime,
        frames: u64,
        threads: usize,
        phases: Vec<Phase>,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        let fail = |reason: String| Err(WorkloadError::InvalidConfig { reason });
        if phases.is_empty() {
            return fail("benchmark needs at least one phase".into());
        }
        if frames == 0 || threads == 0 {
            return fail("frames and threads must be non-zero".into());
        }
        if period.is_zero() {
            return fail("period must be non-zero".into());
        }
        for (i, phase) in phases.iter().enumerate() {
            if phase.frames == 0 {
                return fail(format!("phase {i} lasts zero frames"));
            }
            if !(phase.cv.is_finite() && (0.0..1.0).contains(&phase.cv)) {
                return fail(format!("phase {i} cv must lie in [0, 1)"));
            }
            if !phase.weights.is_empty() && phase.weights.len() != threads {
                return fail(format!(
                    "phase {i} has {} weights for {threads} threads",
                    phase.weights.len()
                ));
            }
            if phase.weights.iter().any(|&w| !(w.is_finite() && w > 0.0)) {
                return fail(format!("phase {i} has non-positive weights"));
            }
        }
        Ok(PhasedBenchmarkModel {
            name: name.into(),
            period,
            frames,
            threads,
            phases,
            seed,
            rng: StdRng::seed_from_u64(seed),
            frame_index: 0,
        })
    }

    /// The phase active at a given frame index (phases repeat
    /// cyclically).
    #[must_use]
    pub fn phase_at(&self, frame: u64) -> &Phase {
        let cycle_len: u64 = self.phases.iter().map(|p| p.frames).sum();
        let mut pos = frame % cycle_len;
        for phase in &self.phases {
            if pos < phase.frames {
                return phase;
            }
            pos -= phase.frames;
        }
        unreachable!("pos is within the cycle by construction")
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Application for PhasedBenchmarkModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn period(&self) -> SimTime {
        self.period
    }

    fn frames(&self) -> u64 {
        self.frames
    }

    fn next_frame(&mut self) -> FrameDemand {
        let phase = self.phase_at(self.frame_index).clone();
        let noise = 1.0 + phase.cv * gaussian(&mut self.rng);
        let base = phase.cycles_per_thread.scale(noise.max(0.2));
        let threads = (0..self.threads)
            .map(|t| {
                let w = phase.weights.get(t).copied().unwrap_or(1.0);
                ThreadDemand::new(base.scale(w), phase.mem_time)
            })
            .collect();
        self.frame_index += 1;
        FrameDemand::new(threads)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.frame_index = 0;
    }
}

const FRAME_33MS: SimTime = SimTime::from_ms(33);

/// PARSEC-like `blackscholes`: embarrassingly parallel option pricing,
/// near-uniform per-frame cost.
#[must_use]
pub fn blackscholes(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "blackscholes",
        FRAME_33MS,
        800,
        4,
        vec![Phase::balanced(
            1,
            Cycles::from_mcycles(22),
            0.03,
            SimTime::from_ms(1),
        )],
        seed,
    )
    .expect("preset is valid")
}

/// PARSEC-like `bodytrack`: vision pipeline with three markedly
/// different stages per tracking iteration and high per-frame variance.
#[must_use]
pub fn bodytrack(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "bodytrack",
        FRAME_33MS,
        900,
        4,
        vec![
            Phase::balanced(3, Cycles::from_mcycles(30), 0.25, SimTime::from_ms(3)),
            Phase::balanced(2, Cycles::from_mcycles(14), 0.2, SimTime::from_ms(2)),
            Phase::balanced(1, Cycles::from_mcycles(42), 0.3, SimTime::from_ms(4)),
        ],
        seed,
    )
    .expect("preset is valid")
}

/// PARSEC-like `ferret`: similarity-search pipeline; stages map to
/// threads with persistent imbalance.
#[must_use]
pub fn ferret(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "ferret",
        FRAME_33MS,
        800,
        4,
        vec![Phase {
            frames: 1,
            cycles_per_thread: Cycles::from_mcycles(20),
            cv: 0.12,
            mem_time: SimTime::from_ms(2),
            weights: vec![0.6, 1.4, 1.1, 0.9],
        }],
        seed,
    )
    .expect("preset is valid")
}

/// PARSEC-like `fluidanimate`: particle simulation alternating collision
/// and advection phases.
#[must_use]
pub fn fluidanimate(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "fluidanimate",
        FRAME_33MS,
        800,
        4,
        vec![
            Phase::balanced(2, Cycles::from_mcycles(26), 0.08, SimTime::from_ms(3)),
            Phase::balanced(1, Cycles::from_mcycles(16), 0.08, SimTime::from_ms(2)),
        ],
        seed,
    )
    .expect("preset is valid")
}

/// PARSEC-like `streamcluster`: online clustering, strongly
/// memory-bound (large invariant stall component).
#[must_use]
pub fn streamcluster(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "streamcluster",
        FRAME_33MS,
        800,
        4,
        vec![Phase::balanced(
            1,
            Cycles::from_mcycles(12),
            0.15,
            SimTime::from_ms(9),
        )],
        seed,
    )
    .expect("preset is valid")
}

/// PARSEC-like `swaptions`: Monte-Carlo pricing, CPU-bound and uniform.
#[must_use]
pub fn swaptions(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "swaptions",
        FRAME_33MS,
        800,
        4,
        vec![Phase::balanced(
            1,
            Cycles::from_mcycles(28),
            0.02,
            SimTime::from_us(500),
        )],
        seed,
    )
    .expect("preset is valid")
}

/// SPLASH-2-like `barnes`: N-body tree code with irregular per-step
/// cost.
#[must_use]
pub fn barnes(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "barnes",
        FRAME_33MS,
        800,
        4,
        vec![
            Phase::balanced(4, Cycles::from_mcycles(24), 0.3, SimTime::from_ms(2)),
            Phase::balanced(1, Cycles::from_mcycles(38), 0.2, SimTime::from_ms(3)),
        ],
        seed,
    )
    .expect("preset is valid")
}

/// SPLASH-2-like `ocean`: grid solver dominated by memory traffic.
#[must_use]
pub fn ocean(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "ocean",
        FRAME_33MS,
        800,
        4,
        vec![Phase::balanced(
            1,
            Cycles::from_mcycles(14),
            0.1,
            SimTime::from_ms(8),
        )],
        seed,
    )
    .expect("preset is valid")
}

/// SPLASH-2-like `radix`: sort alternating histogram and permutation
/// phases of very different intensity.
#[must_use]
pub fn radix(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "radix",
        FRAME_33MS,
        800,
        4,
        vec![
            Phase::balanced(2, Cycles::from_mcycles(32), 0.05, SimTime::from_ms(1)),
            Phase::balanced(2, Cycles::from_mcycles(10), 0.05, SimTime::from_ms(6)),
        ],
        seed,
    )
    .expect("preset is valid")
}

/// SPLASH-2-like `lu`: blocked dense factorisation; the trailing
/// submatrix (and with it the parallel work) shrinks over the run.
#[must_use]
pub fn lu(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "lu",
        FRAME_33MS,
        800,
        4,
        vec![
            Phase::balanced(200, Cycles::from_mcycles(36), 0.06, SimTime::from_ms(2)),
            Phase::balanced(200, Cycles::from_mcycles(26), 0.06, SimTime::from_ms(2)),
            Phase::balanced(200, Cycles::from_mcycles(16), 0.06, SimTime::from_ms(1)),
            Phase::balanced(200, Cycles::from_mcycles(8), 0.06, SimTime::from_ms(1)),
        ],
        seed,
    )
    .expect("preset is valid")
}

/// SPLASH-2-like `fft`: the suite's six-step FFT, regular and slightly
/// memory-bound (distinct from the paper's standalone FFT application).
#[must_use]
pub fn splash_fft(seed: u64) -> PhasedBenchmarkModel {
    PhasedBenchmarkModel::new(
        "splash-fft",
        FRAME_33MS,
        800,
        4,
        vec![Phase::balanced(
            1,
            Cycles::from_mcycles(20),
            0.04,
            SimTime::from_ms(4),
        )],
        seed,
    )
    .expect("preset is valid")
}

/// All PARSEC-like presets.
#[must_use]
pub fn all_parsec(seed: u64) -> Vec<PhasedBenchmarkModel> {
    vec![
        blackscholes(seed),
        bodytrack(seed.wrapping_add(1)),
        ferret(seed.wrapping_add(2)),
        fluidanimate(seed.wrapping_add(3)),
        streamcluster(seed.wrapping_add(4)),
        swaptions(seed.wrapping_add(5)),
    ]
}

/// All SPLASH-2-like presets.
#[must_use]
pub fn all_splash2(seed: u64) -> Vec<PhasedBenchmarkModel> {
    vec![
        barnes(seed),
        ocean(seed.wrapping_add(1)),
        radix(seed.wrapping_add(2)),
        lu(seed.wrapping_add(3)),
        splash_fft(seed.wrapping_add(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_emit_valid_frames() {
        let mut apps: Vec<PhasedBenchmarkModel> = all_parsec(1);
        apps.extend(all_splash2(2));
        assert_eq!(apps.len(), 11);
        for app in &mut apps {
            for _ in 0..20 {
                let f = app.next_frame();
                assert_eq!(f.thread_count(), 4, "{}", app.name());
                assert!(f.total_cycles().count() > 0, "{}", app.name());
            }
        }
    }

    #[test]
    fn swaptions_is_uniform_bodytrack_is_not() {
        let cv = |app: &mut PhasedBenchmarkModel| {
            let xs: Vec<f64> = (0..400)
                .map(|_| app.next_frame().total_cycles().count() as f64)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            var.sqrt() / mean
        };
        assert!(cv(&mut swaptions(3)) < 0.05);
        assert!(cv(&mut bodytrack(3)) > 0.2);
    }

    #[test]
    fn ferret_threads_are_persistently_imbalanced() {
        let mut app = ferret(5);
        let mut thread_sums = [0u64; 4];
        for _ in 0..200 {
            let f = app.next_frame();
            for (t, d) in f.threads.iter().enumerate() {
                thread_sums[t] += d.cpu_cycles.count();
            }
        }
        // Stage 1 (weight 1.4) must dominate stage 0 (weight 0.6).
        assert!(thread_sums[1] > 2 * thread_sums[0]);
    }

    #[test]
    fn streamcluster_is_memory_bound() {
        let mut app = streamcluster(7);
        let f = app.next_frame();
        // Memory time (9 ms) exceeds CPU time even at 2 GHz (12 Mc -> 6 ms).
        assert!(f.threads[0].mem_time >= SimTime::from_ms(9));
    }

    #[test]
    fn lu_work_shrinks_over_the_run() {
        let mut app = lu(9);
        let early: u64 = (0..50)
            .map(|_| app.next_frame().total_cycles().count())
            .sum();
        for _ in 50..600 {
            app.next_frame();
        }
        let late: u64 = (0..50)
            .map(|_| app.next_frame().total_cycles().count())
            .sum();
        assert!(
            early > 2 * late,
            "lu must shrink: early {early}, late {late}"
        );
    }

    #[test]
    fn phases_repeat_cyclically() {
        let app = radix(0);
        // radix: 2 heavy + 2 light frames per cycle.
        let heavy = app.phase_at(0).cycles_per_thread;
        assert_eq!(app.phase_at(1).cycles_per_thread, heavy);
        let light = app.phase_at(2).cycles_per_thread;
        assert!(light < heavy);
        assert_eq!(app.phase_at(4).cycles_per_thread, heavy); // wrapped
    }

    #[test]
    fn reset_reproduces_sequence() {
        let mut app = bodytrack(11);
        let a: Vec<u64> = (0..30)
            .map(|_| app.next_frame().total_cycles().count())
            .collect();
        app.reset();
        let b: Vec<u64> = (0..30)
            .map(|_| app.next_frame().total_cycles().count())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_configs_rejected() {
        let p = |frames| Phase::balanced(frames, Cycles::from_mcycles(1), 0.1, SimTime::ZERO);
        assert!(
            PhasedBenchmarkModel::new("x", FRAME_33MS, 10, 4, vec![], 0).is_err(),
            "no phases"
        );
        assert!(
            PhasedBenchmarkModel::new("x", FRAME_33MS, 10, 4, vec![p(0)], 0).is_err(),
            "zero-length phase"
        );
        assert!(
            PhasedBenchmarkModel::new("x", FRAME_33MS, 0, 4, vec![p(1)], 0).is_err(),
            "zero frames"
        );
        assert!(
            PhasedBenchmarkModel::new("x", SimTime::ZERO, 10, 4, vec![p(1)], 0).is_err(),
            "zero period"
        );
        let bad_weights = Phase {
            weights: vec![1.0, 2.0],
            ..p(1)
        };
        assert!(
            PhasedBenchmarkModel::new("x", FRAME_33MS, 10, 4, vec![bad_weights], 0).is_err(),
            "weight count mismatch"
        );
    }
}
