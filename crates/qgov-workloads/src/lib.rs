//! Frame-based application workload models.
//!
//! The paper evaluates its RTM on real applications — MPEG4/H.264 video
//! decoding of a ~3000-frame football sequence, an FFT kernel, and the
//! PARSEC / SPLASH-2 suites — each "transformed to a periodic structure"
//! of frames with deadlines (Section III). What a DVFS governor actually
//! observes from an application is its *per-frame cycle-demand process*;
//! this crate provides seeded stochastic models reproducing the
//! statistics of those applications, plus record/replay traces so the
//! Oracle baseline can pre-characterise a run offline.
//!
//! * [`Application`] — the trait all workload models implement: a
//!   periodic frame source with a deadline (`T_ref = 1/fps`);
//! * [`VideoDecoderModel`] — GOP-structured video decoding with I/P/B
//!   frame classes, AR(1) motion intensity and Markov scene changes
//!   (presets: [`VideoDecoderModel::mpeg4_svga_24fps`],
//!   [`VideoDecoderModel::h264_football_15fps`], ...);
//! * [`FftModel`] — a *real* radix-2 FFT kernel whose counted butterfly
//!   operations drive the cycle demands (near-constant workload, as the
//!   paper observes);
//! * [`PhasedBenchmarkModel`] — phase-structured parallel benchmarks
//!   with PARSEC-like and SPLASH-2-like presets (see [`suites`]);
//! * [`SyntheticWorkload`] — constant/ramp/square/sine + noise patterns
//!   for targeted tests and ablations;
//! * [`WorkloadTrace`] — record/replay with CSV round-trip;
//! * [`ShardedTrace`] / [`ShardWriter`] — the streaming counterpart:
//!   record and replay in bounded-memory CSV shards on disk, for
//!   long-horizon experiments whose traces must never materialise in
//!   memory (see [`shard`]).
//!
//! # Example
//!
//! ```
//! use qgov_workloads::{Application, VideoDecoderModel};
//!
//! let mut app = VideoDecoderModel::h264_football_15fps(42);
//! assert!((app.fps() - 15.0).abs() < 1e-4);
//! let frame = app.next_frame();
//! assert!(!frame.threads.is_empty());
//! assert!(frame.total_cycles().count() > 0);
//! ```
//!
//! # Streaming example: record → shard to CSV → stream-replay
//!
//! A recording streamed through [`ShardedTrace`] replays bit-identically
//! to the in-memory [`WorkloadTrace`] while holding at most one shard
//! of frames resident:
//!
//! ```
//! use qgov_workloads::{Application, ShardedTrace, VideoDecoderModel, WorkloadTrace};
//!
//! let dir = std::env::temp_dir().join(format!("qgov-stream-doc-{}", std::process::id()));
//! let mut app = VideoDecoderModel::mpeg4_svga_24fps(7).with_frames(90);
//!
//! // Record 90 frames into CSV shards of 25 frames (4 shards on disk)...
//! let mut streamed = ShardedTrace::record(&mut app, &dir, 90, 25).unwrap();
//! assert_eq!(streamed.shard_count(), 4);
//!
//! // ...and stream-replay: frame-for-frame equal to the in-memory trace.
//! let mut whole = WorkloadTrace::record(&mut app);
//! for _ in 0..90 {
//!     assert_eq!(streamed.next_frame(), whole.next_frame());
//! }
//! assert!(streamed.resident_frames() <= 25);
//!
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod composite;
mod error;
mod fft;
mod frame;
mod parsec;
mod process;
pub mod shard;
mod split;
mod synthetic;
mod trace;
mod video;

pub mod suites {
    //! Preset PARSEC-like and SPLASH-2-like benchmark workloads.
    pub use crate::parsec::{
        all_parsec, all_splash2, barnes, blackscholes, bodytrack, ferret, fluidanimate, lu, ocean,
        radix, splash_fft, streamcluster, swaptions,
    };
}

pub use app::Application;
pub use composite::CompositeWorkload;
pub use error::WorkloadError;
pub use fft::{fft_radix2, Complex, FftModel};
pub use frame::{FrameDemand, ThreadDemand};
pub use parsec::{Phase, PhasedBenchmarkModel};
pub use process::{Ar1Process, MarkovChain};
pub use shard::{ScratchDir, ShardWriter, ShardedTrace, TraceShard};
pub use split::{capacity_shares, split_demand_into};
pub use synthetic::SyntheticWorkload;
pub use trace::WorkloadTrace;
pub use video::{FrameClass, VideoDecoderModel, VideoParams};
