//! Per-frame work demands.

use qgov_units::{Cycles, SimTime};

/// The work one thread must perform within one frame.
///
/// Structurally mirrors the simulator's `WorkSlice`: a
/// frequency-scalable CPU component plus a frequency-invariant memory
/// component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThreadDemand {
    /// CPU-bound cycles to retire.
    pub cpu_cycles: Cycles,
    /// Memory/IO stall time that does not scale with core frequency.
    pub mem_time: SimTime,
}

impl ThreadDemand {
    /// Creates a demand with both components.
    #[must_use]
    pub const fn new(cpu_cycles: Cycles, mem_time: SimTime) -> Self {
        ThreadDemand {
            cpu_cycles,
            mem_time,
        }
    }

    /// A purely CPU-bound demand.
    #[must_use]
    pub const fn cpu_only(cpu_cycles: Cycles) -> Self {
        ThreadDemand {
            cpu_cycles,
            mem_time: SimTime::ZERO,
        }
    }
}

/// The work demand of one application frame: one entry per spawned
/// thread ("at each iteration, multiple threads are spawned with each
/// thread performing a task on the input data", Section III).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrameDemand {
    /// Per-thread demands; thread `i` is scheduled on core `i`.
    pub threads: Vec<ThreadDemand>,
}

impl FrameDemand {
    /// Creates a frame demand from per-thread demands.
    #[must_use]
    pub fn new(threads: Vec<ThreadDemand>) -> Self {
        FrameDemand { threads }
    }

    /// A frame spreading `total` cycles evenly over `threads` threads
    /// (remainder cycles go to thread 0).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn split_evenly(total: Cycles, threads: usize, mem_time: SimTime) -> Self {
        assert!(threads > 0, "a frame needs at least one thread");
        let per = total.count() / threads as u64;
        let rem = total.count() % threads as u64;
        let demands = (0..threads)
            .map(|i| {
                let c = if i == 0 { per + rem } else { per };
                ThreadDemand::new(Cycles::new(c), mem_time)
            })
            .collect();
        FrameDemand { threads: demands }
    }

    /// Refills this demand with `total` cycles spread evenly over
    /// `threads` threads (remainder cycles go to thread 0) — the
    /// in-place form of [`FrameDemand::split_evenly`], reusing the
    /// existing `threads` allocation so a per-frame generator can run
    /// heap-free. Produces exactly the same demand as `split_evenly`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn fill_split_evenly(&mut self, total: Cycles, threads: usize, mem_time: SimTime) {
        assert!(threads > 0, "a frame needs at least one thread");
        let per = total.count() / threads as u64;
        let rem = total.count() % threads as u64;
        self.threads.clear();
        self.threads.extend((0..threads).map(|i| {
            let c = if i == 0 { per + rem } else { per };
            ThreadDemand::new(Cycles::new(c), mem_time)
        }));
    }

    /// Refills this demand from another's threads in place (reusing the
    /// existing allocation — the replay hot path's `clone_from`).
    pub fn copy_from(&mut self, source: &FrameDemand) {
        self.threads.clear();
        self.threads.extend_from_slice(&source.threads);
    }

    /// Number of threads this frame spawns.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Total CPU cycles across all threads — the frame's `CC` workload
    /// measure.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        self.threads.iter().map(|t| t.cpu_cycles).sum()
    }

    /// The largest single-thread demand (the barrier's critical path).
    #[must_use]
    pub fn max_thread_cycles(&self) -> Cycles {
        self.threads
            .iter()
            .map(|t| t.cpu_cycles)
            .max()
            .unwrap_or(Cycles::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_evenly_conserves_cycles() {
        let f = FrameDemand::split_evenly(Cycles::new(103), 4, SimTime::ZERO);
        assert_eq!(f.thread_count(), 4);
        assert_eq!(f.total_cycles(), Cycles::new(103));
        // Remainder on thread 0.
        assert_eq!(f.threads[0].cpu_cycles, Cycles::new(28));
        assert_eq!(f.threads[1].cpu_cycles, Cycles::new(25));
    }

    #[test]
    fn fill_split_evenly_matches_split_evenly_and_reuses_capacity() {
        let mut out = FrameDemand::default();
        for (total, threads) in [(103u64, 4usize), (7, 7), (1_000_003, 3), (5, 1)] {
            out.fill_split_evenly(Cycles::new(total), threads, SimTime::from_us(10));
            let fresh =
                FrameDemand::split_evenly(Cycles::new(total), threads, SimTime::from_us(10));
            assert_eq!(out, fresh);
        }
    }

    #[test]
    fn copy_from_matches_clone() {
        let source = FrameDemand::split_evenly(Cycles::new(99), 3, SimTime::from_us(5));
        let mut out = FrameDemand::split_evenly(Cycles::new(7), 6, SimTime::ZERO);
        out.copy_from(&source);
        assert_eq!(out, source);
    }

    #[test]
    fn max_thread_cycles_finds_critical_path() {
        let f = FrameDemand::new(vec![
            ThreadDemand::cpu_only(Cycles::new(10)),
            ThreadDemand::cpu_only(Cycles::new(99)),
            ThreadDemand::cpu_only(Cycles::new(5)),
        ]);
        assert_eq!(f.max_thread_cycles(), Cycles::new(99));
    }

    #[test]
    fn empty_frame_is_all_zero() {
        let f = FrameDemand::default();
        assert_eq!(f.thread_count(), 0);
        assert_eq!(f.total_cycles(), Cycles::ZERO);
        assert_eq!(f.max_thread_cycles(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = FrameDemand::split_evenly(Cycles::new(10), 0, SimTime::ZERO);
    }
}
