//! Streaming edge cases and the replay-equality contract of the
//! sharded trace layer.
//!
//! The load-bearing property: for any recorded application,
//! [`ShardedTrace`] replay is **frame-for-frame identical** to
//! [`WorkloadTrace`] replay — across shard boundaries, across the
//! wrap-around, after resets at arbitrary cursor positions — while
//! never holding more than one shard of frames resident. The edge
//! cases (truncated final shard, header-only shard file, corrupted
//! geometry) are pinned alongside.

use proptest::prelude::*;
use qgov_units::{Cycles, SimTime};
use qgov_workloads::shard::{shard_file_name, ScratchDir, MANIFEST_FILE};
use qgov_workloads::{
    Application, FftModel, ShardedTrace, SyntheticWorkload, VideoDecoderModel, WorkloadError,
    WorkloadTrace,
};

/// A unique scratch directory per test case, removed on drop.
fn test_dir(tag: &str) -> ScratchDir {
    ScratchDir::unique(&format!("qgov-shard-it-{tag}"))
}

/// Builds one of the library's applications from a compact selector
/// (mirrors `workload_properties.rs`).
fn make_app(kind: u8, seed: u64) -> Box<dyn Application> {
    match kind % 4 {
        0 => Box::new(VideoDecoderModel::mpeg4_svga_24fps(seed).with_frames(60)),
        1 => Box::new(VideoDecoderModel::h264_football_15fps(seed).with_frames(60)),
        2 => Box::new(FftModel::fft_32fps(seed)),
        _ => Box::new(
            SyntheticWorkload::constant(
                "c",
                Cycles::from_mcycles(10),
                SimTime::from_ms(40),
                60,
                4,
                seed,
            )
            .with_noise(0.2),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streamed replay equals in-memory replay frame-for-frame, for
    /// any model, seed, shard size and horizon — including one full
    /// wrap-around past the end.
    #[test]
    fn sharded_replay_equals_in_memory_replay(
        kind in 0u8..4,
        seed in 0u64..200,
        frames in 1u64..80,
        frames_per_shard in 1usize..20,
    ) {
        let dir = test_dir("prop");
        let mut app = make_app(kind, seed);
        let mut streamed =
            ShardedTrace::record(app.as_mut(), dir.path(), frames, frames_per_shard).unwrap();

        // The in-memory reference over the same horizon:
        // WorkloadTrace::record() uses app.frames(), so capture the
        // same `frames`-frame sequence into a WorkloadTrace directly.
        app.reset();
        let reference: Vec<_> = (0..frames).map(|_| app.next_frame()).collect();
        let mut whole = WorkloadTrace::from_frames(streamed.name(), streamed.period(), reference);

        // Two full passes: WorkloadTrace and ShardedTrace replay —
        // including the wrap-around — must agree frame-for-frame.
        for pass in 0..2u64 {
            for i in 0..frames {
                let got = streamed.next_frame();
                prop_assert_eq!(
                    got, whole.next_frame(),
                    "pass {} frame {} diverged", pass, i
                );
                prop_assert!(streamed.resident_frames() <= frames_per_shard);
            }
        }
        prop_assert_eq!(streamed.len(), frames);
        prop_assert_eq!(
            streamed.shard_count() as u64,
            frames.div_ceil(frames_per_shard as u64)
        );
    }

    /// reset() at an arbitrary cursor position — mid-shard, on a shard
    /// boundary, past a wrap — always rewinds to the identical
    /// sequence (the shard-boundary cursor-resume contract).
    #[test]
    fn reset_resumes_identically_from_any_cursor(
        seed in 0u64..100,
        frames in 2u64..50,
        frames_per_shard in 1usize..12,
        advance in 0u64..120,
    ) {
        let dir = test_dir("resume");
        let mut app = make_app(3, seed);
        let mut streamed =
            ShardedTrace::record(app.as_mut(), dir.path(), frames, frames_per_shard).unwrap();

        let head: Vec<_> = (0..frames.min(10)).map(|_| streamed.next_frame()).collect();
        streamed.reset();
        for _ in 0..advance {
            streamed.next_frame();
        }
        streamed.reset();
        for (i, expected) in head.iter().enumerate() {
            prop_assert_eq!(&streamed.next_frame(), expected, "frame {} after reset", i);
        }
    }
}

#[test]
fn truncated_final_shard_round_trips() {
    // 50 frames in shards of 16: three full shards + a 2-frame tail.
    let dir = test_dir("tail");
    let mut app = VideoDecoderModel::mpeg4_svga_24fps(5).with_frames(50);
    let mut streamed = ShardedTrace::record(&mut app, dir.path(), 50, 16).unwrap();
    assert_eq!(streamed.shard_count(), 4);
    assert_eq!(streamed.load_shard(3).unwrap().len(), 2);

    let mut whole = WorkloadTrace::record(&mut app);
    for i in 0..100 {
        assert_eq!(streamed.next_frame(), whole.next_frame(), "frame {i}");
    }
    // The wrap from the short tail shard back to shard 0 kept the
    // resident set bounded.
    assert!(streamed.resident_frames() <= 16);
}

#[test]
fn truncated_shard_file_is_rejected_at_load() {
    let dir = test_dir("truncated-file");
    let mut app = VideoDecoderModel::mpeg4_svga_24fps(5).with_frames(30);
    let streamed = ShardedTrace::record(&mut app, dir.path(), 30, 10).unwrap();

    // Chop the last frame's rows off shard 1: its header still
    // declares 10 frames, so the CSV parser itself rejects it.
    let path = dir.path().join(shard_file_name(1));
    let text = std::fs::read_to_string(&path).unwrap();
    let truncated: Vec<&str> = text.lines().filter(|l| !l.starts_with("9,")).collect();
    std::fs::write(&path, truncated.join("\n")).unwrap();
    assert!(matches!(
        streamed.load_shard(1),
        Err(WorkloadError::ParseTraceError { .. })
    ));

    // A shard that parses but disagrees with the manifest geometry —
    // rewrite shard 1 as a valid 3-frame document — is rejected by the
    // geometry check instead.
    let mut short = VideoDecoderModel::mpeg4_svga_24fps(5).with_frames(3);
    let replacement = WorkloadTrace::record(&mut short);
    std::fs::write(&path, replacement.to_csv()).unwrap();
    let err = streamed.load_shard(1).unwrap_err();
    assert!(
        err.to_string().contains("truncated or padded"),
        "unexpected error: {err}"
    );
}

#[test]
fn header_only_shard_file_is_rejected() {
    let dir = test_dir("header-only");
    let mut app = VideoDecoderModel::mpeg4_svga_24fps(7).with_frames(20);
    let streamed = ShardedTrace::record(&mut app, dir.path(), 20, 8).unwrap();

    // A header-only CSV: metadata + column header, zero data rows.
    let path = dir.path().join(shard_file_name(0));
    std::fs::write(
        &path,
        "# name=mpeg4 period_ns=41666666 frames=8\nframe,thread,cpu_cycles,mem_ns\n",
    )
    .unwrap();
    assert!(matches!(
        streamed.load_shard(0),
        Err(WorkloadError::ParseTraceError { .. })
    ));
}

#[test]
fn header_only_manifest_is_rejected() {
    let dir = test_dir("empty-manifest");
    std::fs::create_dir_all(dir.path()).unwrap();
    std::fs::write(dir.path().join(MANIFEST_FILE), "").unwrap();
    assert!(matches!(
        ShardedTrace::open(dir.path()),
        Err(WorkloadError::ParseTraceError { .. })
    ));
}

#[test]
fn shard_boundary_cursor_positions_are_exact() {
    // Deterministic boundary walk: frames 0..=11 with shard size 4;
    // check the frames straddling every boundary (3→4, 7→8, 11→0).
    let dir = test_dir("boundary");
    let mut app = SyntheticWorkload::constant(
        "ramp",
        Cycles::from_mcycles(20),
        SimTime::from_ms(40),
        12,
        2,
        9,
    )
    .with_noise(0.3);
    let mut streamed = ShardedTrace::record(&mut app, dir.path(), 12, 4).unwrap();
    let whole = WorkloadTrace::record(&mut app);
    let demands = whole.frame_demands();

    for _ in 0..3 {
        streamed.next_frame();
    }
    let loads_before = streamed.shard_loads();
    assert_eq!(streamed.next_frame(), demands[3], "last frame of shard 0");
    assert_eq!(streamed.next_frame(), demands[4], "first frame of shard 1");
    assert_eq!(
        streamed.shard_loads(),
        loads_before + 1,
        "crossing one boundary loads exactly one shard"
    );
    for demand in &demands[5..12] {
        assert_eq!(&streamed.next_frame(), demand);
    }
    // Wrap-around boundary: 11 → 0.
    assert_eq!(streamed.next_frame(), demands[0]);
}

#[test]
fn bounded_memory_over_a_long_streamed_horizon() {
    // 20k frames in 256-frame shards: a horizon whose full frame vector
    // would hold 20 000 × 4 thread demands, streamed with ≤ 256 frames
    // resident at any instant.
    let dir = test_dir("long");
    let mut app = VideoDecoderModel::h264_football_15fps(3).with_frames(20_000);
    let mut streamed = ShardedTrace::record(&mut app, dir.path(), 20_000, 256).unwrap();
    assert_eq!(streamed.shard_count(), 79);

    let mut max_resident = 0;
    let mut total_cycles = 0u64;
    for _ in 0..20_000 {
        total_cycles += streamed.next_frame().total_cycles().count();
        max_resident = max_resident.max(streamed.resident_frames());
    }
    assert!(max_resident <= 256, "resident {max_resident} frames");
    assert_eq!(streamed.shard_loads(), 79, "one load per shard per pass");
    assert!(total_cycles > 0);
}
