//! Property-based tests on the workload models: invariants every
//! application implementation must uphold.

use proptest::prelude::*;
use qgov_units::{Cycles, SimTime};
use qgov_workloads::{
    suites, Application, FftModel, FrameDemand, SyntheticWorkload, ThreadDemand, VideoDecoderModel,
    WorkloadTrace,
};

/// Builds one of the library's applications from a compact selector.
fn make_app(kind: u8, seed: u64) -> Box<dyn Application> {
    match kind % 8 {
        0 => Box::new(VideoDecoderModel::mpeg4_svga_24fps(seed).with_frames(40)),
        1 => Box::new(VideoDecoderModel::h264_football_15fps(seed).with_frames(40)),
        2 => Box::new(FftModel::fft_32fps(seed)),
        3 => Box::new(suites::blackscholes(seed)),
        4 => Box::new(suites::bodytrack(seed)),
        5 => Box::new(suites::ocean(seed)),
        6 => Box::new(suites::lu(seed)),
        _ => Box::new(
            SyntheticWorkload::constant(
                "c",
                Cycles::from_mcycles(10),
                SimTime::from_ms(40),
                40,
                4,
                seed,
            )
            .with_noise(0.2),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every application produces frames with positive work, consistent
    /// thread counts, and a positive period.
    #[test]
    fn applications_emit_wellformed_frames(kind in 0u8..8, seed in 0u64..500) {
        let mut app = make_app(kind, seed);
        prop_assert!(!app.period().is_zero());
        prop_assert!(app.frames() > 0);
        let first = app.next_frame();
        let threads = first.thread_count();
        prop_assert!(threads > 0);
        for _ in 0..20 {
            let f = app.next_frame();
            prop_assert_eq!(f.thread_count(), threads, "thread count must be stable");
            prop_assert!(f.total_cycles().count() > 0, "frames must carry work");
        }
    }

    /// reset() rewinds to an identical sequence for every model.
    #[test]
    fn reset_is_a_true_rewind(kind in 0u8..8, seed in 0u64..500) {
        let mut app = make_app(kind, seed);
        let a: Vec<FrameDemand> = (0..15).map(|_| app.next_frame()).collect();
        app.reset();
        let b: Vec<FrameDemand> = (0..15).map(|_| app.next_frame()).collect();
        prop_assert_eq!(a, b);
    }

    /// Two instances with the same seed emit identical sequences; with
    /// different seeds the stochastic models diverge.
    #[test]
    fn seeding_controls_the_sequence(kind in 0u8..8, seed in 0u64..500) {
        let mut a = make_app(kind, seed);
        let mut b = make_app(kind, seed);
        for _ in 0..10 {
            prop_assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    /// Traces replay exactly what they recorded, and survive the CSV
    /// round trip bit-exactly, for every model.
    #[test]
    fn trace_roundtrip_for_all_models(kind in 0u8..8, seed in 0u64..200) {
        let mut app = make_app(kind, seed);
        let mut trace = WorkloadTrace::record(app.as_mut());
        app.reset();
        for _ in 0..trace.frames().min(25) {
            prop_assert_eq!(trace.next_frame(), app.next_frame());
        }
        let back = WorkloadTrace::from_csv(&trace.to_csv()).unwrap();
        prop_assert_eq!(&back, &{ trace });
    }

    /// Arbitrary hand-built frame demands survive the CSV round trip.
    #[test]
    fn csv_roundtrip_arbitrary_demands(
        frames in proptest::collection::vec(
            proptest::collection::vec((0u64..u64::MAX / 2, 0u64..1_000_000_000), 1..6),
            1..20,
        ),
        period_ns in 1u64..10_000_000_000,
    ) {
        let demands: Vec<FrameDemand> = frames
            .iter()
            .map(|threads| {
                FrameDemand::new(
                    threads
                        .iter()
                        .map(|&(c, m)| ThreadDemand::new(Cycles::new(c), SimTime::from_ns(m)))
                        .collect(),
                )
            })
            .collect();
        let trace = WorkloadTrace::from_frames("prop", SimTime::from_ns(period_ns), demands);
        let back = WorkloadTrace::from_csv(&trace.to_csv()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// split_evenly conserves total cycles for any inputs.
    #[test]
    fn split_evenly_conserves(total in 0u64..u64::MAX / 2, threads in 1usize..64) {
        let f = FrameDemand::split_evenly(Cycles::new(total), threads, SimTime::ZERO);
        prop_assert_eq!(f.total_cycles().count(), total);
        prop_assert_eq!(f.thread_count(), threads);
    }
}

/// Cross-model statistics: the paper's workload-variability ordering
/// (video varies, FFT does not) holds for any seed.
#[test]
fn variability_ordering_holds_across_seeds() {
    for seed in [1u64, 17, 99] {
        let cv = |app: &mut dyn Application, n: usize| -> f64 {
            let xs: Vec<f64> = (0..n)
                .map(|_| app.next_frame().total_cycles().count() as f64)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            var.sqrt() / mean
        };
        let mut video = VideoDecoderModel::h264_football_15fps(seed);
        let mut fft = FftModel::fft_32fps(seed);
        let video_cv = cv(&mut video, 400);
        let fft_cv = cv(&mut fft, 400);
        assert!(
            video_cv > 2.0 * fft_cv,
            "seed {seed}: video (cv {video_cv:.3}) must vary far more than FFT (cv {fft_cv:.3})"
        );
    }
}
