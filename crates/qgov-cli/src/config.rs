//! Campaign configuration: the `[campaign]` TOML table, its canonical
//! rendering, and the config fingerprint the journal binds to.
//!
//! A campaign is fully described by (family, seeds, frames, fleet,
//! monitors) — everything [`CampaignConfig::worklist`] needs to
//! re-derive the exact cell set — plus two knobs that never affect
//! results: the worker count (cells are bit-identical under any
//! scheduling) and the snapshot cadence. [`CampaignConfig::canonical`]
//! renders the config deterministically; its FNV-1a hash
//! ([`CampaignConfig::fingerprint`]) is stamped into the journal
//! header so a journal can never be replayed against a different
//! campaign definition.

use crate::minitoml::{Document, ParseError};
use qgov_bench::worklist::{Family, WorkList};
use qgov_bench::RunnerConfig;
use qgov_metrics::PackConfig;
use std::fmt;
use std::path::Path;

/// Which temporal-property pack rides along `long_horizon` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorChoice {
    /// No monitors.
    Off,
    /// [`PackConfig::paper`] — full-length thresholds.
    Paper,
    /// [`PackConfig::short_run`] — smoke-length thresholds.
    Short,
}

impl MonitorChoice {
    /// The stable config-file name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MonitorChoice::Off => "off",
            MonitorChoice::Paper => "paper",
            MonitorChoice::Short => "short",
        }
    }

    /// Parses a config-file name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<MonitorChoice> {
        match name.trim().to_ascii_lowercase().as_str() {
            "off" => Some(MonitorChoice::Off),
            "paper" => Some(MonitorChoice::Paper),
            "short" | "short_run" => Some(MonitorChoice::Short),
            _ => None,
        }
    }

    /// The pack this choice selects, if any.
    #[must_use]
    pub fn pack(self) -> Option<PackConfig> {
        match self {
            MonitorChoice::Off => None,
            MonitorChoice::Paper => Some(PackConfig::paper()),
            MonitorChoice::Short => Some(PackConfig::short_run()),
        }
    }
}

/// A rejected campaign config, with enough context to fix the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// What went wrong (line-numbered when the TOML layer caught it).
    pub message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid campaign config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

impl From<ParseError> for ConfigError {
    fn from(e: ParseError) -> Self {
        ConfigError::new(e.to_string())
    }
}

/// One experiment campaign: the `[campaign]` table of a config file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Campaign name (journal-safe: `[A-Za-z0-9._-]`, ≤ 64 chars).
    pub name: String,
    /// The experiment family every cell runs.
    pub family: Family,
    /// The campaign seeds — one cell per seed, duplicates rejected.
    pub seeds: Vec<u64>,
    /// Frame horizon per cell.
    pub frames: u64,
    /// Campaign-level worker count: `None` = parallel auto, `Some(0)`
    /// = serial, `Some(n)` = `n` workers. Never affects results.
    pub workers: Option<usize>,
    /// Instances per cell for the `fleet` family (must stay 1
    /// elsewhere).
    pub fleet: usize,
    /// Monitor pack for `long_horizon` (must stay `off` elsewhere).
    pub monitors: MonitorChoice,
    /// Journal appends between snapshots.
    pub snapshot_every: u64,
}

impl CampaignConfig {
    /// Parses and validates a campaign config.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on malformed TOML, a missing or
    /// unknown key, an out-of-range value, or a combination the
    /// work-list layer cannot honour (duplicate seeds, `fleet > 1`
    /// outside the fleet family, monitors outside `long_horizon`).
    pub fn from_toml_str(text: &str) -> Result<CampaignConfig, ConfigError> {
        let doc = Document::parse(text)?;
        const KNOWN: &[&str] = &[
            "name",
            "family",
            "seeds",
            "frames",
            "workers",
            "fleet",
            "monitors",
            "snapshot_every",
        ];
        for entry in doc.entries() {
            if entry.section != "campaign" {
                return Err(ConfigError::new(format!(
                    "line {}: unknown section [{}] (only [campaign] is recognised)",
                    entry.line, entry.section
                )));
            }
            if !KNOWN.contains(&entry.key.as_str()) {
                return Err(ConfigError::new(format!(
                    "line {}: unknown key {:?} in [campaign] (known keys: {})",
                    entry.line,
                    entry.key,
                    KNOWN.join(", ")
                )));
            }
        }

        let family_text = require_str(&doc, "family")?;
        let family = Family::parse(&family_text).ok_or_else(|| {
            ConfigError::new(format!(
                "unknown family {:?} (one of: {})",
                family_text,
                Family::ALL
                    .iter()
                    .map(|f| f.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;

        let seeds_value = doc
            .get("campaign", "seeds")
            .ok_or_else(|| ConfigError::new("missing required key `seeds`"))?;
        let seeds_array = seeds_value.as_array().ok_or_else(|| {
            ConfigError::new(format!(
                "`seeds` must be an array of integers, got {}",
                seeds_value.type_name()
            ))
        })?;
        let mut seeds = Vec::with_capacity(seeds_array.len());
        for item in seeds_array {
            let n = item.as_integer().ok_or_else(|| {
                ConfigError::new(format!(
                    "`seeds` elements must be integers, got {}",
                    item.type_name()
                ))
            })?;
            let seed =
                u64::try_from(n).map_err(|_| ConfigError::new(format!("seed {n} is negative")))?;
            if seeds.contains(&seed) {
                return Err(ConfigError::new(format!(
                    "duplicate seed {seed} (each seed is one campaign cell; duplicates would collide on one journal ID)"
                )));
            }
            seeds.push(seed);
        }
        if seeds.is_empty() {
            return Err(ConfigError::new("`seeds` must name at least one seed"));
        }

        let frames = require_u64(&doc, "frames")?;
        if frames == 0 {
            return Err(ConfigError::new("`frames` must be at least 1"));
        }

        let name = match doc.get("campaign", "name") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| {
                    ConfigError::new(format!("`name` must be a string, got {}", v.type_name()))
                })?
                .to_owned(),
            None => family.name().to_owned(),
        };
        if name.is_empty()
            || name.len() > 64
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(ConfigError::new(format!(
                "`name` {name:?} must be 1–64 chars of [A-Za-z0-9._-]"
            )));
        }

        let workers = match doc.get("campaign", "workers") {
            None => None,
            Some(v) => {
                let n = v.as_integer().ok_or_else(|| {
                    ConfigError::new(format!(
                        "`workers` must be an integer (0 = serial), got {}",
                        v.type_name()
                    ))
                })?;
                let n = usize::try_from(n)
                    .map_err(|_| ConfigError::new(format!("`workers` {n} is negative")))?;
                Some(n)
            }
        };

        let fleet = match optional_u64(&doc, "fleet")? {
            None => 1,
            Some(0) => return Err(ConfigError::new("`fleet` must be at least 1")),
            Some(n) => usize::try_from(n)
                .map_err(|_| ConfigError::new(format!("`fleet` {n} is out of range")))?,
        };
        if fleet > 1 && family != Family::Fleet {
            return Err(ConfigError::new(format!(
                "`fleet = {fleet}` only applies to `family = \"fleet\"` (got {family})"
            )));
        }

        let monitors = match doc.get("campaign", "monitors") {
            None => MonitorChoice::Off,
            Some(v) => {
                let text = v.as_str().ok_or_else(|| {
                    ConfigError::new(format!(
                        "`monitors` must be a string (off/paper/short), got {}",
                        v.type_name()
                    ))
                })?;
                MonitorChoice::parse(text).ok_or_else(|| {
                    ConfigError::new(format!(
                        "unknown monitors pack {text:?} (one of: off, paper, short)"
                    ))
                })?
            }
        };
        if monitors != MonitorChoice::Off && family != Family::LongHorizon {
            return Err(ConfigError::new(format!(
                "`monitors = \"{}\"` only applies to `family = \"long_horizon\"` (got {family})",
                monitors.name()
            )));
        }

        let snapshot_every = match optional_u64(&doc, "snapshot_every")? {
            None => 4,
            Some(0) => return Err(ConfigError::new("`snapshot_every` must be at least 1")),
            Some(n) => n,
        };

        Ok(CampaignConfig {
            name,
            family,
            seeds,
            frames,
            workers,
            fleet,
            monitors,
            snapshot_every,
        })
    }

    /// Reads and parses a campaign config file.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the file is unreadable or
    /// invalid (see [`CampaignConfig::from_toml_str`]).
    pub fn from_file(path: &Path) -> Result<CampaignConfig, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::new(format!("cannot read {}: {e}", path.display())))?;
        CampaignConfig::from_toml_str(&text)
            .map_err(|e| ConfigError::new(format!("{}: {}", path.display(), e.message)))
    }

    /// The canonical rendering: key order, spacing and quoting are
    /// fixed, so equal configs render byte-identically. This is what
    /// `sweep` writes into the state dir and what the fingerprint
    /// hashes; it re-parses to an equal config.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        out.push_str("[campaign]\n");
        out.push_str(&format!("name = \"{}\"\n", self.name));
        out.push_str(&format!("family = \"{}\"\n", self.family.name()));
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        out.push_str(&format!("seeds = [{}]\n", seeds.join(", ")));
        out.push_str(&format!("frames = {}\n", self.frames));
        if let Some(workers) = self.workers {
            out.push_str(&format!("workers = {workers}\n"));
        }
        out.push_str(&format!("fleet = {}\n", self.fleet));
        out.push_str(&format!("monitors = \"{}\"\n", self.monitors.name()));
        out.push_str(&format!("snapshot_every = {}\n", self.snapshot_every));
        out
    }

    /// FNV-1a 64 over [`CampaignConfig::canonical`] — the identity the
    /// journal header pins, so a journal can only ever be resumed
    /// against the config that produced it.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in self.canonical().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }

    /// The campaign's enumerated cells.
    #[must_use]
    pub fn worklist(&self) -> WorkList {
        let mut list = WorkList::new(self.family, self.seeds.clone(), self.frames);
        if self.family == Family::Fleet {
            list = list.with_fleet(self.fleet);
        }
        if let Some(pack) = self.monitors.pack() {
            list = list.with_monitor_pack(pack);
        }
        list
    }

    /// The campaign-level execution policy ([`CampaignConfig::workers`]).
    #[must_use]
    pub fn runner(&self) -> RunnerConfig {
        match self.workers {
            None => RunnerConfig::parallel(),
            Some(0) => RunnerConfig::serial(),
            Some(n) => RunnerConfig::with_workers(n),
        }
    }
}

fn require_str(doc: &Document, key: &str) -> Result<String, ConfigError> {
    let value = doc
        .get("campaign", key)
        .ok_or_else(|| ConfigError::new(format!("missing required key `{key}`")))?;
    value.as_str().map(str::to_owned).ok_or_else(|| {
        ConfigError::new(format!(
            "`{key}` must be a string, got {}",
            value.type_name()
        ))
    })
}

fn require_u64(doc: &Document, key: &str) -> Result<u64, ConfigError> {
    optional_u64(doc, key)?.ok_or_else(|| ConfigError::new(format!("missing required key `{key}`")))
}

fn optional_u64(doc: &Document, key: &str) -> Result<Option<u64>, ConfigError> {
    match doc.get("campaign", key) {
        None => Ok(None),
        Some(v) => {
            let n = v.as_integer().ok_or_else(|| {
                ConfigError::new(format!("`{key}` must be an integer, got {}", v.type_name()))
            })?;
            u64::try_from(n)
                .map(Some)
                .map_err(|_| ConfigError::new(format!("`{key}` {n} is negative")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "[campaign]\nfamily = \"table3\"\nseeds = [1, 2]\nframes = 120\n";

    #[test]
    fn minimal_config_fills_defaults() {
        let config = CampaignConfig::from_toml_str(MINIMAL).unwrap();
        assert_eq!(config.name, "table3");
        assert_eq!(config.family, Family::Table3);
        assert_eq!(config.seeds, [1, 2]);
        assert_eq!(config.frames, 120);
        assert_eq!(config.workers, None);
        assert_eq!(config.fleet, 1);
        assert_eq!(config.monitors, MonitorChoice::Off);
        assert_eq!(config.snapshot_every, 4);
    }

    #[test]
    fn canonical_round_trips_and_fingerprint_is_stable() {
        let config = CampaignConfig::from_toml_str(
            "[campaign]\nname = \"demo\"\nfamily = \"fleet\"\nseeds = [3, 1]\n\
             frames = 100\nworkers = 2\nfleet = 4\nsnapshot_every = 2\n",
        )
        .unwrap();
        let reparsed = CampaignConfig::from_toml_str(&config.canonical()).unwrap();
        assert_eq!(config, reparsed);
        assert_eq!(config.fingerprint(), reparsed.fingerprint());
        // Different seeds ⇒ different fingerprint.
        let mut other = config.clone();
        other.seeds = vec![3, 2];
        assert_ne!(config.fingerprint(), other.fingerprint());
    }

    #[test]
    fn rejects_bad_configs_with_diagnostics() {
        let cases: &[(&str, &str)] = &[
            ("", "missing required key `family`"),
            (
                "[campaign]\nfamily = \"warp\"\nseeds = [1]\nframes = 9\n",
                "unknown family",
            ),
            (
                "[campaign]\nfamily = \"table1\"\nframes = 9\n",
                "missing required key `seeds`",
            ),
            (
                "[campaign]\nfamily = \"table1\"\nseeds = []\nframes = 9\n",
                "at least one seed",
            ),
            (
                "[campaign]\nfamily = \"table1\"\nseeds = [1, 1]\nframes = 9\n",
                "duplicate seed",
            ),
            (
                "[campaign]\nfamily = \"table1\"\nseeds = [-4]\nframes = 9\n",
                "negative",
            ),
            (
                "[campaign]\nfamily = \"table1\"\nseeds = [1]\nframes = 0\n",
                "at least 1",
            ),
            (
                "[campaign]\nfamily = \"table1\"\nseeds = [1]\nframes = 9\nfleet = 2\n",
                "only applies",
            ),
            (
                "[campaign]\nfamily = \"table1\"\nseeds = [1]\nframes = 9\nmonitors = \"paper\"\n",
                "only applies",
            ),
            (
                "[campaign]\nfamily = \"table1\"\nseeds = [1]\nframes = 9\nbogus = 1\n",
                "unknown key",
            ),
            ("[extra]\nx = 1\n", "unknown section"),
            (
                "[campaign]\nname = \"has space\"\nfamily = \"table1\"\nseeds = [1]\nframes = 9\n",
                "A-Za-z0-9",
            ),
        ];
        for (text, needle) in cases {
            let err = CampaignConfig::from_toml_str(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "config {text:?}: expected {needle:?} in {:?}",
                err.message
            );
        }
    }

    #[test]
    fn monitors_select_their_pack() {
        let config = CampaignConfig::from_toml_str(
            "[campaign]\nfamily = \"long_horizon\"\nseeds = [1]\nframes = 4000\nmonitors = \"short\"\n",
        )
        .unwrap();
        assert!(config.worklist().pack().is_some());
        assert_eq!(
            MonitorChoice::parse("SHORT_RUN"),
            Some(MonitorChoice::Short)
        );
        assert_eq!(MonitorChoice::parse("none"), None);
    }

    #[test]
    fn runner_maps_workers_to_policy() {
        let mut config = CampaignConfig::from_toml_str(MINIMAL).unwrap();
        assert_eq!(config.runner(), RunnerConfig::parallel());
        config.workers = Some(0);
        assert_eq!(config.runner(), RunnerConfig::serial());
        config.workers = Some(3);
        assert_eq!(config.runner(), RunnerConfig::with_workers(3));
    }
}
