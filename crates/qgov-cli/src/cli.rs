//! The `qgov` command-line interface: argument parsing, subcommand
//! dispatch, and the exit-code contract.
//!
//! | exit code | meaning |
//! |---|---|
//! | 0 | success |
//! | [`EXIT_USAGE`] (2) | unknown subcommand / flag / missing argument |
//! | [`EXIT_CONFIG`] (3) | campaign config rejected (bad TOML, bad values) |
//! | [`EXIT_STATE`] (4) | state dir / journal / snapshot / runtime I-O rejected |
//! | [`EXIT_REGRESSION`] (5) | `report --against` found metrics beyond the tolerance |
//!
//! Campaign reports go to **stdout** and are byte-stable (the
//! kill/resume oracle diffs them); progress and warnings go to stderr.

use crate::campaign::{self, CampaignError};
use crate::config::{CampaignConfig, MonitorChoice};
use qgov_bench::harness::run_experiment;
use qgov_bench::perf::append_records_to;
use qgov_bench::worklist::{Family, WorkList};
use qgov_bench::RunnerConfig;
use qgov_core::{RtmConfig, RtmGovernor};
use qgov_governors::{ConservativeGovernor, OndemandGovernor};
use qgov_sim::PlatformConfig;
use qgov_workloads::{Application, ShardedTrace, VideoDecoderModel};
use std::path::{Path, PathBuf};

/// Success.
pub const EXIT_OK: i32 = 0;
/// Usage error: unknown subcommand/flag, missing/unparseable argument.
pub const EXIT_USAGE: i32 = 2;
/// Config error: the campaign TOML was rejected.
pub const EXIT_CONFIG: i32 = 3;
/// State error: state dir, journal, snapshot or runtime I/O rejected.
pub const EXIT_STATE: i32 = 4;
/// Regression: `report --against` found journaled metrics deviating
/// beyond `--tolerance` from the baseline campaign.
pub const EXIT_REGRESSION: i32 = 5;

const USAGE: &str = "\
qgov — operator CLI for journaled, kill-and-resume experiment campaigns

USAGE:
    qgov sweep --state <dir> [--dry-run] [--workers <n>] <config.toml>
    qgov resume [--workers <n>] <state-dir>
    qgov report [--bench-json <path>] [--against <state-dir> [--tolerance <fraction>]] <state-dir>
    qgov run --family <family> --seed <n> --frames <n> [--fleet <n>] [--monitors <pack>]
    qgov record --out <dir> --frames <n> [--seed <n>] [--shard-frames <n>]
    qgov replay --trace <dir> --governor <ondemand|conservative|rtm> [--frames <n>] [--seed <n>]
    qgov help

Campaigns: `sweep` initialises a state dir (campaign.toml + journal)
and runs every cell; kill it at any point and `resume` continues from
the last durable cell, with `report` output byte-identical to a run
that was never killed; `report --against` diffs the journaled metrics
of two campaigns cell by cell and exits 5 when any shared metric
deviates beyond --tolerance (default 0: bit-identity). Families:
table1, table2, table3, fig3, state_levels, smoothing, shared_table,
long_horizon, fleet, biglittle, mesh_scaling, fault_storm.";

/// Runs the CLI on `args` (without the executable name) and returns
/// the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        None | Some("help" | "--help" | "-h") => {
            println!("{USAGE}");
            EXIT_OK
        }
        Some("sweep") => cmd_sweep(args.collect()),
        Some("resume") => cmd_resume(args.collect()),
        Some("report") => cmd_report(args.collect()),
        Some("run") => cmd_run(args.collect()),
        Some("record") => cmd_record(args.collect()),
        Some("replay") => cmd_replay(args.collect()),
        Some(other) => usage_error(&format!("unknown subcommand {other:?}")),
    }
}

fn usage_error(message: &str) -> i32 {
    eprintln!("error: {message}\n\n{USAGE}");
    EXIT_USAGE
}

fn campaign_exit(e: &CampaignError) -> i32 {
    eprintln!("error: {e}");
    match e {
        CampaignError::Config(_) => EXIT_CONFIG,
        _ => EXIT_STATE,
    }
}

/// A minimal flag parser: `--flag value` options, `--switch` booleans,
/// and positional arguments.
struct Flags<'a> {
    options: Vec<(&'a str, &'a str)>,
    switches: Vec<&'a str>,
    positional: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    fn parse(
        args: &[&'a str],
        option_names: &[&str],
        switch_names: &[&str],
    ) -> Result<Flags<'a>, String> {
        let mut flags = Flags {
            options: Vec::new(),
            switches: Vec::new(),
            positional: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(&arg) = iter.next() {
            if switch_names.contains(&arg) {
                flags.switches.push(arg);
            } else if option_names.contains(&arg) {
                let Some(&value) = iter.next() else {
                    return Err(format!("{arg} needs a value"));
                };
                flags.options.push((arg, value));
            } else if arg.starts_with('-') {
                return Err(format!("unknown flag {arg:?}"));
            } else {
                flags.positional.push(arg);
            }
        }
        Ok(flags)
    }

    fn option(&self, name: &str) -> Option<&'a str> {
        self.options
            .iter()
            .find(|(flag, _)| *flag == name)
            .map(|&(_, value)| value)
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    fn parsed_option<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.option(name) {
            None => Ok(None),
            Some(text) => text
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} value {text:?} is not valid")),
        }
    }
}

/// The campaign runner: the config's policy unless `--workers`
/// overrides it (the override never changes results, only wall-clock,
/// so it does not touch the state dir or fingerprint).
fn campaign_runner(flags: &Flags<'_>, config: &CampaignConfig) -> Result<RunnerConfig, String> {
    match flags.parsed_option::<usize>("--workers")? {
        None => Ok(config.runner()),
        Some(0) => Ok(RunnerConfig::serial()),
        Some(n) => Ok(RunnerConfig::with_workers(n)),
    }
}

fn cmd_sweep(args: Vec<&str>) -> i32 {
    let flags = match Flags::parse(&args, &["--state", "--workers"], &["--dry-run"]) {
        Ok(flags) => flags,
        Err(message) => return usage_error(&message),
    };
    let [config_path] = flags.positional[..] else {
        return usage_error("sweep needs exactly one <config.toml> argument");
    };
    let dry_run = flags.switch("--dry-run");
    let state = flags.option("--state");
    if state.is_none() && !dry_run {
        return usage_error("sweep needs --state <dir> (or --dry-run)");
    }

    let config = match CampaignConfig::from_file(Path::new(config_path)) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_CONFIG;
        }
    };
    let worklist = config.worklist();
    println!(
        "campaign {}: {} cells (fingerprint {:016x})",
        config.name,
        worklist.len(),
        config.fingerprint()
    );
    if dry_run {
        for cell in worklist.cells() {
            println!("{}", cell.id);
        }
        return EXIT_OK;
    }
    let dir = Path::new(state.expect("checked above"));
    let runner = match campaign_runner(&flags, &config) {
        Ok(runner) => runner,
        Err(message) => return usage_error(&message),
    };
    if let Err(e) = campaign::init(dir, &config) {
        return campaign_exit(&e);
    }
    eprintln!("state dir: {} ({})", dir.display(), runner.describe());
    run_cells(dir, &config, &runner)
}

fn cmd_resume(args: Vec<&str>) -> i32 {
    let flags = match Flags::parse(&args, &["--workers"], &[]) {
        Ok(flags) => flags,
        Err(message) => return usage_error(&message),
    };
    let [dir] = flags.positional[..] else {
        return usage_error("resume needs exactly one <state-dir> argument");
    };
    let dir = Path::new(dir);
    let config = match campaign::load(dir) {
        Ok(config) => config,
        Err(e) => return campaign_exit(&e),
    };
    let runner = match campaign_runner(&flags, &config) {
        Ok(runner) => runner,
        Err(message) => return usage_error(&message),
    };
    eprintln!(
        "resuming campaign {} in {} ({})",
        config.name,
        dir.display(),
        runner.describe()
    );
    run_cells(dir, &config, &runner)
}

fn run_cells(dir: &Path, config: &CampaignConfig, runner: &RunnerConfig) -> i32 {
    match campaign::run(dir, config, runner) {
        Ok(summary) => {
            eprintln!(
                "campaign complete: {} ran, {} already journaled, {} total",
                summary.ran, summary.skipped, summary.total
            );
            EXIT_OK
        }
        Err(e) => campaign_exit(&e),
    }
}

fn cmd_report(args: Vec<&str>) -> i32 {
    let flags = match Flags::parse(&args, &["--bench-json", "--against", "--tolerance"], &[]) {
        Ok(flags) => flags,
        Err(message) => return usage_error(&message),
    };
    let [dir] = flags.positional[..] else {
        return usage_error("report needs exactly one <state-dir> argument");
    };
    let tolerance = match flags.parsed_option::<f64>("--tolerance") {
        Ok(None) => 0.0,
        Ok(Some(t)) if t.is_finite() && t >= 0.0 => t,
        Ok(Some(_)) => return usage_error("--tolerance must be a finite fraction >= 0"),
        Err(message) => return usage_error(&message),
    };
    if flags.option("--tolerance").is_some() && flags.option("--against").is_none() {
        return usage_error("--tolerance needs --against <state-dir>");
    }
    let dir = Path::new(dir);
    let config = match campaign::load(dir) {
        Ok(config) => config,
        Err(e) => return campaign_exit(&e),
    };
    let report = match campaign::render_report(dir, &config) {
        Ok(report) => report,
        Err(e) => return campaign_exit(&e),
    };
    print!("{report}");
    if let Some(path) = flags.option("--bench-json") {
        let records = match campaign::bench_records(dir, &config) {
            Ok(records) => records,
            Err(e) => return campaign_exit(&e),
        };
        if let Err(e) = append_records_to(Path::new(path), &records) {
            eprintln!("error: cannot append bench records to {path}: {e}");
            return EXIT_STATE;
        }
        eprintln!("appended {} bench record(s) to {path}", records.len());
    }
    if let Some(against) = flags.option("--against") {
        let diff = match campaign::diff_against(dir, &config, Path::new(against), tolerance) {
            Ok(diff) => diff,
            Err(e) => return campaign_exit(&e),
        };
        print!("{}", diff.text);
        if diff.regressions > 0 {
            eprintln!(
                "error: {} metric(s) beyond tolerance {tolerance}",
                diff.regressions
            );
            return EXIT_REGRESSION;
        }
    }
    EXIT_OK
}

fn cmd_run(args: Vec<&str>) -> i32 {
    let flags = match Flags::parse(
        &args,
        &["--family", "--seed", "--frames", "--fleet", "--monitors"],
        &[],
    ) {
        Ok(flags) => flags,
        Err(message) => return usage_error(&message),
    };
    if !flags.positional.is_empty() {
        return usage_error("run takes no positional arguments");
    }
    let Some(family_text) = flags.option("--family") else {
        return usage_error("run needs --family <family>");
    };
    let Some(family) = Family::parse(family_text) else {
        return usage_error(&format!("unknown family {family_text:?}"));
    };
    let (seed, frames) = match (
        flags.parsed_option::<u64>("--seed"),
        flags.parsed_option::<u64>("--frames"),
    ) {
        (Ok(seed), Ok(Some(frames))) if frames > 0 => (seed.unwrap_or(1), frames),
        (Ok(_), Ok(_)) => return usage_error("run needs --frames <n> (at least 1)"),
        (Err(message), _) | (_, Err(message)) => return usage_error(&message),
    };
    let mut list = WorkList::new(family, vec![seed], frames);
    match flags.parsed_option::<usize>("--fleet") {
        Ok(None) => {}
        Ok(Some(n)) if n >= 1 && family == Family::Fleet => list = list.with_fleet(n),
        Ok(Some(_)) => return usage_error("--fleet needs family `fleet` and at least 1 instance"),
        Err(message) => return usage_error(&message),
    }
    match flags.option("--monitors").map(MonitorChoice::parse) {
        None | Some(Some(MonitorChoice::Off)) => {}
        Some(Some(choice)) if family == Family::LongHorizon => {
            list = list.with_monitor_pack(choice.pack().expect("non-off choice"));
        }
        Some(Some(_)) => return usage_error("--monitors needs family `long_horizon`"),
        Some(None) => return usage_error("--monitors must be off, paper or short"),
    }
    let cell = &list.cells()[0];
    println!("cell {}", cell.id);
    for (name, value) in list.run_cell(cell) {
        println!("{name} = {value}");
    }
    EXIT_OK
}

fn cmd_record(args: Vec<&str>) -> i32 {
    let flags = match Flags::parse(
        &args,
        &["--out", "--frames", "--seed", "--shard-frames"],
        &[],
    ) {
        Ok(flags) => flags,
        Err(message) => return usage_error(&message),
    };
    let Some(out) = flags.option("--out") else {
        return usage_error("record needs --out <dir>");
    };
    let frames = match flags.parsed_option::<u64>("--frames") {
        Ok(Some(frames)) if frames > 0 => frames,
        Ok(_) => return usage_error("record needs --frames <n> (at least 1)"),
        Err(message) => return usage_error(&message),
    };
    let seed = match flags.parsed_option::<u64>("--seed") {
        Ok(seed) => seed.unwrap_or(1),
        Err(message) => return usage_error(&message),
    };
    let shard_frames = match flags.parsed_option::<usize>("--shard-frames") {
        Ok(Some(n)) if n > 0 => n,
        Ok(Some(_)) => return usage_error("--shard-frames must be at least 1"),
        Ok(None) => qgov_bench::experiments::long_horizon_shard_frames(frames),
        Err(message) => return usage_error(&message),
    };
    let mut app = VideoDecoderModel::h264_football_15fps(seed).with_frames(frames);
    match ShardedTrace::record(&mut app, PathBuf::from(out), frames, shard_frames) {
        Ok(trace) => {
            println!(
                "recorded {} frames of {} (seed {seed}) into {out} ({} shards of {} frames)",
                trace.len(),
                app.name(),
                trace.shard_count(),
                trace.frames_per_shard()
            );
            EXIT_OK
        }
        Err(e) => {
            eprintln!("error: cannot record trace into {out}: {e}");
            EXIT_STATE
        }
    }
}

fn cmd_replay(args: Vec<&str>) -> i32 {
    let flags = match Flags::parse(&args, &["--trace", "--governor", "--frames", "--seed"], &[]) {
        Ok(flags) => flags,
        Err(message) => return usage_error(&message),
    };
    let Some(trace_dir) = flags.option("--trace") else {
        return usage_error("replay needs --trace <dir>");
    };
    let Some(governor) = flags.option("--governor") else {
        return usage_error("replay needs --governor <ondemand|conservative|rtm>");
    };
    if !["ondemand", "conservative", "rtm"].contains(&governor) {
        return usage_error(&format!(
            "unknown governor {governor:?} (one of: ondemand, conservative, rtm)"
        ));
    }
    let seed = match flags.parsed_option::<u64>("--seed") {
        Ok(seed) => seed.unwrap_or(1),
        Err(message) => return usage_error(&message),
    };
    // The shard manifest reader is the whole point: replay streams the
    // recorded trace shard by shard, exactly as the long-horizon
    // experiments do.
    let mut trace = match ShardedTrace::open(trace_dir) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("error: cannot open sharded trace {trace_dir}: {e}");
            return EXIT_STATE;
        }
    };
    let frames = match flags.parsed_option::<u64>("--frames") {
        Ok(Some(frames)) if frames > 0 => frames.min(trace.len()),
        Ok(Some(_)) => return usage_error("--frames must be at least 1"),
        Ok(None) => trace.len(),
        Err(message) => return usage_error(&message),
    };
    let platform = PlatformConfig::odroid_xu3_a15();
    let outcome = match governor {
        "ondemand" => {
            let mut gov = OndemandGovernor::linux_default();
            run_experiment(&mut gov, &mut trace, platform, frames)
        }
        "conservative" => {
            let mut gov = ConservativeGovernor::linux_default();
            run_experiment(&mut gov, &mut trace, platform, frames)
        }
        "rtm" => {
            let (low, high) = trace.workload_bounds();
            let config = RtmConfig::paper(seed).with_workload_bounds(low, high);
            let mut gov = match RtmGovernor::new(config) {
                Ok(gov) => gov,
                Err(e) => {
                    eprintln!("error: invalid RTM config: {e}");
                    return EXIT_STATE;
                }
            };
            run_experiment(&mut gov, &mut trace, platform, frames)
        }
        _ => unreachable!("governor validated above"),
    };
    let report = &outcome.report;
    println!(
        "replayed {frames} frames from {trace_dir} ({} shards)",
        trace.shard_count()
    );
    println!("governor = {governor}");
    println!("energy_joules = {}", report.total_energy().as_joules());
    println!("miss_rate = {}", report.miss_rate());
    println!(
        "normalized_performance = {}",
        report.normalized_performance()
    );
    println!("mean_opp = {}", report.mean_opp());
    EXIT_OK
}
