//! Campaign state directories: init, kill-safe execution, resume, and
//! the bit-exact report.
//!
//! A state dir holds three files:
//!
//! * `campaign.toml` — the config's canonical rendering, written at
//!   init so `resume`/`report` need no original config path;
//! * `journal.log` — the append-only completed-cell journal
//!   ([`crate::journal`]), the durability source of truth;
//! * `snapshot.log` — an atomically-replaced snapshot of the completed
//!   set, refreshed every [`CampaignConfig::snapshot_every`] appends
//!   (an optimisation: resume unions snapshot ∪ journal, so losing the
//!   snapshot costs nothing but journal-replay time).
//!
//! # The bit-identity argument
//!
//! [`render_report`] reads **only** journaled bits: every `f64` in the
//! report comes from a journal line's bit pattern, cells are
//! enumerated in work-list order (never journal order), and
//! [`MetricSummary::from_samples`] sorts its samples. So the report is
//! a pure function of {config, set of completed cells}. Since
//! [`qgov_bench::worklist::WorkList::run_cell`] is bit-deterministic
//! and scheduling-independent,
//! an interrupted campaign that reruns its missing cells lands on the
//! same completed set — and therefore the byte-identical report — as a
//! campaign that was never killed, under any worker count. That is the
//! property `tests/campaign_resume.rs` enforces with real kills.

use crate::config::{CampaignConfig, ConfigError, MonitorChoice};
use crate::journal::{self, CellRecord, JournalError, JournalWriter};
use qgov_bench::perf::BenchRecord;
use qgov_bench::worklist::Family;
use qgov_bench::{ExperimentBatch, RunnerConfig};
use qgov_metrics::{MetricSummary, SweepFormat, SweepTable};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File name of the canonical config inside a state dir.
pub const CONFIG_FILE: &str = "campaign.toml";
/// File name of the append-only journal inside a state dir.
pub const JOURNAL_FILE: &str = "journal.log";
/// File name of the periodic snapshot inside a state dir.
pub const SNAPSHOT_FILE: &str = "snapshot.log";

/// Why a campaign operation failed.
#[derive(Debug)]
pub enum CampaignError {
    /// The config file was invalid (CLI exit code 3).
    Config(ConfigError),
    /// Journal or snapshot rejected (CLI exit code 4).
    Journal(JournalError),
    /// Any other state-dir problem (CLI exit code 4).
    State(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Config(e) => e.fmt(f),
            CampaignError::Journal(e) => e.fmt(f),
            CampaignError::State(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> Self {
        CampaignError::Config(e)
    }
}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

fn config_path(dir: &Path) -> PathBuf {
    dir.join(CONFIG_FILE)
}
fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}
fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Initialises a state dir for `config`: creates the directory, writes
/// the canonical config, and creates the journal with its header.
/// Refuses a directory that already holds a journal — that is what
/// `resume` is for.
///
/// # Errors
///
/// [`CampaignError::State`] on an already-initialised dir or
/// filesystem failure.
pub fn init(dir: &Path, config: &CampaignConfig) -> Result<(), CampaignError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        CampaignError::State(format!("cannot create state dir {}: {e}", dir.display()))
    })?;
    let journal = journal_path(dir);
    if journal.exists() {
        return Err(CampaignError::State(format!(
            "{} already holds a campaign journal — use `qgov resume {}` to continue it, \
             or point --state at a fresh directory",
            dir.display(),
            dir.display()
        )));
    }
    std::fs::write(config_path(dir), config.canonical()).map_err(|e| {
        CampaignError::State(format!("cannot write {}: {e}", config_path(dir).display()))
    })?;
    // Creates the header (and honours QGOV_CAMPAIGN_KILL_AFTER=0).
    let _writer = JournalWriter::create(&journal, config.fingerprint())?;
    Ok(())
}

/// Loads the canonical config a state dir was initialised with.
///
/// # Errors
///
/// [`CampaignError::State`] when the dir or its `campaign.toml` is
/// missing; [`CampaignError::Config`] when the file no longer parses.
pub fn load(dir: &Path) -> Result<CampaignConfig, CampaignError> {
    let path = config_path(dir);
    if !path.exists() {
        return Err(CampaignError::State(format!(
            "{} is not a campaign state dir (no {CONFIG_FILE}); \
             run `qgov sweep --state {}` first",
            dir.display(),
            dir.display()
        )));
    }
    Ok(CampaignConfig::from_file(&path)?)
}

/// The durable progress of a campaign: its completed cells (snapshot ∪
/// journal, validated and deduplicated), scan diagnostics, and the
/// journal's clean byte length for tail repair.
#[derive(Debug)]
pub struct Progress {
    /// Completed cells by ID.
    pub cells: HashMap<String, CellRecord>,
    /// Diagnostics from the journal scan and the snapshot union.
    pub warnings: Vec<String>,
    /// Parseable journal prefix length (see [`journal::ScanOutcome`]).
    pub journal_clean_len: u64,
}

/// Reads a campaign's durable progress.
///
/// # Errors
///
/// Propagates journal/snapshot rejections ([`CampaignError::Journal`])
/// — including the snapshot-vs-journal bit conflict, which is treated
/// exactly like a duplicate-entry conflict inside one file.
pub fn progress(dir: &Path, config: &CampaignConfig) -> Result<Progress, CampaignError> {
    let fingerprint = config.fingerprint();
    let ids: HashSet<String> = config
        .worklist()
        .cells()
        .into_iter()
        .map(|c| c.id)
        .collect();

    let snapshot = journal::read_snapshot(&snapshot_path(dir), fingerprint)?;
    let scan = journal::scan(&journal_path(dir), fingerprint, |id| ids.contains(id))?;

    let mut cells: HashMap<String, CellRecord> = HashMap::new();
    let mut warnings = scan.warnings;
    for record in snapshot {
        if !ids.contains(&record.id) {
            return Err(CampaignError::Journal(JournalError::Corrupt {
                path: snapshot_path(dir),
                line: 0,
                message: format!(
                    "snapshot cell {} is not in this campaign's work list",
                    record.id
                ),
            }));
        }
        cells.insert(record.id.clone(), record);
    }
    for record in scan.cells {
        match cells.get(&record.id) {
            Some(existing) if *existing != record => {
                return Err(CampaignError::Journal(JournalError::Conflict {
                    path: journal_path(dir),
                    id: record.id,
                }));
            }
            _ => {
                cells.insert(record.id.clone(), record);
            }
        }
    }
    if cells.len() == ids.len() {
        warnings.retain(|w| !w.contains("torn")); // nothing left to rerun
    }
    Ok(Progress {
        cells,
        warnings,
        journal_clean_len: scan.clean_len,
    })
}

/// What a [`run`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Total cells in the work list.
    pub total: usize,
    /// Cells executed by this invocation.
    pub ran: usize,
    /// Cells already durable before this invocation.
    pub skipped: usize,
}

/// Runs every not-yet-journaled cell of the campaign under `runner`,
/// journaling each completion and refreshing the snapshot every
/// `snapshot_every` appends. Per-cell completions are logged to
/// stderr; stdout stays clean for report piping.
///
/// # Errors
///
/// Propagates journal failures; a cell whose journal append fails
/// stops the campaign with [`CampaignError::State`] (its result is
/// lost, but the journal is still consistent and resumable).
pub fn run(
    dir: &Path,
    config: &CampaignConfig,
    runner: &RunnerConfig,
) -> Result<RunSummary, CampaignError> {
    let worklist = config.worklist();
    let fingerprint = config.fingerprint();
    let before = progress(dir, config)?;
    for warning in &before.warnings {
        eprintln!("warning: {warning}");
    }
    let writer =
        JournalWriter::open_append(&journal_path(dir), fingerprint, before.journal_clean_len)?;

    let total = worklist.len();
    let skipped = before.cells.len();
    let remaining: Vec<_> = worklist
        .cells()
        .into_iter()
        .filter(|cell| !before.cells.contains_key(&cell.id))
        .collect();
    let ran = remaining.len();

    // Completion lock: journal append + snapshot cadence are serialised;
    // the cell computations themselves run outside it.
    struct Shared {
        writer: JournalWriter,
        done: Vec<CellRecord>,
        since_snapshot: u64,
    }
    let shared = Mutex::new(Shared {
        writer,
        done: before.cells.values().cloned().collect(),
        since_snapshot: 0,
    });
    let snap = snapshot_path(dir);

    let mut batch = ExperimentBatch::new();
    let worklist_ref = &worklist;
    let shared_ref = &shared;
    let snap_ref = &snap;
    for cell in remaining {
        batch.push(cell.id.clone(), move || -> Result<(), String> {
            let metrics = worklist_ref.run_cell(&cell);
            let record = CellRecord::new(cell.id.clone(), metrics);
            let mut guard = shared_ref.lock().expect("completion lock poisoned");
            guard.writer.append(&record).map_err(|e| e.to_string())?;
            guard.done.push(record);
            guard.since_snapshot += 1;
            let completed = guard.done.len();
            if guard.since_snapshot >= config.snapshot_every {
                guard.since_snapshot = 0;
                journal::write_snapshot(snap_ref, fingerprint, &guard.done)
                    .map_err(|e| e.to_string())?;
            }
            eprintln!("cell {} done ({completed}/{total})", cell.id);
            Ok(())
        });
    }
    let results = batch.run(runner);
    if let Some(Err(message)) = results.into_iter().find(Result::is_err) {
        return Err(CampaignError::State(format!(
            "campaign cell failed to journal: {message}"
        )));
    }

    let guard = shared.into_inner().expect("completion lock poisoned");
    journal::write_snapshot(&snap, fingerprint, &guard.done)?;
    Ok(RunSummary {
        total,
        ran,
        skipped,
    })
}

/// A campaign report assembled purely from journaled bits (see the
/// module docs for why this makes resumed and uninterrupted campaigns
/// byte-identical). Returns the report text; incomplete campaigns
/// report the cells done so far and say so.
///
/// # Errors
///
/// Propagates journal/snapshot rejections.
pub fn render_report(dir: &Path, config: &CampaignConfig) -> Result<String, CampaignError> {
    let (table, completed, total) = fold_metrics(dir, config)?;
    let mut out = String::new();
    out.push_str(&format!("campaign {} ({})\n", config.name, config.family));
    out.push_str(&format!(
        "config fingerprint: {:016x}\n",
        config.fingerprint()
    ));
    let seeds: Vec<String> = config.seeds.iter().map(u64::to_string).collect();
    out.push_str(&format!("seeds: [{}]\n", seeds.join(", ")));
    out.push_str(&format!("frames: {}\n", config.frames));
    if config.family == Family::Fleet {
        out.push_str(&format!("fleet: {} instances per cell\n", config.fleet));
    }
    if config.monitors != MonitorChoice::Off {
        out.push_str(&format!("monitors: {}\n", config.monitors.name()));
    }
    out.push_str(&format!("cells complete: {completed}/{total}\n"));
    out.push('\n');
    match table {
        Some(table) => out.push_str(&table.render()),
        None => out.push_str("no completed cells yet — run `qgov resume` to continue\n"),
    }
    Ok(out)
}

/// The report's aggregates as machine-readable [`BenchRecord`]s
/// (target `campaign/<name>`), for `qgov report --bench-json`.
///
/// # Errors
///
/// Propagates journal/snapshot rejections.
pub fn bench_records(
    dir: &Path,
    config: &CampaignConfig,
) -> Result<Vec<BenchRecord>, CampaignError> {
    let (summaries, _, _) = fold_summaries(dir, config)?;
    let target = format!("campaign/{}", config.name);
    Ok(summaries
        .into_iter()
        .map(|(metric, summary)| BenchRecord::from_summary(&target, metric, &summary))
        .collect())
}

/// Outcome of diffing one campaign's journaled metrics against another
/// state dir's ([`diff_against`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOutcome {
    /// Human-readable per-cell diff; byte-stable for identical inputs.
    pub text: String,
    /// `(cell, metric)` pairs that deviated beyond the tolerance —
    /// including metrics present on only one side of a shared cell.
    pub regressions: usize,
}

/// Symmetric relative deviation between two journaled metric values:
/// `|new − old| / max(|old|, |new|)`, i.e. 0 for bit-identical values
/// and at most 1 for same-sign values. A NaN on either side (that is
/// not bit-identical to the other) is never comparable and reports
/// `∞`, so it always exceeds any finite tolerance.
fn relative_delta(old: f64, new: f64) -> f64 {
    if old.to_bits() == new.to_bits() {
        return 0.0;
    }
    if old.is_nan() || new.is_nan() {
        return f64::INFINITY;
    }
    let base = old.abs().max(new.abs());
    if base == 0.0 {
        0.0
    } else {
        (new - old).abs() / base
    }
}

/// Diffs this campaign's journaled cells against another state dir
/// (`qgov report --against`). Cells are matched by their stable IDs, so
/// the baseline may come from an older campaign with a different seed
/// set or family — only the shared cells are compared. Within a shared
/// cell, every metric whose symmetric relative deviation
/// (`|new − old| / max(|old|, |new|)`) exceeds `tolerance` (and every
/// metric present on only one side) counts as a regression and is
/// listed with both values.
///
/// The text is a pure function of the two journals, rendered in
/// work-list order — byte-stable like the report itself.
///
/// # Errors
///
/// Propagates config/journal rejections from either state dir.
pub fn diff_against(
    dir: &Path,
    config: &CampaignConfig,
    against: &Path,
    tolerance: f64,
) -> Result<DiffOutcome, CampaignError> {
    let against_config = load(against)?;
    let ours = progress(dir, config)?;
    let theirs = progress(against, &against_config)?;

    let mut out = String::new();
    out.push_str(&format!(
        "diff against {} (tolerance {tolerance})\n",
        against.display()
    ));
    let mut regressions = 0usize;
    let mut shared = 0usize;
    let mut compared = 0usize;
    let mut only_here = 0usize;
    for cell in config.worklist().cells() {
        let Some(a) = ours.cells.get(&cell.id) else {
            continue; // not journaled here yet — nothing to compare
        };
        let Some(b) = theirs.cells.get(&cell.id) else {
            only_here += 1;
            continue;
        };
        shared += 1;
        let baseline: HashMap<&str, f64> =
            b.metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let mut lines: Vec<String> = Vec::new();
        for (name, value) in &a.metrics {
            match baseline.get(name.as_str()) {
                None => {
                    regressions += 1;
                    lines.push(format!("  {name}: {value} (missing in baseline)"));
                }
                Some(&old) => {
                    compared += 1;
                    let delta = relative_delta(old, *value);
                    if delta > tolerance {
                        regressions += 1;
                        if delta.is_finite() {
                            lines.push(format!(
                                "  {name}: {old} -> {value} ({:+.3}%)",
                                (*value - old) / old.abs().max(value.abs()) * 100.0
                            ));
                        } else {
                            lines.push(format!("  {name}: {old} -> {value} (not comparable)"));
                        }
                    }
                }
            }
        }
        for (name, value) in &b.metrics {
            if !a.metrics.iter().any(|(n, _)| n == name) {
                regressions += 1;
                lines.push(format!("  {name}: {value} (present only in baseline)"));
            }
        }
        if !lines.is_empty() {
            out.push_str(&format!("cell {}\n", cell.id));
            for line in lines {
                out.push_str(&line);
                out.push('\n');
            }
        }
    }
    let only_there = theirs.cells.len().saturating_sub(shared);
    out.push_str(&format!(
        "{shared} shared cell(s), {compared} compared metric(s), {regressions} beyond tolerance\n"
    ));
    if only_here > 0 || only_there > 0 {
        out.push_str(&format!(
            "{only_here} cell(s) only in this campaign, {only_there} only in the baseline\n"
        ));
    }
    Ok(DiffOutcome {
        text: out,
        regressions,
    })
}

/// Per-metric summaries in deterministic order, plus
/// (completed, total) cell counts.
type FoldedSummaries = (Vec<(String, MetricSummary)>, usize, usize);

/// Folds journaled cells into per-metric summaries: metric order is
/// first appearance scanning cells in **work-list order**, samples per
/// metric likewise — deterministic however the journal was laid down.
fn fold_summaries(dir: &Path, config: &CampaignConfig) -> Result<FoldedSummaries, CampaignError> {
    let done = progress(dir, config)?;
    let cells = config.worklist().cells();
    let total = cells.len();
    let mut order: Vec<String> = Vec::new();
    let mut samples: HashMap<String, Vec<f64>> = HashMap::new();
    let mut completed = 0usize;
    for cell in &cells {
        let Some(record) = done.cells.get(&cell.id) else {
            continue;
        };
        completed += 1;
        for (name, value) in &record.metrics {
            if !samples.contains_key(name) {
                order.push(name.clone());
            }
            samples.entry(name.clone()).or_default().push(*value);
        }
    }
    let summaries = order
        .into_iter()
        .map(|name| {
            let summary = MetricSummary::from_samples(&samples[&name]);
            (name, summary)
        })
        .collect();
    Ok((summaries, completed, total))
}

fn fold_metrics(
    dir: &Path,
    config: &CampaignConfig,
) -> Result<(Option<SweepTable>, usize, usize), CampaignError> {
    let (summaries, completed, total) = fold_summaries(dir, config)?;
    if summaries.is_empty() {
        return Ok((None, completed, total));
    }
    let mut table = SweepTable::new("Metric", vec![("Value", SweepFormat::Fixed(4))]);
    for (name, summary) in summaries {
        table.add_row(name, vec![summary]);
    }
    Ok((Some(table), completed, total))
}
