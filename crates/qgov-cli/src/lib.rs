//! `qgov-cli` — the `qgov` operator command-line interface.
//!
//! Campaigns are the unit of operation: a TOML config names an
//! experiment family, seeds, frames and a worker policy; `qgov sweep`
//! materialises a state directory with an append-only journal of
//! completed cells plus periodic snapshots; `qgov resume` continues a
//! killed campaign from the last durable cell; and `qgov report`
//! renders the aggregate — byte-identical whether or not the campaign
//! was ever interrupted, at any worker count.
//!
//! The crate is a library so tests (and the facade's `src/bin/qgov.rs`
//! shim) can drive [`run`] directly; every module is public for the
//! same reason.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod config;
pub mod journal;
pub mod minitoml;

pub use campaign::{CampaignError, Progress, RunSummary};
pub use cli::{run, EXIT_CONFIG, EXIT_OK, EXIT_STATE, EXIT_USAGE};
pub use config::{CampaignConfig, ConfigError, MonitorChoice};
pub use journal::{CellRecord, JournalError};
