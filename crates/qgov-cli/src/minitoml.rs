//! A deliberately tiny TOML-subset parser for campaign configs.
//!
//! The build environment has no registry access, so the campaign
//! config format sticks to the subset a few dozen lines can parse
//! exactly: `[section]` headers, `key = value` pairs where a value is
//! an integer, a boolean, a `"string"` (with `\"` and `\\` escapes),
//! or a flat array of those scalars, plus `#` comments (full-line or
//! trailing). Every error carries its 1-based line number.
//!
//! ```
//! use qgov_cli::minitoml::{Document, Value};
//!
//! let doc = Document::parse(
//!     "[campaign]\nname = \"demo\" # a comment\nseeds = [1, 2, 3]\n",
//! )
//! .unwrap();
//! assert_eq!(doc.get("campaign", "name"), Some(&Value::Str("demo".into())));
//! ```

use std::fmt;

/// A parsed scalar or flat array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer literal.
    Integer(i64),
    /// A `true`/`false` literal.
    Bool(bool),
    /// A double-quoted string.
    Str(String),
    /// A flat array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// The value's type name for diagnostics.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Integer(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure at a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One `key = value` entry with its section and source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The `[section]` the entry appeared under (empty before any
    /// section header).
    pub section: String,
    /// The bare key.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line of the entry.
    pub line: usize,
}

/// A parsed document: every entry in source order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    entries: Vec<Entry>,
}

impl Document {
    /// Parses `text`.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered [`ParseError`] on the first malformed
    /// line, duplicate key within a section, or unterminated
    /// string/array.
    pub fn parse(text: &str) -> Result<Document, ParseError> {
        let mut entries: Vec<Entry> = Vec::new();
        let mut section = String::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let err = |message: String| ParseError { line, message };
            let stripped = strip_comment(raw).map_err(err)?;
            let stripped = stripped.trim();
            if stripped.is_empty() {
                continue;
            }
            if let Some(rest) = stripped.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ParseError {
                        line,
                        message: format!("unterminated section header {stripped:?}"),
                    });
                };
                let name = name.trim();
                if name.is_empty() || !name.chars().all(is_bare_char) {
                    return Err(ParseError {
                        line,
                        message: format!("invalid section name {name:?}"),
                    });
                }
                section = name.to_owned();
                continue;
            }
            let Some((key, value)) = stripped.split_once('=') else {
                return Err(ParseError {
                    line,
                    message: format!("expected `key = value` or `[section]`, got {stripped:?}"),
                });
            };
            let key = key.trim();
            if key.is_empty() || !key.chars().all(is_bare_char) {
                return Err(ParseError {
                    line,
                    message: format!("invalid key {key:?}"),
                });
            }
            if entries.iter().any(|e| e.section == section && e.key == key) {
                return Err(ParseError {
                    line,
                    message: format!("duplicate key {key:?} in section [{section}]"),
                });
            }
            let value = parse_value(value.trim()).map_err(err)?;
            entries.push(Entry {
                section: section.clone(),
                key: key.to_owned(),
                value,
                line,
            });
        }
        Ok(Document { entries })
    }

    /// The value of `key` under `[section]`, if present.
    #[must_use]
    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|e| e.section == section && e.key == key)
            .map(|e| &e.value)
    }

    /// Every entry, in source order.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }
}

fn is_bare_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Drops a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> Result<String, String> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        match c {
            '#' if !in_string => break,
            '"' => {
                in_string = !in_string;
                out.push(c);
            }
            '\\' if in_string => {
                out.push(c);
                match chars.next() {
                    Some(escaped) => out.push(escaped),
                    None => return Err("unterminated escape in string".to_owned()),
                }
            }
            _ => out.push(c),
        }
    }
    if in_string {
        return Err("unterminated string".to_owned());
    }
    Ok(out)
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err("missing value".to_owned());
    }
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("unterminated array {text:?}"));
        };
        let mut items = Vec::new();
        for element in split_elements(body)? {
            let element = element.trim();
            if element.is_empty() {
                continue; // trailing comma
            }
            let item = parse_value(element)?;
            if matches!(item, Value::Array(_)) {
                return Err("nested arrays are not supported".to_owned());
            }
            items.push(item);
        }
        return Ok(Value::Array(items));
    }
    parse_scalar(text)
}

fn parse_scalar(text: &str) -> Result<Value, String> {
    if let Some(body) = text.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("unterminated string {text:?}"));
        };
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => return Err(format!("unsupported escape \\{other:?}")),
                }
            } else if c == '"' {
                return Err(format!("stray quote inside string {text:?}"));
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    text.parse::<i64>()
        .map(Value::Integer)
        .map_err(|_| format!("expected an integer, boolean, \"string\" or [array], got {text:?}"))
}

/// Splits array body text at top-level commas, respecting strings.
fn split_elements(body: &str) -> Result<Vec<String>, String> {
    let mut elements = Vec::new();
    let mut current = String::new();
    let mut chars = body.chars();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        match c {
            ',' if !in_string => {
                elements.push(std::mem::take(&mut current));
            }
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            '\\' if in_string => {
                current.push(c);
                match chars.next() {
                    Some(escaped) => current.push(escaped),
                    None => return Err("unterminated escape in string".to_owned()),
                }
            }
            _ => current.push(c),
        }
    }
    if in_string {
        return Err("unterminated string in array".to_owned());
    }
    elements.push(current);
    Ok(elements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = Document::parse(
            "# leading comment\n\
             [campaign]\n\
             name = \"demo run\" # trailing\n\
             frames = 1200\n\
             dry = false\n\
             seeds = [1, 2, 3,]\n\
             tags = [\"a\", \"b#c\"]\n",
        )
        .unwrap();
        assert_eq!(
            doc.get("campaign", "name"),
            Some(&Value::Str("demo run".into()))
        );
        assert_eq!(doc.get("campaign", "frames"), Some(&Value::Integer(1200)));
        assert_eq!(doc.get("campaign", "dry"), Some(&Value::Bool(false)));
        assert_eq!(
            doc.get("campaign", "seeds"),
            Some(&Value::Array(vec![
                Value::Integer(1),
                Value::Integer(2),
                Value::Integer(3)
            ]))
        );
        assert_eq!(
            doc.get("campaign", "tags"),
            Some(&Value::Array(vec![
                Value::Str("a".into()),
                Value::Str("b#c".into())
            ]))
        );
        assert_eq!(doc.get("campaign", "missing"), None);
        assert_eq!(doc.get("other", "name"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = Document::parse("k = \"a\\\"b\\\\c\"\n").unwrap();
        assert_eq!(doc.get("", "k"), Some(&Value::Str("a\"b\\c".into())));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Document::parse("[campaign]\nframes 1200\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("key = value"), "{}", err.message);

        let err = Document::parse("x = 1\nx = 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate"), "{}", err.message);

        let err = Document::parse("[oops\n").unwrap_err();
        assert_eq!(err.line, 1);

        let err = Document::parse("k = \"open\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unterminated"), "{}", err.message);

        let err = Document::parse("k = 1.5\n").unwrap_err();
        assert!(
            err.message.contains("expected an integer"),
            "{}",
            err.message
        );
    }

    #[test]
    fn nested_arrays_are_rejected() {
        let err = Document::parse("k = [[1], 2]\n").unwrap_err();
        assert!(err.message.contains("nested"), "{}", err.message);
    }
}
