//! The append-only campaign journal and its snapshot sibling.
//!
//! # Format
//!
//! A journal is a line-oriented text file:
//!
//! ```text
//! qgov-journal v1 fp=0123456789abcdef
//! cell table3/seed=1/frames=120 exploration_epochs/geqiu=4053000000000000 ...
//! ```
//!
//! Line 1 is the header: format version plus the campaign config's
//! fingerprint, so a journal can never be replayed against a different
//! campaign definition. Every further `cell` line records one
//! completed cell: its stable work-list ID followed by
//! `name=<16-hex>` tokens, each value an `f64` **bit pattern**
//! ([`f64::to_bits`] as zero-padded lowercase hex) — the exact bits
//! the cell computed, so a resumed report reproduces the uninterrupted
//! report byte-for-byte. A token whose value is *not* exactly 16 hex
//! digits is preserved verbatim as an extra (forward compatibility:
//! unknown future fields survive a rewrite round trip), and lines
//! whose first word is unknown are skipped with a warning.
//!
//! # Durability and repair
//!
//! Appends are a single `write_all` of one complete line; the file is
//! an unbuffered `File`, so the bytes reach the OS before the append
//! returns and a `SIGKILL` cannot lose them (only machine loss can,
//! which re-runs cells — never corrupts them). A kill *mid-write*
//! leaves a torn final line: [`scan`] detects any unterminated or
//! unparseable tail line, reports it as a warning, and
//! [`JournalWriter::open_append`] truncates it away so the interrupted
//! cell simply reruns. Everything *before* the tail must parse
//! exactly; a corrupt interior line is a hard, line-numbered error —
//! resuming over silently dropped cells is how wrong reports happen.
//!
//! # Crash injection
//!
//! The writer doubles as the test battery's fault injector: when
//! `QGOV_CAMPAIGN_KILL_AFTER=<k>` is set the process aborts at the
//! k-th append (k = 0: right after the header), and
//! `QGOV_CAMPAIGN_TORN=1` additionally writes only a prefix of that
//! final line first — a deterministic mid-journal-write kill, no
//! timing races. Production runs never set these.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Journal/snapshot format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// One completed cell as journaled: its work-list ID, its metric bits,
/// and any unrecognised forward-compatibility tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The stable work-list cell ID.
    pub id: String,
    /// `(metric name, value)` pairs in cell order.
    pub metrics: Vec<(String, f64)>,
    /// Unrecognised `key=value` tokens, preserved verbatim.
    pub extras: Vec<(String, String)>,
}

impl CellRecord {
    /// A record with no extras.
    #[must_use]
    pub fn new(id: impl Into<String>, metrics: Vec<(String, f64)>) -> Self {
        CellRecord {
            id: id.into(),
            metrics,
            extras: Vec::new(),
        }
    }
}

/// Why a journal or snapshot was rejected.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(PathBuf, std::io::Error),
    /// A structurally invalid line before the (repairable) tail.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file belongs to a different format version or campaign.
    Mismatch {
        /// The offending file.
        path: PathBuf,
        /// What did not match.
        message: String,
    },
    /// Two entries for one cell disagree on its bits.
    Conflict {
        /// The offending file.
        path: PathBuf,
        /// The cell with conflicting entries.
        id: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            JournalError::Corrupt {
                path,
                line,
                message,
            } => write!(
                f,
                "{} line {line}: corrupt journal: {message}",
                path.display()
            ),
            JournalError::Mismatch { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            JournalError::Conflict { path, id } => write!(
                f,
                "{}: conflicting entries for cell {id} — refusing to guess which bits are real",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// What a [`scan`] recovered: the deduplicated completed cells (in
/// first-seen order), the diagnostics worth relaying, and the byte
/// length of the valid prefix (everything after it is a repairable
/// torn tail).
#[derive(Debug)]
pub struct ScanOutcome {
    /// Completed cells, deduplicated, in first-seen order.
    pub cells: Vec<CellRecord>,
    /// Human-readable diagnostics (torn tail dropped, duplicates
    /// collapsed, unknown line kinds skipped).
    pub warnings: Vec<String>,
    /// Length in bytes of the parseable prefix;
    /// [`JournalWriter::open_append`] truncates the file to this.
    pub clean_len: u64,
}

/// Renders one `cell` line (no trailing newline).
///
/// # Panics
///
/// Panics when the ID or a metric name would break the line grammar
/// (whitespace anywhere, `=` in a metric name) — work-list IDs and
/// metric names are token-safe by construction.
#[must_use]
pub fn render_cell_line(record: &CellRecord) -> String {
    assert!(
        !record.id.chars().any(char::is_whitespace),
        "cell ID {:?} contains whitespace",
        record.id
    );
    let mut line = format!("cell {}", record.id);
    for (name, value) in &record.metrics {
        assert!(
            !name.contains('=') && !name.chars().any(char::is_whitespace),
            "metric name {name:?} is not token-safe"
        );
        line.push_str(&format!(" {name}={:016x}", value.to_bits()));
    }
    for (key, value) in &record.extras {
        assert!(
            !key.contains('=') && !key.chars().any(char::is_whitespace),
            "extra key {key:?} is not token-safe"
        );
        assert!(
            !value.chars().any(char::is_whitespace),
            "extra value {value:?} contains whitespace"
        );
        line.push_str(&format!(" {key}={value}"));
    }
    line
}

/// Parses one `cell` line. The inverse of [`render_cell_line`]:
/// `parse ∘ render` is the identity (the round trip
/// `crates/qgov-cli/tests/journal_roundtrip.rs` proves).
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_cell_line(line: &str) -> Result<CellRecord, String> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some("cell") => {}
        other => return Err(format!("expected `cell`, got {other:?}")),
    }
    let id = tokens
        .next()
        .ok_or_else(|| "missing cell ID".to_owned())?
        .to_owned();
    let mut metrics = Vec::new();
    let mut extras = Vec::new();
    for token in tokens {
        let Some((key, value)) = token.split_once('=') else {
            return Err(format!("token {token:?} is not `key=value`"));
        };
        if key.is_empty() {
            return Err(format!("token {token:?} has an empty key"));
        }
        if value.len() == 16
            && value
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            let bits = u64::from_str_radix(value, 16).expect("16 hex digits");
            metrics.push((key.to_owned(), f64::from_bits(bits)));
        } else {
            extras.push((key.to_owned(), value.to_owned()));
        }
    }
    if metrics.is_empty() {
        return Err(format!("cell {id} carries no metrics"));
    }
    Ok(CellRecord {
        id,
        metrics,
        extras,
    })
}

fn render_header(kind: &str, fingerprint: u64) -> String {
    format!("{kind} v{FORMAT_VERSION} fp={fingerprint:016x}")
}

/// Validates a header line against the expected kind and fingerprint.
fn check_header(path: &Path, line: &str, kind: &str, fingerprint: u64) -> Result<(), JournalError> {
    let mismatch = |message: String| JournalError::Mismatch {
        path: path.to_path_buf(),
        message,
    };
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some(kind) {
        return Err(mismatch(format!(
            "not a {kind} file (header line {line:?})"
        )));
    }
    let version = tokens.next().unwrap_or("");
    if version != format!("v{FORMAT_VERSION}") {
        return Err(mismatch(format!(
            "{kind} format version {version:?} does not match this build's v{FORMAT_VERSION} — \
             refusing to reinterpret its cells"
        )));
    }
    let fp = tokens.next().unwrap_or("");
    if fp != format!("fp={fingerprint:016x}") {
        return Err(mismatch(format!(
            "campaign fingerprint mismatch ({fp:?} vs expected fp={fingerprint:016x}): \
             this {kind} belongs to a different campaign config"
        )));
    }
    Ok(())
}

/// Scans a journal file, validating the header against `fingerprint`
/// and recovering every durable cell. See the module docs for the
/// repair rules: only the *final*, unterminated-or-unparseable line is
/// treated as a torn tail; anything wrong earlier is an error.
///
/// `known_id` filters which cell IDs belong to this campaign — an
/// entry for an ID outside the work list means the journal does not
/// match the config that claims it, and is rejected rather than
/// silently folded into the wrong report.
///
/// # Errors
///
/// [`JournalError::Io`] when unreadable, [`JournalError::Mismatch`] on
/// a foreign header, [`JournalError::Corrupt`] on an invalid interior
/// line / unknown cell ID / non-finite metric, and
/// [`JournalError::Conflict`] when duplicate entries disagree.
pub fn scan(
    path: &Path,
    fingerprint: u64,
    mut known_id: impl FnMut(&str) -> bool,
) -> Result<ScanOutcome, JournalError> {
    let bytes = std::fs::read(path).map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
    let text = String::from_utf8_lossy(&bytes);

    // Split into complete lines; remember any unterminated tail.
    let mut complete: Vec<&str> = text.split('\n').collect();
    let tail = complete.pop().unwrap_or(""); // after the last '\n'
    let mut warnings = Vec::new();
    let mut torn: Option<String> = if tail.is_empty() {
        None
    } else {
        Some(format!(
            "dropped unterminated final line {tail:?} (torn write at kill); its cell will rerun"
        ))
    };

    let mut clean_len: u64 = 0;
    let mut cells: Vec<CellRecord> = Vec::new();
    let mut by_id: HashMap<String, usize> = HashMap::new();

    for (index, line) in complete.iter().enumerate() {
        let line_no = index + 1;
        let line_len = line.len() as u64 + 1; // + '\n'
        if index == 0 {
            check_header(path, line, "qgov-journal", fingerprint)?;
            clean_len += line_len;
            continue;
        }
        if line.trim().is_empty() {
            clean_len += line_len;
            continue;
        }
        let kind = line.split_whitespace().next().unwrap_or("");
        if kind != "cell" {
            warnings.push(format!(
                "line {line_no}: skipping unknown journal line kind {kind:?} (written by a newer qgov?)"
            ));
            clean_len += line_len;
            continue;
        }
        match parse_cell_line(line) {
            Ok(record) => {
                if !known_id(&record.id) {
                    return Err(JournalError::Corrupt {
                        path: path.to_path_buf(),
                        line: line_no,
                        message: format!(
                            "cell {} is not in this campaign's work list despite a matching fingerprint",
                            record.id
                        ),
                    });
                }
                if let Some((name, value)) = record.metrics.iter().find(|(_, v)| !v.is_finite()) {
                    return Err(JournalError::Corrupt {
                        path: path.to_path_buf(),
                        line: line_no,
                        message: format!(
                            "metric {name} of cell {} is non-finite ({value}) — campaign metrics are finite by construction",
                            record.id
                        ),
                    });
                }
                match by_id.get(&record.id) {
                    None => {
                        by_id.insert(record.id.clone(), cells.len());
                        cells.push(record);
                    }
                    Some(&existing) if cells[existing] == record => {
                        warnings.push(format!(
                            "line {line_no}: duplicate entry for cell {} (identical bits; kept one)",
                            record.id
                        ));
                    }
                    Some(_) => {
                        return Err(JournalError::Conflict {
                            path: path.to_path_buf(),
                            id: record.id,
                        });
                    }
                }
                clean_len += line_len;
            }
            Err(message) => {
                // Only the final complete line may be written off as a
                // torn tail (a mid-write kill can leave at most one);
                // earlier damage is corruption we refuse to skip.
                let is_last = index == complete.len() - 1 && torn.is_none();
                if is_last {
                    torn = Some(format!(
                        "dropped unparseable final line ({message}); its cell will rerun"
                    ));
                } else {
                    return Err(JournalError::Corrupt {
                        path: path.to_path_buf(),
                        line: line_no,
                        message,
                    });
                }
            }
        }
    }

    if complete.is_empty() {
        warnings.push(
            "journal is empty (killed before the header write); starting from zero cells"
                .to_owned(),
        );
        torn = None; // an unterminated header fragment is also just "empty"
        clean_len = 0;
    }
    if let Some(message) = torn {
        warnings.push(message);
    }

    Ok(ScanOutcome {
        cells,
        warnings,
        clean_len,
    })
}

/// Deterministic crash injection for the resume test battery (see the
/// module docs). `kill_after == Some(k)` aborts the process at the
/// k-th append; `torn` first writes only a prefix of that line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CrashPlan {
    kill_after: Option<u64>,
    torn: bool,
}

impl CrashPlan {
    fn from_env() -> Self {
        CrashPlan {
            kill_after: std::env::var("QGOV_CAMPAIGN_KILL_AFTER")
                .ok()
                .and_then(|v| v.trim().parse().ok()),
            torn: std::env::var("QGOV_CAMPAIGN_TORN").is_ok_and(|v| v.trim() == "1"),
        }
    }
}

/// The append side of the journal. One instance exists per campaign
/// run; appends are serialised by the campaign's completion lock.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: File,
    appends: u64,
    crash: CrashPlan,
}

impl JournalWriter {
    /// Creates a fresh journal (truncating any existing file) and
    /// writes its header.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failure.
    pub fn create(path: &Path, fingerprint: u64) -> Result<JournalWriter, JournalError> {
        let crash = CrashPlan::from_env();
        let mut file = File::create(path).map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
        file.write_all(format!("{}\n", render_header("qgov-journal", fingerprint)).as_bytes())
            .map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
        if crash.kill_after == Some(0) {
            std::process::abort();
        }
        Ok(JournalWriter {
            path: path.to_path_buf(),
            file,
            appends: 0,
            crash,
        })
    }

    /// Reopens an existing journal for appending, truncating the torn
    /// tail a [`scan`] identified (`clean_len`). An empty journal
    /// (killed before the header write) gets its header rewritten.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failure.
    pub fn open_append(
        path: &Path,
        fingerprint: u64,
        clean_len: u64,
    ) -> Result<JournalWriter, JournalError> {
        let crash = CrashPlan::from_env();
        let io = |e: std::io::Error| JournalError::Io(path.to_path_buf(), e);
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io)?;
        file.set_len(clean_len).map_err(io)?;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::End(0)).map_err(io)?;
        if clean_len == 0 {
            file.write_all(format!("{}\n", render_header("qgov-journal", fingerprint)).as_bytes())
                .map_err(io)?;
        }
        if crash.kill_after == Some(0) {
            std::process::abort();
        }
        Ok(JournalWriter {
            path: path.to_path_buf(),
            file,
            appends: 0,
            crash,
        })
    }

    /// Appends one completed cell as a single full-line write (the
    /// durability unit) — unless this append is the configured
    /// casualty, in which case the process aborts here, torn or not.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failure.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), JournalError> {
        let line = format!("{}\n", render_cell_line(record));
        self.appends += 1;
        if self.crash.kill_after == Some(self.appends) {
            let cut = if self.crash.torn {
                // Stop mid-token: far enough in to leave `cell <id> na`
                // on disk, well short of the terminating newline.
                (line.len() * 2 / 3).max(6).min(line.len() - 2)
            } else {
                line.len()
            };
            let _ = self.file.write_all(&line.as_bytes()[..cut]);
            let _ = self.file.flush();
            std::process::abort();
        }
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| JournalError::Io(self.path.clone(), e))
    }

    /// Appends performed by this writer (not counting pre-existing
    /// journal lines).
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends
    }
}

/// Atomically replaces the snapshot at `path` with `cells`: the same
/// line format as the journal under a `qgov-snapshot` header, written
/// to a temp file and renamed into place, so a kill mid-snapshot
/// leaves the previous snapshot intact.
///
/// # Errors
///
/// Returns [`JournalError::Io`] on filesystem failure.
pub fn write_snapshot(
    path: &Path,
    fingerprint: u64,
    cells: &[CellRecord],
) -> Result<(), JournalError> {
    let mut body = format!("{}\n", render_header("qgov-snapshot", fingerprint));
    for record in cells {
        body.push_str(&render_cell_line(record));
        body.push('\n');
    }
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| JournalError::Io(path.to_path_buf(), e);
    std::fs::write(&tmp, body).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// Reads a snapshot, strictly: snapshots are written atomically, so
/// *any* damage (bad header, version or fingerprint mismatch, torn or
/// corrupt line) is an error, never repaired. A missing snapshot is
/// fine — it is only an optimisation over replaying the journal.
///
/// # Errors
///
/// [`JournalError::Mismatch`] / [`JournalError::Corrupt`] /
/// [`JournalError::Io`] as for [`scan`], but with no repair path.
pub fn read_snapshot(path: &Path, fingerprint: u64) -> Result<Vec<CellRecord>, JournalError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(JournalError::Io(path.to_path_buf(), e)),
    };
    let Some(body) = text.strip_suffix('\n') else {
        return Err(JournalError::Corrupt {
            path: path.to_path_buf(),
            line: text.lines().count().max(1),
            message: "snapshot does not end in a newline".to_owned(),
        });
    };
    let mut cells = Vec::new();
    for (index, line) in body.split('\n').enumerate() {
        if index == 0 {
            check_header(path, line, "qgov-snapshot", fingerprint)?;
            continue;
        }
        let record = parse_cell_line(line).map_err(|message| JournalError::Corrupt {
            path: path.to_path_buf(),
            line: index + 1,
            message,
        })?;
        cells.push(record);
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, metrics: &[(&str, f64)]) -> CellRecord {
        CellRecord::new(
            id,
            metrics.iter().map(|(n, v)| ((*n).to_owned(), *v)).collect(),
        )
    }

    #[test]
    fn cell_lines_round_trip_bit_exactly() {
        let mut rec = record("table3/seed=1/frames=120", &[("a/b", 0.1), ("c", -0.0)]);
        rec.extras
            .push(("future_field".into(), "v2-payload".into()));
        let line = render_cell_line(&rec);
        let parsed = parse_cell_line(&line).unwrap();
        assert_eq!(parsed, rec);
        assert_eq!(parsed.metrics[0].1.to_bits(), 0.1f64.to_bits());
        assert_eq!(parsed.metrics[1].1.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn malformed_cell_lines_are_rejected() {
        for bad in [
            "не cell",
            "cell",
            "cell id-only",
            "cell id bare-token",
            "cell id =novalue",
        ] {
            assert!(parse_cell_line(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn header_mismatches_are_diagnosed() {
        let dir = std::env::temp_dir().join(format!("qgov-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.log");

        std::fs::write(&path, "qgov-journal v9 fp=0000000000000000\n").unwrap();
        let err = scan(&path, 0, |_| true).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");

        std::fs::write(&path, render_header("qgov-journal", 7) + "\n").unwrap();
        let err = scan(&path, 8, |_| true).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_repairs_only_the_tail() {
        let dir = std::env::temp_dir().join(format!("qgov-scan-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.log");
        let fp = 42u64;
        let good = render_cell_line(&record("a", &[("m", 1.5)]));

        // Torn unterminated tail: dropped with a warning.
        std::fs::write(
            &path,
            format!(
                "{}\n{good}\ncell b m=3ff",
                render_header("qgov-journal", fp)
            ),
        )
        .unwrap();
        let outcome = scan(&path, fp, |_| true).unwrap();
        assert_eq!(outcome.cells.len(), 1);
        assert!(outcome.warnings.iter().any(|w| w.contains("torn")));
        assert_eq!(
            outcome.clean_len,
            (render_header("qgov-journal", fp).len() + 1 + good.len() + 1) as u64
        );

        // Corrupt interior line: hard error with its line number.
        std::fs::write(
            &path,
            format!(
                "{}\ncell b broken-token\n{good}\n",
                render_header("qgov-journal", fp)
            ),
        )
        .unwrap();
        let err = scan(&path, fp, |_| true).unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { line: 2, .. }),
            "{err}"
        );

        // Empty file: clean zero-cell start.
        std::fs::write(&path, "").unwrap();
        let outcome = scan(&path, fp, |_| true).unwrap();
        assert!(outcome.cells.is_empty());
        assert_eq!(outcome.clean_len, 0);
        assert!(outcome.warnings.iter().any(|w| w.contains("empty")));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicates_collapse_identical_and_reject_conflicting() {
        let dir = std::env::temp_dir().join(format!("qgov-dup-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.log");
        let fp = 1u64;
        let line = render_cell_line(&record("a", &[("m", 2.0)]));
        let other = render_cell_line(&record("a", &[("m", 3.0)]));

        std::fs::write(
            &path,
            format!("{}\n{line}\n{line}\n", render_header("qgov-journal", fp)),
        )
        .unwrap();
        let outcome = scan(&path, fp, |_| true).unwrap();
        assert_eq!(outcome.cells.len(), 1);
        assert!(outcome.warnings.iter().any(|w| w.contains("duplicate")));

        std::fs::write(
            &path,
            format!("{}\n{line}\n{other}\n", render_header("qgov-journal", fp)),
        )
        .unwrap();
        let err = scan(&path, fp, |_| true).unwrap_err();
        assert!(matches!(err, JournalError::Conflict { .. }), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_cell_ids_fail_instead_of_misfolding() {
        let dir = std::env::temp_dir().join(format!("qgov-id-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.log");
        let line = render_cell_line(&record("rogue", &[("m", 2.0)]));
        std::fs::write(
            &path,
            format!("{}\n{line}\n", render_header("qgov-journal", 5)),
        )
        .unwrap();
        let err = scan(&path, 5, |id| id == "expected").unwrap_err();
        assert!(err.to_string().contains("work list"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trips_and_rejects_foreign_versions() {
        let dir = std::env::temp_dir().join(format!("qgov-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.log");
        let cells = vec![record("a", &[("m", 0.25)]), record("b", &[("m", 4.0)])];
        write_snapshot(&path, 9, &cells).unwrap();
        assert_eq!(read_snapshot(&path, 9).unwrap(), cells);
        assert!(read_snapshot(&dir.join("missing.log"), 9)
            .unwrap()
            .is_empty());

        let err = read_snapshot(&path, 10).unwrap_err();
        assert!(matches!(err, JournalError::Mismatch { .. }), "{err}");

        std::fs::write(&path, "qgov-snapshot v99 fp=0000000000000009\n").unwrap();
        let err = read_snapshot(&path, 9).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
