//! Property test: journal cell lines round-trip exactly —
//! `parse_cell_line ∘ render_cell_line` is the identity, for arbitrary
//! token-safe IDs, metric names, *bit patterns* (including NaNs,
//! infinities and signed zeros) and forward-compat extras.

use proptest::collection::vec;
use proptest::prelude::*;
use qgov_cli::journal::{parse_cell_line, render_cell_line, CellRecord};

/// A non-empty token drawn from `charset`.
fn token(charset: &'static str, max_len: usize) -> impl Strategy<Value = String> {
    let chars: Vec<char> = charset.chars().collect();
    vec(0usize..chars.len(), 1..=max_len)
        .prop_map(move |indices| indices.into_iter().map(|i| chars[i]).collect())
}

/// Work-list-shaped cell IDs: no whitespace, `=` and `/` allowed.
fn cell_id() -> impl Strategy<Value = String> {
    token("abcdefghijklmnopqrstuvwxyz0123456789/=._-", 40)
}

/// Metric names: no whitespace and no `=`.
fn metric_name() -> impl Strategy<Value = String> {
    token("abcdefghijklmnopqrstuvwxyz0123456789_/.", 24)
}

/// Extra values: never 16 lowercase hex digits (the charset has no hex
/// digits at all), so they can never be re-classified as metrics.
fn extra_value() -> impl Strategy<Value = String> {
    token("ghijklmnopqrstuvwxyz-.:", 20)
}

fn record() -> impl Strategy<Value = CellRecord> {
    (
        cell_id(),
        vec((metric_name(), 0u64..=u64::MAX), 1..=5),
        vec((metric_name(), extra_value()), 0..=3),
    )
        .prop_map(|(id, raw_metrics, extras)| CellRecord {
            id,
            metrics: raw_metrics
                .into_iter()
                .map(|(name, bits)| (name, f64::from_bits(bits)))
                .collect(),
            extras,
        })
}

type RecordBits = (String, Vec<(String, u64)>, Vec<(String, String)>);

fn bits_of(record: &CellRecord) -> RecordBits {
    (
        record.id.clone(),
        record
            .metrics
            .iter()
            .map(|(name, value)| (name.clone(), value.to_bits()))
            .collect(),
        record.extras.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_render_is_identity(rec in record()) {
        let line = render_cell_line(&rec);
        let parsed = parse_cell_line(&line)
            .unwrap_or_else(|e| panic!("rendered line {line:?} failed to parse: {e}"));
        prop_assert_eq!(bits_of(&parsed), bits_of(&rec), "line was {:?}", line);
    }

    /// Rendering is also stable: render ∘ parse ∘ render = render.
    #[test]
    fn render_is_stable_under_reparse(rec in record()) {
        let line = render_cell_line(&rec);
        let reparsed = parse_cell_line(&line).unwrap();
        prop_assert_eq!(render_cell_line(&reparsed), line);
    }
}
