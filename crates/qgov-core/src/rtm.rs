//! The run-time manager.

use crate::degrade::{HardeningConfig, PlausibilityFilter};
use crate::{ExplorationKind, HistoryMode, RtmConfig, StateKind, StateMapper};
use qgov_governors::{EpochObservation, Governor, GovernorContext, SlackTracker, VfDecision};
use qgov_metrics::{MonitorReport, PropertySet};
use qgov_rl::{
    ActionSpace, AgentConfig, EpdPolicy, EwmaPredictor, ExplorationPolicy, Predictor,
    QLearningAgent, QTable, RewardFn, RlError, SoftmaxPolicy, UniformPolicy,
};
use qgov_sim::{FrameResult, OppTable};
use qgov_units::{Freq, SimTime};

/// One decision epoch's telemetry, recorded by the RTM for analysis
/// (drives the Fig. 3 misprediction/slack series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Total workload the RTM had predicted for this frame (cycles);
    /// zero for the very first frame, before any prediction existed.
    pub predicted_total_cycles: f64,
    /// Total workload the frame actually demanded (cycles).
    pub actual_total_cycles: f64,
    /// This frame's raw slack ratio.
    pub frame_slack: f64,
    /// The average slack ratio `L` after this frame (Eq. 5).
    pub avg_slack: f64,
    /// Q-table state selected for the next frame.
    pub state: usize,
    /// Action (OPP index) selected for the next frame.
    pub action: usize,
    /// Exploration probability ε at selection time.
    pub epsilon: f64,
    /// Cumulative exploratory selections so far.
    pub explorations: u64,
}

impl EpochRecord {
    /// Relative misprediction `|predicted − actual| / actual` of this
    /// frame's workload (zero when no prediction existed yet).
    #[must_use]
    pub fn misprediction(&self) -> f64 {
        if self.actual_total_cycles <= 0.0 || self.predicted_total_cycles <= 0.0 {
            0.0
        } else {
            (self.predicted_total_cycles - self.actual_total_cycles).abs()
                / self.actual_total_cycles
        }
    }
}

/// Bounded per-epoch telemetry storage behind
/// [`RtmGovernor::history`], parameterised by [`HistoryMode`].
///
/// `LastN(n)` is a *compacting* ring: records append into a buffer of
/// fixed capacity `2n`; when it fills, the older half is discarded by
/// one `memmove` (amortised O(1) per push, allocation-free after the
/// buffer's one-time reservation) so the retained tail is always a
/// plain chronological slice — which is what lets `history()` keep its
/// `&[EpochRecord]` return type across modes.
#[derive(Debug)]
struct EpochHistory {
    mode: HistoryMode,
    records: Vec<EpochRecord>,
}

impl EpochHistory {
    fn new(mode: HistoryMode) -> Self {
        let records = match mode {
            HistoryMode::LastN(n) => Vec::with_capacity(2 * n),
            HistoryMode::Full | HistoryMode::Off => Vec::new(),
        };
        EpochHistory { mode, records }
    }

    fn push(&mut self, record: EpochRecord) {
        match self.mode {
            HistoryMode::Off => {}
            HistoryMode::Full => self.records.push(record),
            HistoryMode::LastN(n) => {
                if self.records.len() == 2 * n {
                    self.records.copy_within(n.., 0);
                    self.records.truncate(n);
                }
                self.records.push(record);
            }
        }
    }

    fn as_slice(&self) -> &[EpochRecord] {
        match self.mode {
            HistoryMode::Full | HistoryMode::Off => &self.records,
            HistoryMode::LastN(n) => &self.records[self.records.len().saturating_sub(n)..],
        }
    }
}

impl RtmConfig {
    /// Number of Q-table states this configuration spans
    /// (`workload_levels × slack_levels`).
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.workload_levels * self.slack_levels
    }

    /// The learning hyper-parameters as an [`AgentConfig`] — the one
    /// construction [`RtmGovernor::init`] and fleet agent lanes share,
    /// so a fleet instance's agent is built from the identical inputs.
    #[must_use]
    pub fn agent_config(&self) -> AgentConfig {
        AgentConfig {
            alpha: self.alpha,
            discount: self.discount,
            epsilon: self.epsilon.clone(),
            convergence_window: self.convergence_window,
            optimistic_gradient: self.optimistic_gradient,
        }
    }

    /// Builds the configured exploration policy.
    ///
    /// # Panics
    ///
    /// Panics on invalid exploration parameters (call
    /// [`RtmConfig::validate`] first — [`RtmGovernor::new`] does).
    #[must_use]
    pub fn exploration_policy(&self) -> Box<dyn ExplorationPolicy + Send> {
        match self.exploration {
            ExplorationKind::Epd { lambda, beta } => {
                Box::new(EpdPolicy::new(lambda, beta).expect("validated"))
            }
            ExplorationKind::Upd => Box::new(UniformPolicy::new()),
            ExplorationKind::Softmax { temperature } => {
                Box::new(SoftmaxPolicy::new(temperature).expect("validated"))
            }
        }
    }
}

/// The per-epoch learning interface [`RtmLane::decide`] drives: one
/// Bellman-update + ε-greedy-selection step, plus the two telemetry
/// reads the [`EpochRecord`] needs. Implemented by [`QLearningAgent`]
/// (the flat governor's own agent) and by fleet arena-lane adapters,
/// so the flat and fleet paths run the byte-for-byte same decide body
/// and differ only in where the Q-values live.
pub trait EpochAgent {
    /// Runs one decision epoch (Bellman update + action selection).
    fn begin_epoch(&mut self, state: usize, reward: f64, slack: f64) -> usize;
    /// Current exploration probability ε.
    fn epsilon(&self) -> f64;
    /// Cumulative exploratory (non-greedy) selections so far.
    fn exploration_count(&self) -> u64;
}

impl EpochAgent for QLearningAgent {
    fn begin_epoch(&mut self, state: usize, reward: f64, slack: f64) -> usize {
        QLearningAgent::begin_epoch(self, state, reward, slack)
    }

    fn epsilon(&self) -> f64 {
        QLearningAgent::epsilon(self)
    }

    fn exploration_count(&self) -> u64 {
        QLearningAgent::exploration_count(self)
    }
}

/// One RTM instance's **non-learning** state — EWMA predictors, slack
/// tracking, state mapping, calibration, scratch buffers, telemetry —
/// factored out of [`RtmGovernor`] so a fleet engine can step many
/// instances whose Q-tables live in one shared arena
/// (`qgov_rl::AgentLanes`) instead of one boxed agent each.
///
/// [`RtmLane::decide`] is the *entire* RTM decision body, generic over
/// [`EpochAgent`]: the flat governor passes its own
/// [`QLearningAgent`], a fleet passes an arena-lane adapter, and both
/// execute the identical floating-point sequence — which is what makes
/// fleet results bit-identical to sequential flat runs.
#[derive(Debug)]
pub struct RtmLane {
    config: RtmConfig,
    cores: usize,
    period: SimTime,
    table: OppTable,
    mapper: Option<StateMapper>,
    predictors: Vec<EwmaPredictor>,
    slack: SlackTracker,
    calib_samples: Vec<f64>,
    rr_core: usize,
    last_prediction_total: f64,
    last_frame_slack: f64,
    history: EpochHistory,
    /// Scratch buffers reused every epoch so the steady-state decide
    /// path performs no heap allocation (sized to `cores` up front).
    scratch_actual: Vec<f64>,
    scratch_predicted: Vec<f64>,
    /// Streaming temporal monitors tapped on the epoch stream. The tap
    /// sees every epoch regardless of [`HistoryMode`] (including
    /// `Off`) and never influences decisions.
    monitor: Option<PropertySet<EpochRecord>>,
}

impl RtmLane {
    /// Builds a fresh lane for one (platform, workload) context — the
    /// exact per-run state [`RtmGovernor::init`] establishes.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid; validate first
    /// ([`RtmGovernor::new`] does).
    #[must_use]
    pub fn new(config: &RtmConfig, ctx: &GovernorContext) -> Self {
        config.validate().expect("validated RtmConfig");
        let cores = ctx.cores();
        let slack = match config.slack_window {
            Some(w) => SlackTracker::windowed(w),
            None => SlackTracker::cumulative(),
        };
        let mapper = config.workload_bounds.map(|(min, max)| {
            StateMapper::from_bounds(min, max, config.workload_levels, config.slack_levels, cores)
                .expect("validated bounds")
        });
        let predictors = (0..cores)
            .map(|_| EwmaPredictor::new(config.smoothing).expect("validated"))
            .collect();
        RtmLane {
            config: config.clone(),
            cores,
            period: ctx.period(),
            table: ctx.opp_table().clone(),
            mapper,
            predictors,
            slack,
            calib_samples: Vec::new(),
            rr_core: 0,
            last_prediction_total: 0.0,
            last_frame_slack: 0.0,
            history: EpochHistory::new(config.history),
            // One-time sizing of the per-epoch scratch buffers: after
            // this, the steady-state decide path never touches the heap.
            scratch_actual: Vec::with_capacity(cores),
            scratch_predicted: vec![0.0; cores],
            monitor: None,
        }
    }

    /// The conservative first decision a fresh RTM issues before any
    /// observation: the highest OPP.
    #[must_use]
    pub fn first_decision(&self) -> VfDecision {
        VfDecision::Cluster(self.table.max_index())
    }

    /// Cores of the lane's platform context.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The per-frame deadline `T_ref` of the lane's context.
    #[must_use]
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Attaches a streaming [`PropertySet`] to the epoch stream (see
    /// [`RtmGovernor::attach_monitor`]).
    pub fn attach_monitor(&mut self, monitor: PropertySet<EpochRecord>) {
        self.monitor = Some(monitor);
    }

    /// The attached monitor set, if any.
    #[must_use]
    pub fn monitor(&self) -> Option<&PropertySet<EpochRecord>> {
        self.monitor.as_ref()
    }

    /// Detaches and returns the monitor set.
    pub fn take_monitor(&mut self) -> Option<PropertySet<EpochRecord>> {
        self.monitor.take()
    }

    /// The current average slack ratio `L`.
    #[must_use]
    pub fn avg_slack(&self) -> f64 {
        self.slack.average()
    }

    /// Per-epoch telemetry retained so far (see
    /// [`RtmGovernor::history`]).
    #[must_use]
    pub fn history(&self) -> &[EpochRecord] {
        self.history.as_slice()
    }

    /// The state mapper, once pre-characterisation has completed.
    #[must_use]
    pub fn state_mapper(&self) -> Option<&StateMapper> {
        self.mapper.as_ref()
    }

    /// Per-epoch processing cost of this lane's RTM (Table III).
    #[must_use]
    pub fn processing_overhead(&self) -> SimTime {
        self.config
            .overhead
            .cost(self.cores.max(1), self.table.len())
    }

    /// Feeds one epoch's telemetry to the monitor tap and the retained
    /// history — the single seam both decide paths exit through.
    fn record_epoch(&mut self, record: EpochRecord) {
        if let Some(monitor) = &mut self.monitor {
            monitor.observe(&record);
        }
        self.history.push(record);
    }

    /// During calibration (no state mapper yet) fall back to a
    /// proportional controller: pick the lowest OPP whose frequency
    /// covers the predicted critical-path cycles within the period,
    /// with 30 % safety headroom.
    fn calibration_action(&self, predicted_per_core: &[f64]) -> usize {
        let critical = predicted_per_core.iter().copied().fold(0.0f64, f64::max);
        if critical <= 0.0 {
            return self.table.max_index();
        }
        let needed_khz = critical * 1.3 / self.period.as_secs_f64() / 1_000.0;
        self.table
            .index_at_or_above(Freq::from_khz(needed_khz.ceil() as u64))
    }

    /// One full RTM decision epoch over `agent` — pay-off, prediction,
    /// calibration or Bellman update + proactive selection, telemetry.
    pub fn decide(&mut self, agent: &mut dyn EpochAgent, obs: &EpochObservation<'_>) -> VfDecision {
        // --- Step 1 (Section II): pay-off for the elapsed interval. ---
        // The state and the EPD bias use the average slack ratio L
        // (Eq. 5); the pay-off's level term uses the *instantaneous*
        // frame slack so the credit lands on the action that caused it
        // (the paper's L averages over D epochs, but D restarts with
        // every T_ref change, keeping it similarly responsive).
        let frame_slack = obs.frame.frame_slack().clamp(-1.0, 1.0);
        self.slack.observe(frame_slack);
        let l = self.slack.average();
        let reward = self
            .config
            .reward
            .reward(frame_slack, self.last_frame_slack);
        self.last_frame_slack = frame_slack;

        // Workload observation and EWMA prediction (Eq. 1), folded
        // through the reusable scratch buffers (sized at construction)
        // so the steady-state epoch performs no heap allocation.
        self.scratch_actual.clear();
        self.scratch_actual
            .extend(obs.frame.per_core_cycles.iter().map(|c| c.count() as f64));
        let actual_total: f64 = self.scratch_actual.iter().sum();
        let predicted_for_this_frame = self.last_prediction_total;
        for (p, &a) in self.predictors.iter_mut().zip(&self.scratch_actual) {
            p.observe(a);
        }
        for (slot, p) in self.scratch_predicted.iter_mut().zip(&self.predictors) {
            *slot = p.predict();
        }
        let predicted_total: f64 = self.scratch_predicted.iter().sum();
        self.last_prediction_total = predicted_total;

        // --- Pre-characterisation (until the state mapper exists). ---
        if self.mapper.is_none() {
            self.calib_samples.push(actual_total);
            if self.calib_samples.len() >= self.config.calibration_frames {
                self.mapper = Some(
                    StateMapper::from_samples(
                        &self.calib_samples,
                        self.config.workload_levels,
                        self.config.slack_levels,
                        self.cores,
                    )
                    .expect("calibration samples are finite and non-empty"),
                );
            } else {
                let action = self.calibration_action(&self.scratch_predicted);
                self.record_epoch(EpochRecord {
                    epoch: obs.epoch,
                    predicted_total_cycles: predicted_for_this_frame,
                    actual_total_cycles: actual_total,
                    frame_slack: obs.frame.frame_slack(),
                    avg_slack: l,
                    state: 0,
                    action,
                    epsilon: agent.epsilon(),
                    explorations: agent.exploration_count(),
                });
                return VfDecision::Cluster(action);
            }
        }

        // --- Steps 2 + 3: Bellman update and proactive selection. ---
        let mapper = self.mapper.as_ref().expect("just ensured above");
        let state = match self.config.state_kind {
            StateKind::TotalWorkload => mapper.state_for_total(predicted_total, l),
            StateKind::PerCoreShare => {
                // Only the round-robin core's share is needed, so the
                // Eq. 7 normalisation runs scalar (bit-identical to
                // indexing `normalize_shares`) instead of materialising
                // the share vector every epoch.
                let share = StateMapper::share_of(&self.scratch_predicted, self.rr_core);
                let s = mapper.state_for_share(share, l);
                self.rr_core = (self.rr_core + 1) % self.cores;
                s
            }
        };
        let action = agent.begin_epoch(state, reward, l);

        self.record_epoch(EpochRecord {
            epoch: obs.epoch,
            predicted_total_cycles: predicted_for_this_frame,
            actual_total_cycles: actual_total,
            frame_slack: obs.frame.frame_slack(),
            avg_slack: l,
            state,
            action,
            epsilon: agent.epsilon(),
            explorations: agent.exploration_count(),
        });
        VfDecision::Cluster(action)
    }
}

/// The paper's Q-learning run-time manager, usable as a drop-in
/// [`Governor`].
///
/// Internally the governor is a thin shell over [`RtmLane`] (all
/// non-learning per-run state) plus one [`QLearningAgent`]; fleet
/// engines reuse the lane with arena-backed agents instead.
///
/// See the [crate documentation](crate) for the algorithm outline and an
/// example.
#[derive(Debug)]
pub struct RtmGovernor {
    config: RtmConfig,
    lane: Option<RtmLane>,
    agent: Option<QLearningAgent>,
    /// A monitor attached before the first `init` (moved into the lane
    /// the moment it exists, and carried across re-inits thereafter).
    pending_monitor: Option<PropertySet<EpochRecord>>,
    /// Set by [`with_hardening`](RtmGovernor::with_hardening): routes
    /// every observation through a plausibility filter first.
    hardening: Option<HardeningConfig>,
    /// The live filter (rebuilt fresh on every `init`).
    filter: Option<PlausibilityFilter>,
    /// Reusable governor-side copy of the sensed frame, so filtering
    /// never mutates the caller's observation and never allocates in
    /// steady state.
    sensed_scratch: FrameResult,
    /// Top OPP index of the platform (set at `init`; clamps
    /// [`HardeningConfig::safe_opp`]).
    top_opp: usize,
    /// Epochs spent parked in the quarantined safe state.
    safe_state_epochs: u64,
}

impl RtmGovernor {
    /// Creates an RTM from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns an [`RlError`] naming the offending parameter.
    pub fn new(config: RtmConfig) -> Result<Self, RlError> {
        config.validate()?;
        Ok(RtmGovernor {
            config,
            lane: None,
            agent: None,
            pending_monitor: None,
            hardening: None,
            filter: None,
            sensed_scratch: FrameResult::empty(),
            top_opp: 0,
            safe_state_epochs: 0,
        })
    }

    /// Hardens the governor against faulty sensors: every observation
    /// passes a [`PlausibilityFilter`] before it reaches the learning
    /// loop (implausible readings are replaced by last-good values),
    /// and after [`HardeningConfig::quarantine_threshold`] consecutive
    /// rejections the governor parks the cluster at the configured
    /// safe OPP — without learning from the garbage — until a
    /// plausible reading arrives. See [`HardeningConfig`] and
    /// [`PlausibilityFilter`].
    #[must_use]
    pub fn with_hardening(mut self, hardening: HardeningConfig) -> Self {
        self.hardening = Some(hardening);
        self
    }

    /// The hardening gates, if [`with_hardening`] configured any.
    ///
    /// [`with_hardening`]: RtmGovernor::with_hardening
    #[must_use]
    pub fn hardening(&self) -> Option<&HardeningConfig> {
        self.hardening.as_ref()
    }

    /// Epochs that ran on substituted or safe-state data (0 for a
    /// naive governor).
    #[must_use]
    pub fn degraded_epochs(&self) -> u64 {
        self.filter
            .as_ref()
            .map_or(0, PlausibilityFilter::degraded_epochs)
    }

    /// Epochs spent parked at the safe OPP while quarantined.
    #[must_use]
    pub fn safe_state_epochs(&self) -> u64 {
        self.safe_state_epochs
    }

    /// `true` while the sensors are quarantined and the governor holds
    /// the safe OPP.
    #[must_use]
    pub fn in_safe_state(&self) -> bool {
        self.filter
            .as_ref()
            .is_some_and(PlausibilityFilter::quarantined)
    }

    /// How many times the governor escalated to the safe state.
    #[must_use]
    pub fn quarantine_entries(&self) -> u64 {
        self.filter
            .as_ref()
            .map_or(0, PlausibilityFilter::quarantine_entries)
    }

    /// Attaches a streaming [`PropertySet`] to the epoch stream: every
    /// [`EpochRecord`] the RTM produces is fed to the monitors the
    /// moment it is formed, independent of the configured
    /// [`HistoryMode`] (a tap, not a reader of the retained history —
    /// it observes every epoch even under [`HistoryMode::Off`]).
    ///
    /// The tap is a pure observer: it never influences decisions, and
    /// its per-epoch work is allocation-free. It deliberately survives
    /// [`Governor::init`] so it can be attached before a harness run
    /// (which calls `init` itself); a monitor attached across several
    /// runs of one governor observes their concatenated stream.
    pub fn attach_monitor(&mut self, monitor: PropertySet<EpochRecord>) {
        match &mut self.lane {
            Some(lane) => lane.attach_monitor(monitor),
            None => self.pending_monitor = Some(monitor),
        }
    }

    /// The attached monitor set, if any.
    #[must_use]
    pub fn monitor(&self) -> Option<&PropertySet<EpochRecord>> {
        match &self.lane {
            Some(lane) => lane.monitor(),
            None => self.pending_monitor.as_ref(),
        }
    }

    /// Detaches and returns the monitor set.
    pub fn take_monitor(&mut self) -> Option<PropertySet<EpochRecord>> {
        match &mut self.lane {
            Some(lane) => lane.take_monitor(),
            None => self.pending_monitor.take(),
        }
    }

    /// The monitors' verdicts over the epochs observed so far.
    #[must_use]
    pub fn monitor_report(&self) -> Option<MonitorReport> {
        self.monitor().map(PropertySet::report)
    }

    /// The learnt Q-table (empty rows until learning starts).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Governor::init`].
    #[must_use]
    pub fn q_table(&self) -> &QTable {
        self.agent
            .as_ref()
            .expect("init() builds the agent")
            .q_table()
    }

    /// Cumulative exploratory (non-greedy) selections.
    #[must_use]
    pub fn exploration_count(&self) -> u64 {
        self.agent
            .as_ref()
            .map_or(0, QLearningAgent::exploration_count)
    }

    /// Explorations frozen at first convergence — the Table II measure.
    #[must_use]
    pub fn explorations_to_convergence(&self) -> Option<u64> {
        self.agent
            .as_ref()
            .and_then(QLearningAgent::explorations_to_convergence)
    }

    /// First convergence epoch — the Table III learning-overhead
    /// measure. Counted from the end of calibration.
    #[must_use]
    pub fn converged_at(&self) -> Option<u64> {
        self.agent.as_ref().and_then(QLearningAgent::converged_at)
    }

    /// Length of the exploration phase in decision epochs: how long the
    /// ε schedule (Eq. 6) takes to decay to its exploitation floor. This
    /// is the period during which every epoch pays the full learning
    /// overhead (sampling + processing + exploratory V-F switches) —
    /// the paper's Table III quantity.
    #[must_use]
    pub fn exploration_phase_epochs(&self) -> u64 {
        self.config.epsilon.epochs_to_floor()
    }

    /// Current exploration probability ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.agent.as_ref().map_or(1.0, QLearningAgent::epsilon)
    }

    /// `true` once ε has decayed to its floor (exploitation phase).
    #[must_use]
    pub fn is_exploitation(&self) -> bool {
        self.agent
            .as_ref()
            .is_some_and(QLearningAgent::is_exploitation)
    }

    /// The current average slack ratio `L`.
    #[must_use]
    pub fn avg_slack(&self) -> f64 {
        self.lane.as_ref().map_or(0.0, RtmLane::avg_slack)
    }

    /// Per-epoch telemetry retained so far, in chronological order.
    ///
    /// What this covers depends on the configured [`HistoryMode`]:
    /// every epoch under [`HistoryMode::Full`] (the default), at least
    /// the most recent `N` epochs under [`HistoryMode::LastN`], and
    /// nothing under [`HistoryMode::Off`]. The mode never influences
    /// decisions, only retention.
    #[must_use]
    pub fn history(&self) -> &[EpochRecord] {
        self.lane.as_ref().map_or(&[], RtmLane::history)
    }

    /// The configured telemetry retention mode.
    #[must_use]
    pub fn history_mode(&self) -> HistoryMode {
        self.config.history
    }

    /// The state mapper, once pre-characterisation has completed.
    #[must_use]
    pub fn state_mapper(&self) -> Option<&StateMapper> {
        self.lane.as_ref().and_then(RtmLane::state_mapper)
    }
}

impl Governor for RtmGovernor {
    fn name(&self) -> &str {
        "rtm"
    }

    fn init(&mut self, ctx: &GovernorContext) -> VfDecision {
        // The monitor tap survives re-initialisation: move it from the
        // previous lane (or the pre-init slot) into the fresh one.
        let monitor = match self.lane.take() {
            Some(mut old) => old.take_monitor(),
            None => self.pending_monitor.take(),
        };
        let mut lane = RtmLane::new(&self.config, ctx);
        if let Some(monitor) = monitor {
            lane.attach_monitor(monitor);
        }

        self.agent = Some(QLearningAgent::with_policy(
            self.config.agent_config(),
            self.config.state_count(),
            ActionSpace::from_freqs_ghz(&ctx.opp_table().freqs_ghz()),
            self.config.exploration_policy(),
            self.config.seed,
        ));

        // A hardened governor gets a fresh filter per run (the gates
        // persist; last-good history and counters do not).
        self.filter = self.hardening.as_ref().map(|h| PlausibilityFilter::new(*h));
        self.sensed_scratch = FrameResult::empty();
        self.top_opp = ctx.opp_table().len() - 1;
        self.safe_state_epochs = 0;

        // Conservative start: the highest point, as a fresh governor
        // knows nothing about the workload yet.
        let first = lane.first_decision();
        self.lane = Some(lane);
        first
    }

    fn decide(&mut self, obs: &EpochObservation<'_>) -> VfDecision {
        if let Some(filter) = self.filter.as_mut() {
            self.sensed_scratch.copy_from(obs.frame);
            filter.admit(&mut self.sensed_scratch);
            if filter.quarantined() {
                // Sensors untrustworthy: park at the safe OPP and do
                // not let the agent learn from garbage (ε stays
                // frozen, which keeps its decay monotone).
                self.safe_state_epochs += 1;
                let safe = self
                    .hardening
                    .as_ref()
                    .expect("filter implies hardening")
                    .safe_opp
                    .min(self.top_opp);
                return VfDecision::Cluster(safe);
            }
            let lane = self.lane.as_mut().expect("init() builds the lane");
            let agent = self.agent.as_mut().expect("init() builds the agent");
            let patched = EpochObservation {
                frame: &self.sensed_scratch,
                epoch: obs.epoch,
            };
            return lane.decide(agent, &patched);
        }
        let lane = self.lane.as_mut().expect("init() builds the lane");
        let agent = self.agent.as_mut().expect("init() builds the agent");
        lane.decide(agent, obs)
    }

    fn processing_overhead(&self) -> SimTime {
        match &self.lane {
            Some(lane) => lane.processing_overhead(),
            // Pre-init estimate: one core, a typical 19-point table.
            None => self.config.overhead.cost(1, 19),
        }
    }

    fn exploration_epsilon(&self) -> Option<f64> {
        Some(self.epsilon())
    }

    fn has_converged(&self) -> Option<bool> {
        Some(self.converged_at().is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::{DvfsConfig, Platform, PlatformConfig, SensorConfig, WorkSlice};
    use qgov_units::Cycles;
    use qgov_workloads::{Application, SyntheticWorkload};

    fn platform() -> Platform {
        Platform::new(PlatformConfig {
            sensor: SensorConfig::ideal(),
            dvfs: DvfsConfig::typical(),
            ..PlatformConfig::odroid_xu3_a15()
        })
        .unwrap()
    }

    /// Drives the RTM against a live platform + application for `frames`
    /// epochs; returns (rtm, met, missed) deadline counts over the last
    /// `tail` frames.
    fn drive(
        mut rtm: RtmGovernor,
        app: &mut dyn Application,
        frames: u64,
        tail: u64,
    ) -> (RtmGovernor, u64, u64) {
        let mut platform = platform();
        let ctx =
            GovernorContext::new(platform.opp_table().clone(), platform.cores(), app.period());
        let first = rtm.init(&ctx);
        platform.set_cluster_opp(first.resolve_cluster(platform.current_opp()));

        let mut met = 0;
        let mut missed = 0;
        for epoch in 0..frames {
            let demand = app.next_frame();
            let work: Vec<WorkSlice> = (0..platform.cores())
                .map(|c| {
                    demand.threads.get(c).map_or(WorkSlice::IDLE, |t| {
                        WorkSlice::new(t.cpu_cycles, t.mem_time)
                    })
                })
                .collect();
            let frame = platform.run_frame(&work, app.period()).unwrap();
            if epoch >= frames - tail {
                if frame.met_deadline() {
                    met += 1;
                } else {
                    missed += 1;
                }
            }
            let d = rtm.decide(&EpochObservation {
                frame: &frame,
                epoch,
            });
            let opp = d.resolve_cluster(platform.current_opp());
            platform.set_cluster_opp(opp);
            platform.add_overhead(rtm.processing_overhead());
        }
        (rtm, met, missed)
    }

    #[test]
    fn learns_to_meet_deadlines_on_steady_workload() {
        // 40 Mcycles/core in 40 ms needs exactly 1 GHz: feasible from
        // index 8 up.
        let mut app = SyntheticWorkload::constant(
            "steady",
            Cycles::from_mcycles(160),
            SimTime::from_ms(40),
            400,
            4,
            5,
        );
        let rtm = RtmGovernor::new(RtmConfig::paper(42)).unwrap();
        let (rtm, met, missed) = drive(rtm, &mut app, 400, 100);
        assert!(
            met >= 95,
            "converged RTM should meet almost all deadlines (met {met}, missed {missed})"
        );
        assert!(rtm.is_exploitation(), "epsilon should have decayed");
        // It must NOT have settled at the top OPP: that wastes energy.
        let last_actions: Vec<usize> = rtm
            .history()
            .iter()
            .rev()
            .take(50)
            .map(|r| r.action)
            .collect();
        let avg_action: f64 = last_actions.iter().sum::<usize>() as f64 / last_actions.len() as f64;
        assert!(
            avg_action < 17.0,
            "RTM should not race at the top OPP (avg action {avg_action:.1})"
        );
        assert!(
            avg_action >= 7.0,
            "RTM cannot run below the feasibility floor (avg action {avg_action:.1})"
        );
    }

    #[test]
    fn ewma_prediction_tracks_workload() {
        let mut app = SyntheticWorkload::constant(
            "steady",
            Cycles::from_mcycles(120),
            SimTime::from_ms(40),
            120,
            4,
            5,
        );
        let rtm = RtmGovernor::new(RtmConfig::paper(1)).unwrap();
        let (rtm, _, _) = drive(rtm, &mut app, 120, 0);
        // After warm-up, predictions should be within 1 % on a constant
        // workload.
        for r in rtm.history().iter().skip(20) {
            assert!(
                r.misprediction() < 0.01,
                "epoch {}: misprediction {:.3}",
                r.epoch,
                r.misprediction()
            );
        }
    }

    #[test]
    fn converges_and_freezes_exploration_count() {
        let mut app = SyntheticWorkload::constant(
            "steady",
            Cycles::from_mcycles(160),
            SimTime::from_ms(40),
            500,
            4,
            9,
        );
        let rtm = RtmGovernor::new(RtmConfig::paper(7)).unwrap();
        let (rtm, _, _) = drive(rtm, &mut app, 500, 0);
        assert!(rtm.converged_at().is_some(), "must converge on steady load");
        let frozen = rtm.explorations_to_convergence().unwrap();
        assert!(frozen <= rtm.exploration_count());
        assert!(frozen > 0, "learning requires some exploration");
    }

    #[test]
    fn epd_explores_less_than_upd() {
        let run = |config: RtmConfig| {
            let mut app = SyntheticWorkload::constant(
                "steady",
                Cycles::from_mcycles(160),
                SimTime::from_ms(40),
                600,
                4,
                11,
            )
            .with_noise(0.1);
            let rtm = RtmGovernor::new(config).unwrap();
            let (rtm, _, _) = drive(rtm, &mut app, 600, 0);
            rtm.explorations_to_convergence()
                .unwrap_or_else(|| rtm.exploration_count())
        };
        let epd = run(RtmConfig::paper(3));
        let upd = run(RtmConfig::upd_baseline(3));
        assert!(
            epd < upd,
            "EPD should need fewer explorations (epd {epd}, upd {upd})"
        );
    }

    #[test]
    fn per_core_share_state_kind_runs() {
        let mut app = SyntheticWorkload::constant(
            "steady",
            Cycles::from_mcycles(160),
            SimTime::from_ms(40),
            200,
            4,
            13,
        );
        let mut config = RtmConfig::paper(5);
        config.state_kind = StateKind::PerCoreShare;
        let rtm = RtmGovernor::new(config).unwrap();
        let (_rtm, met, _) = drive(rtm, &mut app, 200, 50);
        assert!(
            met >= 40,
            "PerCoreShare formulation must still work (met {met})"
        );
    }

    #[test]
    fn offline_bounds_skip_calibration() {
        let mut app = SyntheticWorkload::constant(
            "steady",
            Cycles::from_mcycles(160),
            SimTime::from_ms(40),
            60,
            4,
            13,
        );
        let config = RtmConfig::paper(5).with_workload_bounds(1e8, 2e8);
        let rtm = RtmGovernor::new(config).unwrap();
        let (rtm, _, _) = drive(rtm, &mut app, 60, 0);
        assert!(rtm.state_mapper().is_some());
        // With bounds, learning starts at epoch 0: all epochs have
        // non-trivial states recorded.
        assert!(rtm.history().iter().skip(1).any(|r| r.state != 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut app = SyntheticWorkload::constant(
                "steady",
                Cycles::from_mcycles(100),
                SimTime::from_ms(40),
                150,
                4,
                2,
            )
            .with_noise(0.15);
            let rtm = RtmGovernor::new(RtmConfig::paper(seed)).unwrap();
            let (rtm, _, _) = drive(rtm, &mut app, 150, 0);
            rtm.history()
                .iter()
                .map(|r| (r.action, r.state))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn processing_overhead_is_realistic() {
        let rtm = RtmGovernor::new(RtmConfig::paper(0)).unwrap();
        let t = rtm.processing_overhead();
        assert!(t >= SimTime::from_us(10));
        assert!(t <= SimTime::from_us(200), "got {t}");
    }

    #[test]
    fn history_mode_bounds_memory_without_changing_decisions() {
        let run = |history: HistoryMode| {
            let mut app = SyntheticWorkload::constant(
                "steady",
                Cycles::from_mcycles(120),
                SimTime::from_ms(40),
                300,
                4,
                2,
            )
            .with_noise(0.1);
            let config = RtmConfig::paper(11).with_history(history);
            let rtm = RtmGovernor::new(config).unwrap();
            drive(rtm, &mut app, 300, 50)
        };

        let (full, met_full, _) = run(HistoryMode::Full);
        let (ring, met_ring, _) = run(HistoryMode::LastN(64));
        let (off, met_off, _) = run(HistoryMode::Off);

        // Telemetry retention never influences decisions.
        assert_eq!(met_full, met_ring);
        assert_eq!(met_full, met_off);
        assert_eq!(full.exploration_count(), ring.exploration_count());
        assert_eq!(full.exploration_count(), off.exploration_count());

        // Retention semantics: Full keeps everything, LastN the recent
        // tail (chronological, identical to Full's tail), Off nothing.
        assert_eq!(full.history().len(), 300);
        assert_eq!(ring.history().len(), 64);
        assert!(off.history().is_empty());
        assert_eq!(ring.history(), &full.history()[300 - 64..]);
        assert_eq!(ring.history_mode(), HistoryMode::LastN(64));
    }

    #[test]
    fn last_n_ring_is_chronological_below_capacity() {
        let mut app = SyntheticWorkload::constant(
            "steady",
            Cycles::from_mcycles(120),
            SimTime::from_ms(40),
            40,
            4,
            2,
        );
        let config = RtmConfig::paper(1).with_history(HistoryMode::LastN(64));
        let rtm = RtmGovernor::new(config).unwrap();
        let (rtm, _, _) = drive(rtm, &mut app, 40, 0);
        assert_eq!(rtm.history().len(), 40);
        let epochs: Vec<u64> = rtm.history().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn misprediction_helper() {
        let mut r = EpochRecord {
            epoch: 0,
            predicted_total_cycles: 110.0,
            actual_total_cycles: 100.0,
            frame_slack: 0.0,
            avg_slack: 0.0,
            state: 0,
            action: 0,
            epsilon: 1.0,
            explorations: 0,
        };
        assert!((r.misprediction() - 0.1).abs() < 1e-12);
        r.predicted_total_cycles = 0.0;
        assert_eq!(r.misprediction(), 0.0);
    }
}
