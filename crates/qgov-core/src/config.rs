//! RTM configuration.

use crate::OverheadModel;
use qgov_rl::{DecayingEpsilon, RlError, SlackReward};

/// Which exploration policy drives action selection during learning.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplorationKind {
    /// The paper's slack-aware Exponential Probability Distribution
    /// (Eq. 2).
    Epd {
        /// Uniform base probability λ.
        lambda: f64,
        /// Slack-bias sharpness β.
        beta: f64,
    },
    /// Uniform random exploration — the prior-work baseline \[21\]
    /// (Shen et al., TODAES 2013) that Table II compares against.
    Upd,
    /// Boltzmann exploration over Q-values (ablation extra).
    Softmax {
        /// Temperature τ.
        temperature: f64,
    },
}

/// How much per-epoch telemetry ([`EpochRecord`](crate::EpochRecord))
/// the RTM retains.
///
/// The paper's analyses (Fig. 3 series, the smoothing ablation's
/// misprediction statistics) read the **full** history, but a 100k+
/// frame long-horizon run must not grow O(frames) memory just to keep
/// telemetry nobody reads. The mode never influences decisions — only
/// what [`RtmGovernor::history`](crate::RtmGovernor::history) can
/// return afterwards — so experiment reports are bit-identical across
/// modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryMode {
    /// Keep every epoch's record (the default; O(frames) memory).
    Full,
    /// Keep (at least) the most recent `N` records in a bounded buffer
    /// (at most `2N` resident; amortised O(1), allocation-free after
    /// warm-up). The long-horizon experiments use this.
    LastN(usize),
    /// Record nothing.
    Off,
}

impl HistoryMode {
    /// Validates the mode.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDimension`] for `LastN(0)` (use
    /// [`HistoryMode::Off`] to disable history).
    pub fn validate(&self) -> Result<(), RlError> {
        if let HistoryMode::LastN(n) = self {
            RlError::check_nonempty("history LastN window", *n)?;
        }
        Ok(())
    }
}

/// How the workload dimension of the Q-table state is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// Single-agent formulation of Section II-A applied to the whole
    /// V-F domain: the predicted **total** cycle count, discretised over
    /// the pre-characterised workload range. The natural choice on
    /// shared-rail hardware like the XU3's A15 cluster, and the
    /// default.
    TotalWorkload,
    /// The many-core formulation of Section II-D: per-core predicted
    /// workload normalised by the system total (Eq. 7), with one core's
    /// state/update per decision epoch in round-robin order on the
    /// shared Q-table.
    PerCoreShare,
}

/// Full parameterisation of the [`RtmGovernor`](crate::RtmGovernor).
#[derive(Debug, Clone, PartialEq)]
pub struct RtmConfig {
    /// Discretisation levels N for the workload dimension (paper: 5).
    pub workload_levels: usize,
    /// Discretisation levels N for the slack dimension (paper: 5).
    pub slack_levels: usize,
    /// Q-learning rate α (Eq. 3).
    pub alpha: f64,
    /// Q-learning discount factor γ (Eq. 3).
    pub discount: f64,
    /// EWMA smoothing factor γ (Eq. 1; paper: 0.6).
    pub smoothing: f64,
    /// Exploration policy (Eq. 2 by default).
    pub exploration: ExplorationKind,
    /// Exploration-probability schedule ε (Eq. 6).
    pub epsilon: DecayingEpsilon,
    /// Pay-off function (Eq. 4).
    pub reward: SlackReward,
    /// Sliding window for the average slack ratio `L` (Eq. 5);
    /// `None` is the strictly cumulative paper form.
    pub slack_window: Option<usize>,
    /// Quiet-window length for convergence detection (epochs).
    pub convergence_window: u64,
    /// Optimistic initial-Q gradient towards high frequencies: fresh
    /// states greedily start fast and crawl down through energy
    /// penalties rather than up through deadline misses (the learning
    /// analogue of the governor's maximum-frequency boot).
    pub optimistic_gradient: f64,
    /// Workload range `(min, max)` in cycles from offline
    /// pre-characterisation; `None` auto-calibrates during the first
    /// [`calibration_frames`](RtmConfig::calibration_frames).
    pub workload_bounds: Option<(f64, f64)>,
    /// Frames of online auto-calibration when no bounds are given.
    pub calibration_frames: usize,
    /// State formation (Section II-A vs II-D).
    pub state_kind: StateKind,
    /// Model for the RTM's own per-epoch compute cost (part of
    /// `T_OVH`).
    pub overhead: OverheadModel,
    /// How much per-epoch telemetry to retain (never affects
    /// decisions).
    pub history: HistoryMode,
    /// RNG seed for exploration sampling.
    pub seed: u64,
}

impl RtmConfig {
    /// The configuration reproducing the paper's reported setup:
    /// N = 5 workload and slack levels, EWMA γ = 0.6, EPD exploration,
    /// accelerated ε decay, slack-peaked reward.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        RtmConfig {
            workload_levels: 5,
            slack_levels: 5,
            alpha: 0.3,
            discount: 0.5,
            smoothing: 0.6,
            exploration: ExplorationKind::Epd {
                lambda: 1.0 / 19.0,
                beta: 2.0,
            },
            epsilon: DecayingEpsilon::paper(),
            reward: SlackReward::paper(),
            // A short window keeps L responsive enough for per-action
            // credit assignment; Eq. 5's unbounded mean is available via
            // `slack_window: None` (the paper bounds D by restarting it
            // whenever T_ref changes).
            slack_window: Some(8),
            convergence_window: 20,
            optimistic_gradient: 0.05,
            workload_bounds: None,
            calibration_frames: 16,
            state_kind: StateKind::TotalWorkload,
            overhead: OverheadModel::typical(),
            history: HistoryMode::Full,
            seed,
        }
    }

    /// The uniform-exploration baseline of Table II (\[21\], Shen et
    /// al.): identical to [`paper`](RtmConfig::paper) except UPD
    /// exploration and the standard (slower) ε decay — isolating
    /// exactly the exploration-policy difference the paper measures.
    #[must_use]
    pub fn upd_baseline(seed: u64) -> Self {
        RtmConfig {
            exploration: ExplorationKind::Upd,
            epsilon: DecayingEpsilon::new(1.0, 0.03, 0.01).expect("valid schedule"),
            ..Self::paper(seed)
        }
    }

    /// Sets offline pre-characterised workload bounds (total cycles per
    /// frame), skipping online calibration.
    #[must_use]
    pub fn with_workload_bounds(mut self, min: f64, max: f64) -> Self {
        self.workload_bounds = Some((min, max));
        self
    }

    /// Sets the telemetry retention mode (see [`HistoryMode`]).
    #[must_use]
    pub fn with_history(mut self, history: HistoryMode) -> Self {
        self.history = history;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an [`RlError`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), RlError> {
        RlError::check_nonempty("workload_levels", self.workload_levels)?;
        RlError::check_nonempty("slack_levels", self.slack_levels)?;
        RlError::check_probability("alpha", self.alpha)?;
        RlError::check_probability("discount", self.discount)?;
        RlError::check_probability("smoothing", self.smoothing)?;
        RlError::check_positive("smoothing", self.smoothing)?;
        RlError::check_nonempty("convergence_window", self.convergence_window as usize)?;
        if !(self.optimistic_gradient.is_finite() && self.optimistic_gradient >= 0.0) {
            return Err(RlError::NotPositive {
                name: "optimistic_gradient",
                value: self.optimistic_gradient.to_string(),
            });
        }
        match &self.exploration {
            ExplorationKind::Epd { lambda, beta } => {
                RlError::check_positive("lambda", *lambda)?;
                RlError::check_positive("beta", *beta)?;
            }
            ExplorationKind::Upd => {}
            ExplorationKind::Softmax { temperature } => {
                RlError::check_positive("temperature", *temperature)?;
            }
        }
        if let Some((min, max)) = self.workload_bounds {
            if !(min.is_finite() && max.is_finite() && min < max && min >= 0.0) {
                return Err(RlError::NotPositive {
                    name: "workload_bounds width",
                    value: format!("({min}, {max})"),
                });
            }
        } else {
            RlError::check_nonempty("calibration_frames", self.calibration_frames)?;
        }
        if let Some(w) = self.slack_window {
            RlError::check_nonempty("slack_window", w)?;
        }
        self.history.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_reported_constants() {
        let c = RtmConfig::paper(0);
        assert!(c.validate().is_ok());
        assert_eq!(c.workload_levels, 5, "paper uses N = 5");
        assert_eq!(c.slack_levels, 5);
        assert_eq!(c.smoothing, 0.6, "paper determines gamma = 0.6");
        assert!(matches!(c.exploration, ExplorationKind::Epd { .. }));
        assert_eq!(c.state_kind, StateKind::TotalWorkload);
    }

    #[test]
    fn upd_baseline_differs_only_in_exploration() {
        let ours = RtmConfig::paper(3);
        let upd = RtmConfig::upd_baseline(3);
        assert_eq!(upd.exploration, ExplorationKind::Upd);
        assert_eq!(ours.workload_levels, upd.workload_levels);
        assert_eq!(ours.reward, upd.reward);
        assert_eq!(ours.smoothing, upd.smoothing);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = RtmConfig::paper(0);
        c.workload_levels = 0;
        assert!(c.validate().is_err());

        let mut c = RtmConfig::paper(0);
        c.alpha = 1.5;
        assert!(c.validate().is_err());

        let mut c = RtmConfig::paper(0);
        c.smoothing = 0.0;
        assert!(c.validate().is_err());

        let mut c = RtmConfig::paper(0);
        c.exploration = ExplorationKind::Epd {
            lambda: 0.0,
            beta: 2.0,
        };
        assert!(c.validate().is_err());

        let mut c = RtmConfig::paper(0);
        c.workload_bounds = Some((10.0, 5.0));
        assert!(c.validate().is_err());

        let mut c = RtmConfig::paper(0);
        c.workload_bounds = None;
        c.calibration_frames = 0;
        assert!(c.validate().is_err());

        let mut c = RtmConfig::paper(0);
        c.slack_window = Some(0);
        assert!(c.validate().is_err());

        let mut c = RtmConfig::paper(0);
        c.history = HistoryMode::LastN(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn history_mode_defaults_to_full_and_builder_overrides() {
        let c = RtmConfig::paper(0);
        assert_eq!(c.history, HistoryMode::Full);
        let c = c.with_history(HistoryMode::LastN(64));
        assert_eq!(c.history, HistoryMode::LastN(64));
        assert!(c.validate().is_ok());
        assert!(HistoryMode::Off.validate().is_ok());
        assert!(HistoryMode::LastN(0).validate().is_err());
    }

    #[test]
    fn with_workload_bounds_sets_bounds() {
        let c = RtmConfig::paper(0).with_workload_bounds(1e6, 1e9);
        assert_eq!(c.workload_bounds, Some((1e6, 1e9)));
        assert!(c.validate().is_ok());
    }
}
