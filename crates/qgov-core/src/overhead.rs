//! The RTM's own compute-cost model.
//!
//! Section III-D decomposes the learning overhead into "(1) sensor
//! sampling comprising performance counter register accesses, (2)
//! processing and (3) V-F transitions". The V-F component is accounted
//! by the platform's [`VfController`](qgov_sim::VfController); this
//! model covers the first two, scaling with the number of cores sampled
//! and the Q-table row scanned per decision.

use qgov_units::SimTime;

/// Per-epoch sensing + processing cost of a learning governor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverheadModel {
    /// PMU register access cost per core.
    pub sample_per_core: SimTime,
    /// Fixed decision cost (slack update, reward, bookkeeping).
    pub base_processing: SimTime,
    /// Per-action cost of the Bellman update + argmax row scan.
    pub per_action: SimTime,
}

impl OverheadModel {
    /// Costs representative of a kernel-space governor on an A15:
    /// 5 µs per PMU sample, 15 µs fixed, 0.2 µs per action scanned.
    #[must_use]
    pub fn typical() -> Self {
        OverheadModel {
            sample_per_core: SimTime::from_us(5),
            base_processing: SimTime::from_us(15),
            per_action: SimTime::from_ns(200),
        }
    }

    /// A zero-cost model for ablations that isolate algorithmic
    /// behaviour from overhead effects.
    #[must_use]
    pub fn free() -> Self {
        OverheadModel {
            sample_per_core: SimTime::ZERO,
            base_processing: SimTime::ZERO,
            per_action: SimTime::ZERO,
        }
    }

    /// Total per-epoch cost for `cores` sampled cores and `actions`
    /// Q-table columns.
    #[must_use]
    pub fn cost(&self, cores: usize, actions: usize) -> SimTime {
        self.sample_per_core * cores as u64
            + self.base_processing
            + self.per_action * actions as u64
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_cost_is_tens_of_microseconds() {
        let cost = OverheadModel::typical().cost(4, 19);
        assert!(cost >= SimTime::from_us(30));
        assert!(cost <= SimTime::from_us(60), "got {cost}");
    }

    #[test]
    fn cost_scales_with_cores_and_actions() {
        let m = OverheadModel::typical();
        assert!(m.cost(8, 19) > m.cost(4, 19));
        assert!(m.cost(4, 40) > m.cost(4, 19));
    }

    #[test]
    fn free_model_costs_nothing() {
        assert_eq!(OverheadModel::free().cost(16, 100), SimTime::ZERO);
    }
}
