//! The chip-level RTM: one Q-agent per cluster plus greedy migration.
//!
//! The paper's RTM governs one V-F island. On a heterogeneous topology
//! each cluster gets its own [`RtmGovernor`] — same `StateMapper`
//! semantics, per-cluster Q-table sized to that cluster's own OPP
//! count — and a [`GreedyMigration`] policy rebalances the work shares
//! between clusters at epoch boundaries. Learning *what frequency to
//! run* stays per-cluster and model-free; *where work runs* is steered
//! by observed slack, temperature, and energy-per-cycle.

use crate::{GreedyMigration, MigrationConfig, RtmConfig, RtmGovernor};
use qgov_governors::{
    EpochObservation, Governor, GovernorContext, ManyCoreGovernor, ManyCoreObservation, VfDecision,
};
use qgov_rl::RlError;
use qgov_units::SimTime;

/// One Q-learning agent per cluster, coordinated by greedy task
/// migration — the learned-placement contender of the big.LITTLE and
/// mesh experiments.
#[derive(Debug)]
pub struct ManyCoreRtm {
    agents: Vec<RtmGovernor>,
    migration: GreedyMigration,
}

impl ManyCoreRtm {
    /// Builds one agent per configuration (cluster `c` runs
    /// `configs[c]`) with the given migration policy.
    ///
    /// # Errors
    ///
    /// Returns [`RlError`] if any per-cluster configuration is invalid,
    /// or [`RlError::EmptyDimension`] if `configs` is empty.
    pub fn new(configs: Vec<RtmConfig>, migration: MigrationConfig) -> Result<Self, RlError> {
        if configs.is_empty() {
            return Err(RlError::EmptyDimension { name: "clusters" });
        }
        let agents = configs
            .into_iter()
            .map(RtmGovernor::new)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ManyCoreRtm {
            agents,
            migration: GreedyMigration::new(migration),
        })
    }

    /// The paper's configuration on every cluster, with per-cluster
    /// decorrelated exploration seeds (`seed + c`), shared workload
    /// bounds, and the default greedy migration policy.
    ///
    /// The bounds should span the *chip-level* demand range: every
    /// cluster sees a migrating fraction of the total, so each agent's
    /// state mapper is given `(min × 0.05, max)` to keep small shares
    /// on-grid.
    ///
    /// # Errors
    ///
    /// Returns [`RlError`] as for [`new`](ManyCoreRtm::new).
    pub fn paper(seed: u64, clusters: usize, bounds: (f64, f64)) -> Result<Self, RlError> {
        let configs = (0..clusters)
            .map(|c| {
                RtmConfig::paper(seed.wrapping_add(c as u64))
                    .with_workload_bounds((bounds.0 * 0.05).max(1.0), bounds.1)
            })
            .collect();
        Self::new(configs, MigrationConfig::greedy())
    }

    /// The agent governing one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn agent(&self, cluster: usize) -> &RtmGovernor {
        &self.agents[cluster]
    }

    /// Mutable access to one cluster's agent — the hook for attaching a
    /// per-cluster monitor tap
    /// ([`RtmGovernor::attach_monitor`]).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn agent_mut(&mut self, cluster: usize) -> &mut RtmGovernor {
        &mut self.agents[cluster]
    }

    /// Number of per-cluster agents.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.agents.len()
    }

    /// Share moves performed by the migration policy so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migration.migrations()
    }
}

impl ManyCoreGovernor for ManyCoreRtm {
    fn name(&self) -> &str {
        "rtm-migrate"
    }

    fn init(&mut self, ctxs: &[GovernorContext], decisions: &mut Vec<VfDecision>) {
        assert_eq!(ctxs.len(), self.agents.len(), "one context per cluster");
        decisions.clear();
        for (agent, ctx) in self.agents.iter_mut().zip(ctxs) {
            decisions.push(agent.init(ctx));
        }
    }

    fn decide_into(
        &mut self,
        obs: &ManyCoreObservation<'_>,
        decisions: &mut Vec<VfDecision>,
        shares: &mut [f64],
    ) {
        decisions.clear();
        for (cluster, agent) in self.agents.iter_mut().enumerate() {
            decisions.push(agent.decide(&EpochObservation {
                frame: &obs.frames[cluster],
                epoch: obs.epoch,
            }));
        }
        self.migration.rebalance(obs.frames, shares);
    }

    fn processing_overhead(&self, cluster: usize) -> SimTime {
        self.agents[cluster].processing_overhead()
    }

    /// The chip-level ε is the maximum over the per-cluster agents —
    /// still monotone non-increasing, since every agent's schedule is.
    fn exploration_epsilon(&self) -> Option<f64> {
        self.agents
            .iter()
            .map(RtmGovernor::epsilon)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Converged once every per-cluster agent has converged.
    fn has_converged(&self) -> Option<bool> {
        Some(self.agents.iter().all(|a| a.converged_at().is_some()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::OppTable;

    #[test]
    fn builds_one_agent_per_cluster() {
        let rtm = ManyCoreRtm::paper(42, 2, (1e7, 1e9)).unwrap();
        assert_eq!(rtm.clusters(), 2);
        assert_eq!(rtm.migrations(), 0);
        assert!(ManyCoreRtm::new(Vec::new(), MigrationConfig::greedy()).is_err());
    }

    #[test]
    fn init_sizes_each_agent_to_its_cluster_action_space() {
        let mut rtm = ManyCoreRtm::paper(7, 2, (1e7, 1e9)).unwrap();
        let ctxs = vec![
            GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40)),
            GovernorContext::new(OppTable::odroid_xu3_a7(), 4, SimTime::from_ms(40)),
        ];
        let mut decisions = Vec::new();
        rtm.init(&ctxs, &mut decisions);
        assert_eq!(decisions.len(), 2);
        for (d, table) in decisions.iter().zip([19usize, 13]) {
            match d {
                VfDecision::Cluster(i) => assert!(*i < table),
                other => panic!("unexpected decision {other:?}"),
            }
        }
        // Decorrelated exploration seeds per cluster.
        assert!(rtm.agent(0).processing_overhead() > SimTime::ZERO);
    }
}
