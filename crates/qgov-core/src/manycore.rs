//! The chip-level RTM: one Q-agent per cluster plus greedy migration.
//!
//! The paper's RTM governs one V-F island. On a heterogeneous topology
//! each cluster gets its own [`RtmGovernor`] — same `StateMapper`
//! semantics, per-cluster Q-table sized to that cluster's own OPP
//! count — and a [`GreedyMigration`] policy rebalances the work shares
//! between clusters at epoch boundaries. Learning *what frequency to
//! run* stays per-cluster and model-free; *where work runs* is steered
//! by observed slack, temperature, and energy-per-cycle.

use crate::{GreedyMigration, MigrationConfig, RtmConfig, RtmGovernor};
use qgov_governors::{
    EpochObservation, Governor, GovernorContext, ManyCoreGovernor, ManyCoreObservation, VfDecision,
};
use qgov_rl::RlError;
use qgov_units::SimTime;

/// One Q-learning agent per cluster, coordinated by greedy task
/// migration — the learned-placement contender of the big.LITTLE and
/// mesh experiments.
#[derive(Debug)]
pub struct ManyCoreRtm {
    agents: Vec<RtmGovernor>,
    migration: GreedyMigration,
    /// Clusters reported dead via
    /// [`ManyCoreGovernor::notify_cluster_dead`]: their agents are
    /// frozen (no learning from garbage), their work share is drained
    /// to the survivors, and migration never routes work back to them.
    dead: Vec<bool>,
}

impl ManyCoreRtm {
    /// Builds one agent per configuration (cluster `c` runs
    /// `configs[c]`) with the given migration policy.
    ///
    /// # Errors
    ///
    /// Returns [`RlError`] if any per-cluster configuration is invalid,
    /// or [`RlError::EmptyDimension`] if `configs` is empty.
    pub fn new(configs: Vec<RtmConfig>, migration: MigrationConfig) -> Result<Self, RlError> {
        if configs.is_empty() {
            return Err(RlError::EmptyDimension { name: "clusters" });
        }
        let agents = configs
            .into_iter()
            .map(RtmGovernor::new)
            .collect::<Result<Vec<_>, _>>()?;
        let clusters = agents.len();
        Ok(ManyCoreRtm {
            agents,
            migration: GreedyMigration::new(migration),
            dead: vec![false; clusters],
        })
    }

    /// The paper's configuration on every cluster, with per-cluster
    /// decorrelated exploration seeds (`seed + c`), shared workload
    /// bounds, and the default greedy migration policy.
    ///
    /// The bounds should span the *chip-level* demand range: every
    /// cluster sees a migrating fraction of the total, so each agent's
    /// state mapper is given `(min × 0.05, max)` to keep small shares
    /// on-grid.
    ///
    /// # Errors
    ///
    /// Returns [`RlError`] as for [`new`](ManyCoreRtm::new).
    pub fn paper(seed: u64, clusters: usize, bounds: (f64, f64)) -> Result<Self, RlError> {
        let configs = (0..clusters)
            .map(|c| {
                RtmConfig::paper(seed.wrapping_add(c as u64))
                    .with_workload_bounds((bounds.0 * 0.05).max(1.0), bounds.1)
            })
            .collect();
        Self::new(configs, MigrationConfig::greedy())
    }

    /// Puts every per-cluster agent behind a
    /// [`PlausibilityFilter`](crate::PlausibilityFilter) with the given
    /// hardening — the chip-level form of
    /// [`RtmGovernor::with_hardening`].
    #[must_use]
    pub fn with_agent_hardening(mut self, hardening: crate::HardeningConfig) -> Self {
        self.agents = self
            .agents
            .into_iter()
            .map(|a| a.with_hardening(hardening))
            .collect();
        self
    }

    /// Total epochs any agent ran on substituted (quarantined) sensor
    /// data, summed over clusters. Zero without hardening.
    #[must_use]
    pub fn degraded_epochs(&self) -> u64 {
        self.agents.iter().map(RtmGovernor::degraded_epochs).sum()
    }

    /// Total epochs any agent spent in safe-state fallback, summed over
    /// clusters. Zero without hardening.
    #[must_use]
    pub fn safe_state_epochs(&self) -> u64 {
        self.agents.iter().map(RtmGovernor::safe_state_epochs).sum()
    }

    /// The agent governing one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn agent(&self, cluster: usize) -> &RtmGovernor {
        &self.agents[cluster]
    }

    /// Mutable access to one cluster's agent — the hook for attaching a
    /// per-cluster monitor tap
    /// ([`RtmGovernor::attach_monitor`]).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn agent_mut(&mut self, cluster: usize) -> &mut RtmGovernor {
        &mut self.agents[cluster]
    }

    /// Number of per-cluster agents.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.agents.len()
    }

    /// Share moves performed by the migration policy so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migration.migrations()
    }

    /// `true` if `cluster` has been reported dead.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster_dead(&self, cluster: usize) -> bool {
        self.dead[cluster]
    }

    /// Number of clusters currently reported dead.
    #[must_use]
    pub fn dead_clusters(&self) -> usize {
        self.dead.iter().filter(|d| **d).count()
    }
}

impl ManyCoreGovernor for ManyCoreRtm {
    fn name(&self) -> &str {
        "rtm-migrate"
    }

    fn init(&mut self, ctxs: &[GovernorContext], decisions: &mut Vec<VfDecision>) {
        assert_eq!(ctxs.len(), self.agents.len(), "one context per cluster");
        decisions.clear();
        self.dead.fill(false);
        for (agent, ctx) in self.agents.iter_mut().zip(ctxs) {
            decisions.push(agent.init(ctx));
        }
    }

    fn decide_into(
        &mut self,
        obs: &ManyCoreObservation<'_>,
        decisions: &mut Vec<VfDecision>,
        shares: &mut [f64],
    ) {
        // A freshly-reported dead cluster sheds its work share first,
        // so the survivors' agents see the extra demand this epoch.
        self.migration.drain_dead(shares, &self.dead);
        decisions.clear();
        for (cluster, agent) in self.agents.iter_mut().enumerate() {
            if self.dead[cluster] {
                // Frozen agent: no learning from a dead cluster's
                // garbage, and the (unpowered) cluster parks at its
                // lowest OPP. Re-parking each epoch is free — a
                // same-index retarget has zero transition cost.
                decisions.push(VfDecision::Cluster(0));
                continue;
            }
            decisions.push(agent.decide(&EpochObservation {
                frame: &obs.frames[cluster],
                epoch: obs.epoch,
            }));
        }
        self.migration
            .rebalance_masked(obs.frames, shares, &self.dead);
    }

    fn processing_overhead(&self, cluster: usize) -> SimTime {
        self.agents[cluster].processing_overhead()
    }

    /// The chip-level ε is the maximum over the per-cluster agents —
    /// still monotone non-increasing, since every agent's schedule is.
    fn exploration_epsilon(&self) -> Option<f64> {
        self.agents
            .iter()
            .map(RtmGovernor::epsilon)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Converged once every live per-cluster agent has converged (a
    /// dead cluster's frozen agent can never converge and no longer
    /// matters).
    fn has_converged(&self) -> Option<bool> {
        Some(
            self.agents
                .iter()
                .enumerate()
                .filter(|(c, _)| !self.dead[*c])
                .all(|(_, a)| a.converged_at().is_some()),
        )
    }

    fn notify_cluster_dead(&mut self, cluster: usize) {
        if cluster < self.dead.len() {
            self.dead[cluster] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_sim::OppTable;

    #[test]
    fn builds_one_agent_per_cluster() {
        let rtm = ManyCoreRtm::paper(42, 2, (1e7, 1e9)).unwrap();
        assert_eq!(rtm.clusters(), 2);
        assert_eq!(rtm.migrations(), 0);
        assert!(ManyCoreRtm::new(Vec::new(), MigrationConfig::greedy()).is_err());
    }

    #[test]
    fn init_sizes_each_agent_to_its_cluster_action_space() {
        let mut rtm = ManyCoreRtm::paper(7, 2, (1e7, 1e9)).unwrap();
        let ctxs = vec![
            GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40)),
            GovernorContext::new(OppTable::odroid_xu3_a7(), 4, SimTime::from_ms(40)),
        ];
        let mut decisions = Vec::new();
        rtm.init(&ctxs, &mut decisions);
        assert_eq!(decisions.len(), 2);
        for (d, table) in decisions.iter().zip([19usize, 13]) {
            match d {
                VfDecision::Cluster(i) => assert!(*i < table),
                other => panic!("unexpected decision {other:?}"),
            }
        }
        // Decorrelated exploration seeds per cluster.
        assert!(rtm.agent(0).processing_overhead() > SimTime::ZERO);
    }

    #[test]
    fn dead_cluster_is_frozen_drained_and_parked() {
        use qgov_sim::FrameResult;

        let mut rtm = ManyCoreRtm::paper(3, 2, (1e7, 1e9)).unwrap();
        let ctxs = vec![
            GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40)),
            GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40)),
        ];
        let mut decisions = Vec::new();
        rtm.init(&ctxs, &mut decisions);
        assert_eq!(rtm.dead_clusters(), 0);

        rtm.notify_cluster_dead(0);
        assert!(rtm.cluster_dead(0));
        assert_eq!(rtm.dead_clusters(), 1);

        let mut live_frame = FrameResult::empty();
        live_frame.period = SimTime::from_ms(40);
        live_frame.frame_time = SimTime::from_ms(30);
        live_frame.wall_time = SimTime::from_ms(40);
        live_frame.per_core_cycles = vec![qgov_units::Cycles::from_mcycles(30); 4];
        let frames = vec![live_frame.clone(), live_frame];
        let mut shares = vec![0.6, 0.4];
        rtm.decide_into(
            &ManyCoreObservation {
                frames: &frames,
                epoch: 0,
            },
            &mut decisions,
            &mut shares,
        );
        // The dead cluster parks at the lowest OPP and its share has
        // drained to the survivor.
        assert_eq!(decisions[0], VfDecision::Cluster(0));
        assert_eq!(shares[0], 0.0);
        assert!((shares[1] - 1.0).abs() < 1e-12);

        // Re-init revives everything.
        rtm.init(&ctxs, &mut decisions);
        assert_eq!(rtm.dead_clusters(), 0);
    }
}
