//! Q-table state formation: workload level × slack level.

use qgov_rl::{Discretizer, QuantileDiscretizer, RlError, UniformDiscretizer};

/// Maps continuous (workload, slack) measurements onto Q-table row
/// indices.
///
/// The workload dimension is discretised by the quantiles of
/// pre-characterisation samples (Section II-A's "pre-characterisation
/// of the applications … design space exploration"); the slack ratio
/// `L ∈ [−1, 1]` is discretised uniformly. For the many-core
/// formulation, per-core *shares* of the total workload (Eq. 7) are
/// discretised uniformly over `[0, 2/C]` — twice the fair share — so a
/// balanced system sits mid-scale.
///
/// # Examples
///
/// ```
/// use qgov_core::StateMapper;
///
/// let samples: Vec<f64> = (0..100).map(|i| 1e6 * f64::from(i)).collect();
/// let mapper = StateMapper::from_samples(&samples, 5, 5, 4).unwrap();
/// assert_eq!(mapper.states(), 25);
/// let low = mapper.state_for_total(1e6, -0.5);
/// let high = mapper.state_for_total(9.9e7, -0.5);
/// assert_ne!(low, high);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateMapper {
    workload: QuantileDiscretizer,
    share: UniformDiscretizer,
    slack: UniformDiscretizer,
}

impl StateMapper {
    /// Builds a mapper from pre-characterisation workload samples
    /// (total cycles per frame).
    ///
    /// # Errors
    ///
    /// Returns an [`RlError`] if any level count is zero or the samples
    /// are empty/non-finite.
    pub fn from_samples(
        samples: &[f64],
        workload_levels: usize,
        slack_levels: usize,
        cores: usize,
    ) -> Result<Self, RlError> {
        RlError::check_nonempty("cores", cores)?;
        Ok(StateMapper {
            workload: QuantileDiscretizer::from_samples(samples, workload_levels)?,
            share: UniformDiscretizer::new(0.0, 2.0 / cores as f64, workload_levels)?,
            slack: UniformDiscretizer::new(-1.0, 1.0 + 1e-12, slack_levels)?,
        })
    }

    /// Builds a mapper from a `(min, max)` workload range (offline
    /// pre-characterisation); equivalent to uniform binning of the
    /// range.
    ///
    /// # Errors
    ///
    /// Returns an [`RlError`] for an empty or inverted range or zero
    /// level counts.
    pub fn from_bounds(
        min: f64,
        max: f64,
        workload_levels: usize,
        slack_levels: usize,
        cores: usize,
    ) -> Result<Self, RlError> {
        if !(min.is_finite() && max.is_finite() && min < max) {
            return Err(RlError::NotPositive {
                name: "workload range width",
                value: format!("({min}, {max})"),
            });
        }
        // Uniformly spaced pseudo-samples make quantile == uniform bins.
        let n = (workload_levels * 16).max(64);
        let samples: Vec<f64> = (0..=n)
            .map(|i| min + (max - min) * i as f64 / n as f64)
            .collect();
        Self::from_samples(&samples, workload_levels, slack_levels, cores)
    }

    /// Number of workload levels.
    #[must_use]
    pub fn workload_levels(&self) -> usize {
        self.workload.levels()
    }

    /// Number of slack levels.
    #[must_use]
    pub fn slack_levels(&self) -> usize {
        self.slack.levels()
    }

    /// Total number of Q-table states, `|S| = N_workload × N_slack`.
    #[must_use]
    pub fn states(&self) -> usize {
        self.workload.levels() * self.slack.levels()
    }

    /// State index for a predicted **total** workload (cycles) and
    /// average slack (Section II-A formulation).
    #[must_use]
    pub fn state_for_total(&self, total_cycles: f64, slack: f64) -> usize {
        let w = self.workload.level_of(total_cycles);
        let l = self.slack.level_of(slack);
        w * self.slack.levels() + l
    }

    /// State index for one core's normalised workload share (Eq. 7) and
    /// average slack (Section II-D formulation).
    #[must_use]
    pub fn state_for_share(&self, share: f64, slack: f64) -> usize {
        let w = self.share.level_of(share);
        let l = self.slack.level_of(slack);
        w * self.slack.levels() + l
    }

    /// Normalises per-core predicted workloads by the system total —
    /// Eq. 7. A zero total yields equal shares.
    #[must_use]
    pub fn normalize_shares(predictions: &[f64]) -> Vec<f64> {
        let total: f64 = predictions.iter().sum();
        if total <= 0.0 {
            return vec![1.0 / predictions.len().max(1) as f64; predictions.len()];
        }
        predictions.iter().map(|&p| p / total).collect()
    }

    /// One core's Eq. 7 share, computed scalar — bit-identical to
    /// `normalize_shares(predictions)[core]` without materialising the
    /// share vector (the RTM's allocation-free per-epoch path).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range of a non-empty `predictions`.
    #[must_use]
    pub fn share_of(predictions: &[f64], core: usize) -> f64 {
        let total: f64 = predictions.iter().sum();
        if total <= 0.0 {
            return 1.0 / predictions.len().max(1) as f64;
        }
        predictions[core] / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> StateMapper {
        StateMapper::from_bounds(0.0, 100.0, 5, 5, 4).unwrap()
    }

    #[test]
    fn state_space_size_is_product() {
        assert_eq!(mapper().states(), 25);
        let m = StateMapper::from_bounds(0.0, 1.0, 3, 7, 4).unwrap();
        assert_eq!(m.states(), 21);
    }

    #[test]
    fn distinct_dimensions_produce_distinct_states() {
        let m = mapper();
        let s1 = m.state_for_total(10.0, 0.0);
        let s2 = m.state_for_total(90.0, 0.0);
        let s3 = m.state_for_total(10.0, 0.9);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s2, s3);
    }

    #[test]
    fn all_states_are_in_range() {
        let m = mapper();
        for wl in [-10.0, 0.0, 25.0, 50.0, 99.0, 1e9] {
            for sl in [-5.0, -1.0, -0.2, 0.0, 0.4, 1.0, 5.0] {
                assert!(m.state_for_total(wl, sl) < m.states());
                assert!(m.state_for_share(wl / 100.0, sl) < m.states());
            }
        }
    }

    #[test]
    fn balanced_share_sits_mid_scale() {
        let m = mapper();
        // Fair share on 4 cores = 0.25 over [0, 0.5]: level 2 of 5.
        let s = m.state_for_share(0.25, 0.0);
        let expected_level = 2;
        assert_eq!(s / m.slack_levels(), expected_level);
    }

    #[test]
    fn normalize_shares_matches_equation_seven() {
        let shares = StateMapper::normalize_shares(&[10.0, 30.0, 40.0, 20.0]);
        assert_eq!(shares, vec![0.1, 0.3, 0.4, 0.2]);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_gives_equal_shares() {
        let shares = StateMapper::normalize_shares(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(shares, vec![0.25; 4]);
    }

    #[test]
    fn share_of_is_bit_identical_to_indexed_normalize_shares() {
        for preds in [
            vec![10.0, 30.0, 40.0, 20.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.0e17, 3.0, 0.5, 7.7],
            vec![5.0],
        ] {
            let shares = StateMapper::normalize_shares(&preds);
            for (core, share) in shares.iter().enumerate() {
                assert_eq!(
                    StateMapper::share_of(&preds, core).to_bits(),
                    share.to_bits(),
                    "core {core} of {preds:?}"
                );
            }
        }
    }

    #[test]
    fn quantile_mapper_balances_skewed_workloads() {
        // Cubic-skewed samples: quantile boundaries still split evenly.
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64).powi(3)).collect();
        let m = StateMapper::from_samples(&samples, 5, 5, 4).unwrap();
        let mut counts = [0usize; 5];
        for &s in &samples {
            counts[m.state_for_total(s, 0.0) / m.slack_levels()] += 1;
        }
        for &c in &counts {
            assert!((150..=250).contains(&c), "unbalanced {counts:?}");
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(StateMapper::from_samples(&[], 5, 5, 4).is_err());
        assert!(StateMapper::from_bounds(1.0, 1.0, 5, 5, 4).is_err());
        assert!(StateMapper::from_bounds(0.0, 1.0, 0, 5, 4).is_err());
        assert!(StateMapper::from_bounds(0.0, 1.0, 5, 0, 4).is_err());
        assert!(StateMapper::from_bounds(0.0, 1.0, 5, 5, 0).is_err());
    }
}
