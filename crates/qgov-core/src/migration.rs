//! Greedy slack/temperature-driven task migration between clusters.
//!
//! At each epoch boundary the chip-level coordinator may move a small
//! fraction of the application's work share from one cluster to another.
//! The policy here is deliberately simple and deterministic — the
//! learned intelligence stays in the per-cluster Q-agents, and migration
//! only steers *where* work lands:
//!
//! 1. **Deadline rescue.** If some cluster is missing (or about to
//!    miss) its deadline, shed a share step from the worst-slack
//!    cluster onto the best-slack cluster that is thermally safe.
//! 2. **Energy consolidation.** Once every cluster has comfortable
//!    slack, drift work from the least energy-efficient cluster
//!    (highest observed J/cycle) towards the most efficient one that
//!    still has slack headroom and thermal margin — on a big.LITTLE
//!    part this is what moves steady work onto the LITTLE cores.
//!
//! Both moves are bounded by a per-epoch share step, tie-break on the
//! lowest cluster index, and never touch the heap.

use qgov_sim::FrameResult;
use qgov_units::Temp;

/// Tuning knobs for [`GreedyMigration`].
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationConfig {
    /// Fraction of the total work share moved per migration (0 < step ≤ 1).
    pub step: f64,
    /// A cluster only receives work while below this die temperature.
    pub temp_cap: Temp,
    /// A cluster with frame slack below this donates work (deadline
    /// rescue); a rescue receiver must sit above it.
    pub slack_floor: f64,
    /// Energy consolidation only runs while every active cluster's
    /// slack exceeds this guard, and only towards receivers that keep
    /// exceeding it.
    pub guard_slack: f64,
    /// Consolidation hysteresis: the donor's J/cycle must exceed the
    /// receiver's by this relative margin before work moves.
    pub hysteresis: f64,
}

impl MigrationConfig {
    /// The defaults used by the big.LITTLE experiments: 5 % share
    /// steps, an 85 °C receive cap, rescue below 2 % slack, consolidate
    /// only into ≥ 15 % slack, 10 % efficiency hysteresis.
    #[must_use]
    pub fn greedy() -> Self {
        MigrationConfig {
            step: 0.05,
            temp_cap: Temp::from_celsius(85.0),
            slack_floor: 0.02,
            guard_slack: 0.15,
            hysteresis: 0.10,
        }
    }
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self::greedy()
    }
}

/// The greedy migration policy: inspects each epoch's per-cluster
/// [`FrameResult`]s and nudges the work-share vector.
#[derive(Debug, Clone)]
pub struct GreedyMigration {
    config: MigrationConfig,
    migrations: u64,
}

impl GreedyMigration {
    /// Creates the policy.
    #[must_use]
    pub fn new(config: MigrationConfig) -> Self {
        GreedyMigration {
            config,
            migrations: 0,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MigrationConfig {
        &self.config
    }

    /// Number of share moves performed so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Rebalances `shares` from this epoch's per-cluster results.
    /// Returns `true` if a share step moved. `frames` and `shares` are
    /// indexed by cluster; shares stay non-negative and their sum is
    /// preserved.
    pub fn rebalance(&mut self, frames: &[FrameResult], shares: &mut [f64]) -> bool {
        self.rebalance_masked(frames, shares, &[])
    }

    /// [`rebalance`](GreedyMigration::rebalance) with a dead-cluster
    /// mask: clusters flagged in `dead` are excluded as both donors and
    /// receivers (their frames report garbage or nothing at all, and
    /// work must never migrate onto them). `dead` may be shorter than
    /// the cluster count — missing entries mean alive — so the unmasked
    /// path passes `&[]` and behaves exactly as before.
    pub fn rebalance_masked(
        &mut self,
        frames: &[FrameResult],
        shares: &mut [f64],
        dead: &[bool],
    ) -> bool {
        let n = frames.len().min(shares.len());
        if n < 2 {
            return false;
        }

        if let Some((donor, receiver)) = self.rescue_pair(&frames[..n], &shares[..n], dead) {
            return self.transfer(shares, donor, receiver);
        }
        if let Some((donor, receiver)) = self.consolidation_pair(&frames[..n], &shares[..n], dead) {
            return self.transfer(shares, donor, receiver);
        }
        false
    }

    /// Drains the work share of every dead cluster onto the survivors
    /// (proportionally to their current shares, or evenly if the
    /// survivors hold nothing). Returns `true` if any share moved; a
    /// drain counts as one migration. No-op when nothing is dead or
    /// nothing is alive to receive.
    pub fn drain_dead(&mut self, shares: &mut [f64], dead: &[bool]) -> bool {
        let is_dead = |c: usize| dead.get(c).copied().unwrap_or(false);
        let orphaned: f64 = shares
            .iter()
            .enumerate()
            .filter(|&(c, share)| is_dead(c) && *share > 0.0)
            .map(|(_, share)| *share)
            .sum();
        let alive = shares.len() - (0..shares.len()).filter(|&c| is_dead(c)).count();
        if orphaned <= 0.0 || alive == 0 {
            return false;
        }
        let alive_total: f64 = shares
            .iter()
            .enumerate()
            .filter(|&(c, _)| !is_dead(c))
            .map(|(_, share)| *share)
            .sum();
        for (c, share) in shares.iter_mut().enumerate() {
            if is_dead(c) {
                *share = 0.0;
            } else if alive_total > 0.0 {
                *share += orphaned * (*share / alive_total);
            } else {
                *share += orphaned / alive as f64;
            }
        }
        self.migrations += 1;
        true
    }

    /// Deadline rescue: worst-slack active cluster below the floor
    /// donates to the best-slack thermally-safe cluster above it.
    fn rescue_pair(
        &self,
        frames: &[FrameResult],
        shares: &[f64],
        dead: &[bool],
    ) -> Option<(usize, usize)> {
        let is_dead = |c: usize| dead.get(c).copied().unwrap_or(false);
        let mut donor: Option<usize> = None;
        for (c, frame) in frames.iter().enumerate() {
            if is_dead(c) || shares[c] <= 0.0 || frame.frame_slack() >= self.config.slack_floor {
                continue;
            }
            if donor.is_none_or(|d| frame.frame_slack() < frames[d].frame_slack()) {
                donor = Some(c);
            }
        }
        let donor = donor?;

        let mut receiver: Option<usize> = None;
        for (c, frame) in frames.iter().enumerate() {
            if c == donor
                || is_dead(c)
                || frame.frame_slack() <= self.config.slack_floor
                || frame.temperature >= self.config.temp_cap
            {
                continue;
            }
            if receiver.is_none_or(|r| frame.frame_slack() > frames[r].frame_slack()) {
                receiver = Some(c);
            }
        }
        receiver.map(|r| (donor, r))
    }

    /// Energy consolidation: while every active cluster has slack above
    /// the guard, the worst-J/cycle cluster donates to the best one
    /// with thermal margin and slack headroom.
    fn consolidation_pair(
        &self,
        frames: &[FrameResult],
        shares: &[f64],
        dead: &[bool],
    ) -> Option<(usize, usize)> {
        let is_dead = |c: usize| dead.get(c).copied().unwrap_or(false);
        for (c, frame) in frames.iter().enumerate() {
            if !is_dead(c) && shares[c] > 0.0 && frame.frame_slack() < self.config.guard_slack {
                return None;
            }
        }

        let mut donor: Option<(usize, f64)> = None;
        let mut receiver: Option<(usize, f64)> = None;
        for (c, frame) in frames.iter().enumerate() {
            if is_dead(c) {
                continue;
            }
            let cycles = frame.total_cycles().count() as f64;
            if cycles <= 0.0 {
                continue;
            }
            let cost = frame.energy.as_joules() / cycles;
            if shares[c] > 0.0 && donor.is_none_or(|(_, worst)| cost > worst) {
                donor = Some((c, cost));
            }
            if frame.frame_slack() > self.config.guard_slack
                && frame.temperature < self.config.temp_cap
                && receiver.is_none_or(|(_, best)| cost < best)
            {
                receiver = Some((c, cost));
            }
        }
        let (donor, donor_cost) = donor?;
        let (receiver, receiver_cost) = receiver?;
        if receiver == donor || donor_cost <= receiver_cost * (1.0 + self.config.hysteresis) {
            return None;
        }
        Some((donor, receiver))
    }

    fn transfer(&mut self, shares: &mut [f64], donor: usize, receiver: usize) -> bool {
        let delta = self.config.step.min(shares[donor]);
        if delta <= 0.0 {
            return false;
        }
        shares[donor] -= delta;
        shares[receiver] += delta;
        self.migrations += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_units::{Energy, SimTime};

    fn frame(slack: f64, joules_per_cycle: f64, temp_c: f64) -> FrameResult {
        let period = SimTime::from_ms(40);
        let mut f = FrameResult::empty();
        f.period = period;
        f.frame_time = SimTime::from_secs_f64(period.as_secs_f64() * (1.0 - slack));
        f.per_core_cycles = vec![qgov_units::Cycles::new(1_000_000)];
        f.energy = Energy::from_joules(joules_per_cycle * 1_000_000.0);
        f.temperature = Temp::from_celsius(temp_c);
        f
    }

    #[test]
    fn rescue_moves_share_from_missing_to_slack_cluster() {
        let mut policy = GreedyMigration::new(MigrationConfig::greedy());
        let frames = [frame(-0.2, 1e-9, 60.0), frame(0.5, 1e-9, 60.0)];
        let mut shares = [0.5, 0.5];
        assert!(policy.rebalance(&frames, &mut shares));
        assert!((shares[0] - 0.45).abs() < 1e-12);
        assert!((shares[1] - 0.55).abs() < 1e-12);
        assert_eq!(policy.migrations(), 1);
    }

    #[test]
    fn rescue_respects_the_thermal_cap() {
        let mut policy = GreedyMigration::new(MigrationConfig::greedy());
        let frames = [frame(-0.2, 1e-9, 60.0), frame(0.5, 1e-9, 95.0)];
        let mut shares = [0.5, 0.5];
        assert!(!policy.rebalance(&frames, &mut shares));
        assert_eq!(shares, [0.5, 0.5]);
    }

    #[test]
    fn consolidation_drifts_work_to_the_efficient_cluster() {
        let mut policy = GreedyMigration::new(MigrationConfig::greedy());
        // Both comfortably slack; cluster 0 burns 4x the J/cycle.
        let frames = [frame(0.4, 4e-9, 60.0), frame(0.4, 1e-9, 60.0)];
        let mut shares = [0.6, 0.4];
        assert!(policy.rebalance(&frames, &mut shares));
        assert!((shares[0] - 0.55).abs() < 1e-12);
        assert!((shares[1] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn consolidation_waits_for_slack_everywhere() {
        let mut policy = GreedyMigration::new(MigrationConfig::greedy());
        // Cluster 1 is efficient but tight on slack: nothing moves.
        let frames = [frame(0.4, 4e-9, 60.0), frame(0.05, 1e-9, 60.0)];
        let mut shares = [0.6, 0.4];
        assert!(!policy.rebalance(&frames, &mut shares));
    }

    #[test]
    fn hysteresis_blocks_near_tie_shuffling() {
        let mut policy = GreedyMigration::new(MigrationConfig::greedy());
        let frames = [frame(0.4, 1.05e-9, 60.0), frame(0.4, 1e-9, 60.0)];
        let mut shares = [0.5, 0.5];
        assert!(!policy.rebalance(&frames, &mut shares));
    }

    #[test]
    fn shares_stay_normalised_and_non_negative() {
        let mut policy = GreedyMigration::new(MigrationConfig {
            step: 0.3,
            ..MigrationConfig::greedy()
        });
        let frames = [frame(-0.5, 1e-9, 60.0), frame(0.6, 1e-9, 60.0)];
        let mut shares = [0.1, 0.9];
        // Donor only has 0.1 to give: the step clamps.
        assert!(policy.rebalance(&frames, &mut shares));
        assert!((shares[0] - 0.0).abs() < 1e-12);
        assert!((shares[1] - 1.0).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Fully drained: nothing left to donate.
        assert!(!policy.rebalance(&frames, &mut shares));
    }

    #[test]
    fn dead_clusters_neither_donate_nor_receive() {
        let mut policy = GreedyMigration::new(MigrationConfig::greedy());
        // Cluster 1 is the obvious rescue receiver — unless it is dead.
        let frames = [frame(-0.2, 1e-9, 60.0), frame(0.5, 1e-9, 60.0)];
        let mut shares = [0.5, 0.5];
        assert!(!policy.rebalance_masked(&frames, &mut shares, &[false, true]));
        assert_eq!(shares, [0.5, 0.5]);

        // A dead cluster's garbage frame cannot make it a donor either.
        let frames = [frame(-0.9, 1e-9, 60.0), frame(0.5, 1e-9, 60.0)];
        let mut shares = [0.5, 0.5];
        assert!(!policy.rebalance_masked(&frames, &mut shares, &[true, false]));
        assert_eq!(shares, [0.5, 0.5]);
    }

    #[test]
    fn drain_dead_moves_share_to_survivors_proportionally() {
        let mut policy = GreedyMigration::new(MigrationConfig::greedy());
        let mut shares = [0.4, 0.3, 0.3];
        assert!(policy.drain_dead(&mut shares, &[true, false, false]));
        assert_eq!(shares[0], 0.0);
        assert!((shares[1] - 0.5).abs() < 1e-12);
        assert!((shares[2] - 0.5).abs() < 1e-12);
        assert_eq!(policy.migrations(), 1);
        // Already drained: no further moves.
        assert!(!policy.drain_dead(&mut shares, &[true, false, false]));
        assert_eq!(policy.migrations(), 1);

        // Survivors with zero share split the orphaned work evenly.
        let mut shares = [1.0, 0.0, 0.0];
        assert!(policy.drain_dead(&mut shares, &[true, false, false]));
        assert!((shares[1] - 0.5).abs() < 1e-12);
        assert!((shares[2] - 0.5).abs() < 1e-12);

        // Nothing alive: the share has nowhere to go.
        let mut shares = [1.0];
        assert!(!policy.drain_dead(&mut shares, &[true]));
        assert_eq!(shares, [1.0]);
    }

    #[test]
    fn single_cluster_never_migrates() {
        let mut policy = GreedyMigration::new(MigrationConfig::greedy());
        let frames = [frame(-0.5, 1e-9, 60.0)];
        let mut shares = [1.0];
        assert!(!policy.rebalance(&frames, &mut shares));
        assert_eq!(policy.migrations(), 0);
    }
}
