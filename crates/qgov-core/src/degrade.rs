//! Governor-side graceful degradation: sensor plausibility filtering
//! and the quarantine / safe-state fallback.
//!
//! The RTM's learning loop trusts three sensed quantities — per-core
//! PMU cycle counts (feeding the EWMA demand predictor), the die
//! temperature, and the power reading. A faulty platform can feed it
//! garbage on all three (see `qgov_sim::FaultInjector`), and a naive
//! governor will happily learn from it: a stuck-at-low PMU collapses
//! the demand prediction, the agent drops to a low OPP, and the
//! application misses deadlines for as long as the fault lasts.
//!
//! The hardened path ([`RtmGovernor::with_hardening`]) routes every
//! observation through a [`PlausibilityFilter`] first:
//!
//! * **range gates** — temperature, power, and cycle readings outside
//!   physically plausible bounds are rejected outright;
//! * **rate-of-change gates** — readings that jump implausibly fast
//!   relative to the last accepted value are rejected (a real die does
//!   not heat 20 °C in one 40 ms frame; real demand does not move 4×
//!   between adjacent frames of a smooth workload);
//! * **last-good substitution** — a rejected reading is replaced by the
//!   last accepted one, so the predictor keeps seeing a sane signal
//!   through a transient glitch;
//! * **quarantine → safe state** — after
//!   [`quarantine_threshold`](HardeningConfig::quarantine_threshold)
//!   *consecutive* rejections the filter declares the sensors
//!   untrustworthy; the governor stops learning and parks the cluster
//!   at the configured [`safe_opp`](HardeningConfig::safe_opp) (a
//!   deadline-conservative operating point) until a plausible reading
//!   arrives again.
//!
//! Frame timing (`frame_time`, and therefore slack and the reward) is
//! *not* filtered: the barrier time is scheduler-observable ground
//! truth, not a sensor reading, so it stays trustworthy even when
//! every sensor lies.
//!
//! [`RtmGovernor::with_hardening`]: crate::RtmGovernor::with_hardening

use qgov_sim::FrameResult;
use qgov_units::{Cycles, Temp};

/// Gates and fallback policy for a hardened RTM. Construct via
/// [`HardeningConfig::paper`] and adjust fields as needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardeningConfig {
    /// Temperature readings above this (°C) are implausible.
    pub max_temperature_c: f64,
    /// Temperature readings below this (°C) are implausible.
    pub min_temperature_c: f64,
    /// Largest credible temperature change (°C) between adjacent
    /// epochs.
    pub max_temp_step_c: f64,
    /// Power readings above this (watts) are implausible.
    pub max_power_w: f64,
    /// Largest credible ratio between adjacent epochs' total cycle
    /// counts (checked both ways: growth and collapse).
    pub max_cycle_ratio: f64,
    /// Consecutive implausible epochs before the sensors are
    /// quarantined and the governor drops to the safe state.
    pub quarantine_threshold: u32,
    /// Consecutive rejections after which the filter re-anchors its
    /// last-good reference to the next *range*-plausible reading even
    /// if the rate gates still fail. A rate gate compares against the
    /// last accepted reading; once that reference is many epochs stale
    /// the comparison is meaningless, and without re-anchoring a
    /// genuine persistent shift (a die that warmed 20 °C across a long
    /// quarantine) would be rejected forever. This bounds how long any
    /// single fault can hold the governor in the safe state.
    pub rebaseline_after: u32,
    /// OPP index to hold while quarantined. Values past the end of the
    /// platform's table are clamped to the top OPP, so `usize::MAX`
    /// means "fastest available" — the deadline-conservative choice.
    pub safe_opp: usize,
}

impl HardeningConfig {
    /// Gates sized for the paper's platform: 110 °C / −10 °C absolute
    /// temperature range, ≤ 15 °C per-epoch step, ≤ 50 W power, ≤ 4×
    /// cycle-count movement per epoch, quarantine after 5 consecutive
    /// rejections, re-anchor after 20, safe state at the top OPP.
    #[must_use]
    pub fn paper() -> Self {
        HardeningConfig {
            max_temperature_c: 110.0,
            min_temperature_c: -10.0,
            max_temp_step_c: 15.0,
            max_power_w: 50.0,
            max_cycle_ratio: 4.0,
            quarantine_threshold: 5,
            rebaseline_after: 20,
            safe_opp: usize::MAX,
        }
    }
}

impl Default for HardeningConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Stateful plausibility gate over a stream of sensed [`FrameResult`]s.
///
/// [`admit`](PlausibilityFilter::admit) either accepts a frame
/// (recording it as the new last-good reference) or patches its sensor
/// fields with last-good substitutes. Counters track how often and how
/// long the governor ran degraded; they feed the recovery metrics in
/// `qgov-metrics`.
#[derive(Debug, Clone)]
pub struct PlausibilityFilter {
    config: HardeningConfig,
    last_good_cycles: Vec<Cycles>,
    last_good_temp: Option<Temp>,
    consecutive_rejections: u32,
    degraded_epochs: u64,
    quarantine_entries: u64,
    rebaselines: u64,
}

impl PlausibilityFilter {
    /// A fresh filter (no last-good history yet; the first reading is
    /// range-checked only).
    #[must_use]
    pub fn new(config: HardeningConfig) -> Self {
        PlausibilityFilter {
            config,
            last_good_cycles: Vec::new(),
            last_good_temp: None,
            consecutive_rejections: 0,
            degraded_epochs: 0,
            quarantine_entries: 0,
            rebaselines: 0,
        }
    }

    /// The configured gates.
    #[must_use]
    pub fn config(&self) -> &HardeningConfig {
        &self.config
    }

    /// The absolute gates alone: values a healthy sensor could never
    /// report, regardless of history.
    fn range_plausible(&self, frame: &FrameResult) -> bool {
        let cfg = &self.config;
        let temp_c = frame.temperature.as_celsius();
        if !temp_c.is_finite() || temp_c > cfg.max_temperature_c || temp_c < cfg.min_temperature_c {
            return false;
        }
        let watts = frame.measured_power.as_watts();
        if !watts.is_finite() || watts < 0.0 || watts > cfg.max_power_w {
            return false;
        }
        let total: u64 = frame.per_core_cycles.iter().map(|c| c.count()).sum();
        // Zero retired cycles while the barrier took real time means
        // the PMUs dropped out, not that the chip did nothing.
        if total == 0 && !frame.frame_time.is_zero() {
            return false;
        }
        true
    }

    fn plausible(&self, frame: &FrameResult) -> bool {
        if !self.range_plausible(frame) {
            return false;
        }
        let cfg = &self.config;
        if let Some(last) = self.last_good_temp {
            let step = frame.temperature.as_celsius() - last.as_celsius();
            if step.abs() > cfg.max_temp_step_c {
                return false;
            }
        }
        if !self.last_good_cycles.is_empty() {
            let last_total: u64 = self.last_good_cycles.iter().map(|c| c.count()).sum();
            let total: u64 = frame.per_core_cycles.iter().map(|c| c.count()).sum();
            if last_total > 0 && total > 0 {
                let ratio = total as f64 / last_total as f64;
                if ratio > cfg.max_cycle_ratio || ratio < 1.0 / cfg.max_cycle_ratio {
                    return false;
                }
            }
        }
        true
    }

    /// Gates one sensed frame. Accepted frames update the last-good
    /// reference and return `true`. Rejected frames get their PMU and
    /// temperature fields overwritten with the last-good values (when
    /// any exist) and return `false`; timing fields are left alone.
    ///
    /// After [`rebaseline_after`](HardeningConfig::rebaseline_after)
    /// consecutive rejections the next range-plausible reading is
    /// accepted as a fresh baseline even if the rate gates still fail —
    /// the stale reference, not the reading, is presumed wrong.
    pub fn admit(&mut self, frame: &mut FrameResult) -> bool {
        let rebaseline = self.consecutive_rejections >= self.config.rebaseline_after
            && self.range_plausible(frame);
        if rebaseline || self.plausible(frame) {
            if rebaseline {
                self.rebaselines += 1;
            }
            self.last_good_cycles.clear();
            self.last_good_cycles
                .extend_from_slice(&frame.per_core_cycles);
            self.last_good_temp = Some(frame.temperature);
            self.consecutive_rejections = 0;
            return true;
        }
        self.degraded_epochs += 1;
        self.consecutive_rejections = self.consecutive_rejections.saturating_add(1);
        if self.consecutive_rejections == self.config.quarantine_threshold {
            self.quarantine_entries += 1;
        }
        if !self.last_good_cycles.is_empty() {
            frame.per_core_cycles.clear();
            frame
                .per_core_cycles
                .extend_from_slice(&self.last_good_cycles);
        }
        if let Some(last) = self.last_good_temp {
            frame.temperature = last;
        }
        false
    }

    /// `true` once [`quarantine_threshold`] consecutive readings have
    /// been rejected; cleared by the next accepted reading.
    ///
    /// [`quarantine_threshold`]: HardeningConfig::quarantine_threshold
    #[must_use]
    pub fn quarantined(&self) -> bool {
        self.consecutive_rejections >= self.config.quarantine_threshold
    }

    /// Total epochs that ran on substituted (or safe-state) data.
    #[must_use]
    pub fn degraded_epochs(&self) -> u64 {
        self.degraded_epochs
    }

    /// How many times the filter escalated to the quarantined safe
    /// state.
    #[must_use]
    pub fn quarantine_entries(&self) -> u64 {
        self.quarantine_entries
    }

    /// Rejections in the current consecutive run (0 when healthy).
    #[must_use]
    pub fn consecutive_rejections(&self) -> u32 {
        self.consecutive_rejections
    }

    /// How many times a stale reference was abandoned for a fresh
    /// range-plausible baseline.
    #[must_use]
    pub fn rebaselines(&self) -> u64 {
        self.rebaselines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgov_units::{Power, SimTime};

    fn healthy_frame() -> FrameResult {
        let mut f = FrameResult::empty();
        f.frame_time = SimTime::from_ms(30);
        f.wall_time = SimTime::from_ms(40);
        f.period = SimTime::from_ms(40);
        f.per_core_cycles = vec![Cycles::from_mcycles(30); 4];
        f.measured_power = Power::from_watts(2.5);
        f.temperature = Temp::from_celsius(55.0);
        f
    }

    #[test]
    fn healthy_stream_is_admitted_untouched() {
        let mut filter = PlausibilityFilter::new(HardeningConfig::paper());
        for _ in 0..10 {
            let mut f = healthy_frame();
            let before = f.clone();
            assert!(filter.admit(&mut f));
            assert_eq!(f, before);
        }
        assert_eq!(filter.degraded_epochs(), 0);
        assert!(!filter.quarantined());
    }

    #[test]
    fn stuck_pmu_is_rejected_and_substituted() {
        let mut filter = PlausibilityFilter::new(HardeningConfig::paper());
        let mut good = healthy_frame();
        assert!(filter.admit(&mut good));

        let mut bad = healthy_frame();
        bad.per_core_cycles.fill(Cycles::new(1000)); // stuck-at-low
        assert!(!filter.admit(&mut bad));
        // Last-good cycles were substituted in.
        assert_eq!(bad.per_core_cycles, good.per_core_cycles);
        // Timing is never touched.
        assert_eq!(bad.frame_time, SimTime::from_ms(30));
        assert_eq!(filter.degraded_epochs(), 1);
    }

    #[test]
    fn thermal_spike_and_out_of_range_are_rejected() {
        let mut filter = PlausibilityFilter::new(HardeningConfig::paper());
        let mut good = healthy_frame();
        assert!(filter.admit(&mut good));

        let mut spike = healthy_frame();
        spike.temperature = Temp::from_celsius(80.0); // +25 °C in one epoch
        assert!(!filter.admit(&mut spike));
        assert_eq!(spike.temperature.as_celsius(), 55.0);

        let mut wild = healthy_frame();
        wild.temperature = Temp::from_celsius(400.0);
        assert!(!filter.admit(&mut wild));
    }

    #[test]
    fn quarantine_engages_after_k_consecutive_and_clears_on_recovery() {
        let cfg = HardeningConfig::paper();
        let k = cfg.quarantine_threshold;
        let mut filter = PlausibilityFilter::new(cfg);
        let mut good = healthy_frame();
        assert!(filter.admit(&mut good));

        for i in 0..k {
            assert!(!filter.quarantined(), "not yet at rejection {i}");
            let mut bad = healthy_frame();
            bad.measured_power = Power::from_watts(500.0);
            filter.admit(&mut bad);
        }
        assert!(filter.quarantined());
        assert_eq!(filter.quarantine_entries(), 1);

        // Staying quarantined does not re-count entries.
        let mut bad = healthy_frame();
        bad.measured_power = Power::from_watts(500.0);
        filter.admit(&mut bad);
        assert!(filter.quarantined());
        assert_eq!(filter.quarantine_entries(), 1);

        let mut fine = healthy_frame();
        assert!(filter.admit(&mut fine));
        assert!(!filter.quarantined());
        assert_eq!(filter.consecutive_rejections(), 0);
    }

    #[test]
    fn persistent_genuine_shift_rebaselines_after_stale_window() {
        let cfg = HardeningConfig::paper();
        let mut filter = PlausibilityFilter::new(cfg);
        let mut good = healthy_frame();
        assert!(filter.admit(&mut good));

        // The die genuinely warmed 20 °C — every reading now fails the
        // rate gate against the stale 55 °C reference...
        let mut rejected = 0;
        loop {
            let mut warm = healthy_frame();
            warm.temperature = Temp::from_celsius(75.0);
            if filter.admit(&mut warm) {
                break;
            }
            rejected += 1;
            assert!(rejected <= cfg.rebaseline_after, "filter latched forever");
        }
        // ...until the stale window elapses and the filter re-anchors.
        assert_eq!(rejected, cfg.rebaseline_after);
        assert_eq!(filter.rebaselines(), 1);
        assert!(!filter.quarantined());

        // The new baseline is live: the same reading is now plausible.
        let mut warm = healthy_frame();
        warm.temperature = Temp::from_celsius(75.0);
        assert!(filter.admit(&mut warm));

        // A range-implausible reading can never become a baseline.
        let mut wild = healthy_frame();
        wild.measured_power = Power::from_watts(500.0);
        for _ in 0..=cfg.rebaseline_after {
            assert!(!filter.admit(&mut wild.clone()));
        }
    }

    #[test]
    fn first_reading_is_range_checked_only() {
        let mut filter = PlausibilityFilter::new(HardeningConfig::paper());
        // No history: a zero-cycle frame with real frame time is still
        // implausible by the range gate...
        let mut silent = healthy_frame();
        silent.per_core_cycles.fill(Cycles::ZERO);
        assert!(!filter.admit(&mut silent));
        // ...but an otherwise-sane first frame passes with no last-good
        // reference to compare against.
        let mut f = healthy_frame();
        assert!(filter.admit(&mut f));
    }
}
