//! The Q-learning run-time manager (RTM) of Biswas et al., DATE 2017.
//!
//! This crate is the paper's primary contribution: a power governor that
//! learns, online and model-free, which voltage–frequency setting meets
//! an application's performance requirement at minimum energy. Per
//! decision epoch (one application frame) the RTM:
//!
//! 1. computes the pay-off for the interval that just ended (Eq. 4,
//!    from the average slack ratio of Eq. 5 including learning/DVFS
//!    overhead);
//! 2. updates the shared Q-table entry of the previous state–action
//!    pair with Bellman's optimality equation (Eq. 3);
//! 3. predicts the next state — EWMA workload prediction (Eq. 1)
//!    crossed with the current slack level — and selects the V-F action
//!    for the coming interval: by the slack-aware Exponential
//!    Probability Distribution (Eq. 2) while exploring, greedily once
//!    the decaying ε (Eq. 6) hands over to exploitation.
//!
//! The many-core formulation (Section II-D) shares one Q-table among
//! all cores with one core's update per epoch in round-robin order,
//! using per-core workloads normalised by the system total (Eq. 7).
//!
//! # Example
//!
//! ```
//! use qgov_core::{RtmConfig, RtmGovernor};
//! use qgov_governors::{Governor, GovernorContext};
//! use qgov_sim::OppTable;
//! use qgov_units::SimTime;
//!
//! let mut rtm = RtmGovernor::new(RtmConfig::paper(42)).unwrap();
//! let ctx = GovernorContext::new(OppTable::odroid_xu3_a15(), 4, SimTime::from_ms(40));
//! let first = rtm.init(&ctx);
//! assert!(matches!(first, qgov_governors::VfDecision::Cluster(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod degrade;
mod manycore;
mod migration;
mod overhead;
mod rtm;
mod state;

pub use config::{ExplorationKind, HistoryMode, RtmConfig, StateKind};
pub use degrade::{HardeningConfig, PlausibilityFilter};
pub use manycore::ManyCoreRtm;
pub use migration::{GreedyMigration, MigrationConfig};
pub use overhead::OverheadModel;
pub use rtm::{EpochAgent, EpochRecord, RtmGovernor, RtmLane};
pub use state::StateMapper;
