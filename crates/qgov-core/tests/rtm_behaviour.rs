//! Behavioural scenario tests for the RTM: adaptation to workload
//! changes, performance-requirement sensitivity, and telemetry
//! integrity.

use qgov_core::{RtmConfig, RtmGovernor, StateKind};
use qgov_governors::{EpochObservation, Governor, GovernorContext};
use qgov_sim::{DvfsConfig, Platform, PlatformConfig, SensorConfig, WorkSlice};
use qgov_units::{Cycles, SimTime};
use qgov_workloads::{Application, SyntheticWorkload};

/// Drives an RTM against a live platform; returns per-epoch (opp, met)
/// pairs.
fn drive(rtm: &mut RtmGovernor, app: &mut dyn Application, frames: u64) -> Vec<(usize, bool)> {
    let mut platform = Platform::new(PlatformConfig {
        sensor: SensorConfig::ideal(),
        dvfs: DvfsConfig::typical(),
        ..PlatformConfig::odroid_xu3_a15()
    })
    .unwrap();
    let ctx = GovernorContext::new(platform.opp_table().clone(), platform.cores(), app.period());
    let first = rtm.init(&ctx);
    platform.set_cluster_opp(first.resolve_cluster(platform.current_opp()));
    app.reset();

    let mut log = Vec::new();
    for epoch in 0..frames {
        let demand = app.next_frame();
        let work: Vec<WorkSlice> = (0..platform.cores())
            .map(|c| {
                demand.threads.get(c).map_or(WorkSlice::IDLE, |t| {
                    WorkSlice::new(t.cpu_cycles, t.mem_time)
                })
            })
            .collect();
        let frame = platform.run_frame(&work, app.period()).unwrap();
        log.push((frame.cluster_opp, frame.met_deadline()));
        let d = rtm.decide(&EpochObservation {
            frame: &frame,
            epoch,
        });
        platform.set_cluster_opp(d.resolve_cluster(platform.current_opp()));
        platform.add_overhead(rtm.processing_overhead());
    }
    log
}

#[test]
fn adapts_to_a_step_workload_change() {
    // Workload doubles at frame 150: the RTM must track upward and keep
    // meeting deadlines after re-adapting.
    let mut app = SyntheticWorkload::step(
        "step",
        Cycles::from_mcycles(80),
        2.0,
        150,
        SimTime::from_ms(40),
        400,
        4,
        3,
    );
    let mut rtm = RtmGovernor::new(RtmConfig::paper(5).with_workload_bounds(5e7, 2.5e8)).unwrap();
    let log = drive(&mut rtm, &mut app, 400);

    let mean_opp = |range: std::ops::Range<usize>| -> f64 {
        log[range.clone()]
            .iter()
            .map(|&(o, _)| o as f64)
            .sum::<f64>()
            / range.len() as f64
    };
    let before = mean_opp(100..150);
    let after = mean_opp(300..400);
    assert!(
        after > before + 1.0,
        "post-step OPP ({after:.1}) must exceed pre-step ({before:.1})"
    );
    let late_misses = log[300..400].iter().filter(|&&(_, met)| !met).count();
    assert!(
        late_misses <= 10,
        "after re-adaptation deadlines should mostly hold ({late_misses} misses)"
    );
}

#[test]
fn tighter_deadlines_demand_higher_opps() {
    let run_with_period = |period_ms: u64| -> f64 {
        let mut app = SyntheticWorkload::constant(
            "fixed",
            Cycles::from_mcycles(120),
            SimTime::from_ms(period_ms),
            300,
            4,
            7,
        );
        let mut rtm =
            RtmGovernor::new(RtmConfig::paper(7).with_workload_bounds(1e8, 1.4e8)).unwrap();
        let log = drive(&mut rtm, &mut app, 300);
        log[200..].iter().map(|&(o, _)| o as f64).sum::<f64>() / 100.0
    };
    let relaxed = run_with_period(80);
    let tight = run_with_period(25);
    assert!(
        tight > relaxed + 2.0,
        "a 25 ms deadline needs higher OPPs than an 80 ms one ({tight:.1} vs {relaxed:.1})"
    );
}

#[test]
fn history_is_complete_and_internally_consistent() {
    let frames = 200u64;
    let mut app = SyntheticWorkload::constant(
        "c",
        Cycles::from_mcycles(100),
        SimTime::from_ms(40),
        frames,
        4,
        1,
    )
    .with_noise(0.1);
    let mut rtm = RtmGovernor::new(RtmConfig::paper(1).with_workload_bounds(5e7, 1.5e8)).unwrap();
    drive(&mut rtm, &mut app, frames);

    let history = rtm.history();
    assert_eq!(history.len(), frames as usize);
    for (i, r) in history.iter().enumerate() {
        assert_eq!(r.epoch, i as u64);
        assert!(r.action < 19);
        assert!(r.state < 25);
        assert!((0.0..=1.0).contains(&r.epsilon));
        assert!(r.actual_total_cycles > 0.0);
        assert!(r.avg_slack.is_finite());
    }
    // Epsilon is non-increasing; explorations are non-decreasing.
    for pair in history.windows(2) {
        assert!(pair[1].epsilon <= pair[0].epsilon + 1e-12);
        assert!(pair[1].explorations >= pair[0].explorations);
    }
}

#[test]
fn both_state_formulations_learn_the_same_steady_workload() {
    for kind in [StateKind::TotalWorkload, StateKind::PerCoreShare] {
        let mut app = SyntheticWorkload::constant(
            "c",
            Cycles::from_mcycles(120),
            SimTime::from_ms(40),
            300,
            4,
            9,
        );
        let mut config = RtmConfig::paper(9).with_workload_bounds(1e8, 1.4e8);
        config.state_kind = kind;
        let mut rtm = RtmGovernor::new(config).unwrap();
        let log = drive(&mut rtm, &mut app, 300);
        let misses = log[200..].iter().filter(|&&(_, met)| !met).count();
        assert!(
            misses <= 15,
            "{kind:?}: converged policy should hold deadlines ({misses} misses)"
        );
    }
}

#[test]
fn auto_calibration_matches_offline_bounds_eventually() {
    // Without offline bounds the RTM pre-characterises online; after
    // convergence both variants should settle at comparable OPPs.
    let make_app = || {
        SyntheticWorkload::constant(
            "c",
            Cycles::from_mcycles(120),
            SimTime::from_ms(40),
            400,
            4,
            11,
        )
        .with_noise(0.05)
    };
    let tail_mean = |log: &[(usize, bool)]| -> f64 {
        log[300..].iter().map(|&(o, _)| o as f64).sum::<f64>() / 100.0
    };

    let mut auto_rtm = RtmGovernor::new(RtmConfig::paper(2)).unwrap();
    let auto_log = drive(&mut auto_rtm, &mut make_app(), 400);
    assert!(
        auto_rtm.state_mapper().is_some(),
        "calibration must complete"
    );

    let mut offline_rtm =
        RtmGovernor::new(RtmConfig::paper(2).with_workload_bounds(1e8, 1.4e8)).unwrap();
    let offline_log = drive(&mut offline_rtm, &mut make_app(), 400);

    let diff = (tail_mean(&auto_log) - tail_mean(&offline_log)).abs();
    assert!(
        diff < 3.0,
        "auto-calibrated and offline-bounded RTMs should settle near each other (diff {diff:.1})"
    );
}

#[test]
fn second_init_fully_resets_learning() {
    let mut app = SyntheticWorkload::constant(
        "c",
        Cycles::from_mcycles(100),
        SimTime::from_ms(40),
        150,
        4,
        3,
    );
    let mut rtm = RtmGovernor::new(RtmConfig::paper(3).with_workload_bounds(5e7, 1.5e8)).unwrap();
    let first = drive(&mut rtm, &mut app, 150);
    let explorations_after_first = rtm.exploration_count();
    assert!(explorations_after_first > 0);

    // Re-init (new application arrives): everything restarts.
    let second = drive(&mut rtm, &mut app, 150);
    assert_eq!(rtm.history().len(), 150, "history restarted");
    assert_eq!(first, second, "identical app + fresh init = identical run");
}
