//! The exploration → exploitation transition schedule.

use crate::RlError;

/// Exponentially decaying exploration probability ε — Eq. 6 of the
/// paper:
///
/// ```text
/// εᵢ₊₁ = εᵢ · exp(−α)
/// ```
///
/// where α is "the learning factor per decision epoch". The decay
/// "accelerates the process of exploitation": after roughly `ln(ε₀/ε_min)/α`
/// epochs the agent is almost always greedy.
///
/// # Examples
///
/// ```
/// use qgov_rl::DecayingEpsilon;
///
/// let mut eps = DecayingEpsilon::new(1.0, 0.05, 0.01).unwrap();
/// assert_eq!(eps.value(), 1.0);
/// for _ in 0..200 { eps.step(); }
/// assert_eq!(eps.value(), 0.01); // clamped at the floor
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DecayingEpsilon {
    initial: f64,
    current: f64,
    decay_rate: f64,
    floor: f64,
}

impl DecayingEpsilon {
    /// Creates a schedule starting at `initial`, decaying by
    /// `exp(-decay_rate)` per epoch, never falling below `floor`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 ≤ floor ≤ initial ≤ 1` and
    /// `decay_rate > 0`.
    pub fn new(initial: f64, decay_rate: f64, floor: f64) -> Result<Self, RlError> {
        RlError::check_probability("initial", initial)?;
        RlError::check_probability("floor", floor)?;
        RlError::check_positive("decay_rate", decay_rate)?;
        if floor > initial {
            return Err(RlError::ProbabilityOutOfRange {
                name: "floor",
                value: format!("{floor} (exceeds initial {initial})"),
            });
        }
        Ok(DecayingEpsilon {
            initial,
            current: initial,
            decay_rate,
            floor,
        })
    }

    /// The schedule used throughout our reproduction: start fully
    /// exploratory (ε₀ = 1), decay rate 0.05 per epoch, 1 % residual
    /// exploration floor.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(1.0, 0.05, 0.01).expect("paper schedule constants are valid")
    }

    /// Current ε.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.current
    }

    /// The floor ε never decays below.
    #[must_use]
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The per-epoch decay rate α of Eq. 6.
    #[must_use]
    pub fn decay_rate(&self) -> f64 {
        self.decay_rate
    }

    /// Advances one decision epoch (applies Eq. 6 once) and returns the
    /// new ε.
    pub fn step(&mut self) -> f64 {
        self.current = (self.current * (-self.decay_rate).exp()).max(self.floor);
        self.current
    }

    /// Restarts the schedule from its initial value (used when the
    /// performance requirement changes and learning must restart).
    pub fn reset(&mut self) {
        self.current = self.initial;
    }

    /// Exploration probabilities below this are treated as "at the
    /// floor" even when the configured floor is lower (a floor of
    /// exactly zero is only reached asymptotically, which would make
    /// [`is_exploitation`](Self::is_exploitation) unreachable and
    /// [`epochs_to_floor`](Self::epochs_to_floor) saturate).
    const NEGLIGIBLE: f64 = 1e-6;

    /// Returns `true` once ε has reached its floor (or decayed to a
    /// negligible value) — the agent is in the paper's "exploitation
    /// phase".
    #[must_use]
    pub fn is_exploitation(&self) -> bool {
        self.current <= self.floor.max(Self::NEGLIGIBLE)
    }

    /// How many epochs until ε first reaches the floor (analytical).
    #[must_use]
    pub fn epochs_to_floor(&self) -> u64 {
        let target = self.floor.max(Self::NEGLIGIBLE);
        if self.initial <= target {
            return 0;
        }
        ((self.initial / target).ln() / self.decay_rate).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_matches_equation_six() {
        let mut eps = DecayingEpsilon::new(1.0, 0.1, 0.0001).unwrap();
        eps.step();
        assert!((eps.value() - (-0.1f64).exp()).abs() < 1e-12);
        eps.step();
        assert!((eps.value() - (-0.2f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn floor_is_respected() {
        let mut eps = DecayingEpsilon::new(0.5, 1.0, 0.2).unwrap();
        for _ in 0..10 {
            eps.step();
        }
        assert_eq!(eps.value(), 0.2);
        assert!(eps.is_exploitation());
    }

    #[test]
    fn epochs_to_floor_is_consistent_with_stepping() {
        let mut eps = DecayingEpsilon::new(1.0, 0.05, 0.01).unwrap();
        let analytic = eps.epochs_to_floor();
        let mut steps = 0;
        while !eps.is_exploitation() {
            eps.step();
            steps += 1;
        }
        assert_eq!(steps, analytic);
    }

    #[test]
    fn reset_restores_initial() {
        let mut eps = DecayingEpsilon::paper();
        for _ in 0..50 {
            eps.step();
        }
        eps.reset();
        assert_eq!(eps.value(), 1.0);
        assert!(!eps.is_exploitation());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(DecayingEpsilon::new(1.5, 0.1, 0.0).is_err());
        assert!(DecayingEpsilon::new(1.0, 0.0, 0.0).is_err());
        assert!(DecayingEpsilon::new(0.5, 0.1, 0.6).is_err()); // floor > initial
        assert!(DecayingEpsilon::new(1.0, -0.1, 0.0).is_err());
    }

    #[test]
    fn faster_decay_reaches_floor_sooner() {
        let slow = DecayingEpsilon::new(1.0, 0.02, 0.01).unwrap();
        let fast = DecayingEpsilon::new(1.0, 0.2, 0.01).unwrap();
        assert!(fast.epochs_to_floor() < slow.epochs_to_floor());
    }
}
