//! Fleet-scale structure-of-arrays substrate: every instance's Q-table
//! in one contiguous arena, plus the per-instance agent lanes that
//! drive them in lockstep.
//!
//! A fleet simulation steps N independent `(platform, workload, agent)`
//! instances one epoch at a time. Scattering N boxed [`QTable`]s across
//! the heap would make that epoch sweep pointer-chase per instance;
//! [`QArena`] instead lays the tables out instance-major in one flat
//! buffer (`values[instance][state][action]`), so the per-epoch sweep
//! and the batched [`row_best_across`](QArena::row_best_across) kernel
//! walk memory in address order.
//!
//! Bit-identity is by construction, not by accident: an arena lane and
//! a standalone [`QLearningAgent`](crate::QLearningAgent) share the
//! initial-table builder, the row-max fold, the Bellman mix and the
//! entire epoch body (`AgentCore::begin_epoch`, generic over the
//! crate's `QAccess` seam), so given identical seeds and inputs they
//! execute identical floating-point instruction sequences.

use crate::agent::{initial_table, AgentCore};
use crate::qtable::{bellman_mix, best_of_row, QAccess};
use crate::{ActionSpace, AgentConfig, ExplorationPolicy, QTable, RlError};

/// A dense instance × state × action Q-value arena: N Q-tables of one
/// shared shape in a single contiguous allocation, instance-major.
///
/// Per-instance visit and update counters ride along in parallel
/// arrays, mirroring [`QTable`]'s bookkeeping per instance.
#[derive(Debug, Clone, PartialEq)]
pub struct QArena {
    instances: usize,
    states: usize,
    actions: usize,
    values: Vec<f64>,
    visits: Vec<u64>,
    updates: Vec<u64>,
}

/// One instance's mutable window into a [`QArena`] — implements the
/// crate's `QAccess` seam so `AgentCore::begin_epoch` drives it through
/// the exact code path a standalone [`QTable`] takes.
pub(crate) struct InstanceView<'a> {
    values: &'a mut [f64],
    visits: &'a mut [u64],
    updates: &'a mut u64,
    states: usize,
    actions: usize,
}

impl InstanceView<'_> {
    #[inline]
    fn idx_fast(&self, state: usize, action: usize) -> usize {
        debug_assert!(
            state < self.states,
            "state {state} out of range (states = {})",
            self.states
        );
        debug_assert!(
            action < self.actions,
            "action {action} out of range (actions = {})",
            self.actions
        );
        state * self.actions + action
    }
}

impl QAccess for InstanceView<'_> {
    #[inline]
    fn row(&self, state: usize) -> &[f64] {
        let start = self.idx_fast(state, 0);
        &self.values[start..start + self.actions]
    }

    #[inline]
    fn row_best(&self, state: usize) -> (usize, f64) {
        let start = self.idx_fast(state, 0);
        best_of_row(&self.values[start..start + self.actions])
    }

    #[inline]
    fn update_unchecked(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        alpha: f64,
        discount: f64,
    ) {
        debug_assert!(
            (0.0..=1.0).contains(&alpha),
            "learning rate alpha must lie in [0, 1], got {alpha}"
        );
        debug_assert!(
            (0.0..=1.0).contains(&discount),
            "discount factor must lie in [0, 1], got {discount}"
        );
        debug_assert!(reward.is_finite(), "reward must be finite, got {reward}");
        let (_, future) = self.row_best(next_state);
        let i = self.idx_fast(state, action);
        self.values[i] = bellman_mix(self.values[i], reward, future, alpha, discount);
        self.visits[i] += 1;
        *self.updates += 1;
    }
}

impl QArena {
    /// An arena of `instances` copies of `template`'s values (zeroed
    /// visit/update counters) — every lane starts from the template's
    /// exact bits.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDimension`] if `instances` is zero.
    pub fn from_template(instances: usize, template: &QTable) -> Result<Self, RlError> {
        RlError::check_nonempty("instances", instances)?;
        let states = template.states();
        let actions = template.actions();
        let per = states * actions;
        let mut values = Vec::with_capacity(instances * per);
        for _ in 0..instances {
            for s in 0..states {
                values.extend_from_slice(template.row(s));
            }
        }
        Ok(QArena {
            instances,
            states,
            actions,
            values,
            visits: vec![0; instances * per],
            updates: vec![0; instances],
        })
    }

    /// An arena whose instance `i` starts from `templates[i]`'s values.
    /// All templates must share one `(states, actions)` shape.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDimension`] if `templates` is empty or
    /// if the template shapes disagree.
    ///
    /// # Panics
    ///
    /// Panics if the templates disagree on shape (a fleet programming
    /// error, caught eagerly).
    pub fn from_templates(templates: &[QTable]) -> Result<Self, RlError> {
        RlError::check_nonempty("instances", templates.len())?;
        let states = templates[0].states();
        let actions = templates[0].actions();
        assert!(
            templates
                .iter()
                .all(|t| t.states() == states && t.actions() == actions),
            "all fleet instances must share one (states, actions) Q-table shape"
        );
        let per = states * actions;
        let mut values = Vec::with_capacity(templates.len() * per);
        for t in templates {
            for s in 0..states {
                values.extend_from_slice(t.row(s));
            }
        }
        Ok(QArena {
            instances: templates.len(),
            states,
            actions,
            values,
            visits: vec![0; templates.len() * per],
            updates: vec![0; templates.len()],
        })
    }

    /// Number of instances (lanes).
    #[must_use]
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// States per instance.
    #[must_use]
    pub fn states(&self) -> usize {
        self.states
    }

    /// Actions per instance.
    #[must_use]
    pub fn actions(&self) -> usize {
        self.actions
    }

    #[inline]
    fn base(&self, instance: usize) -> usize {
        assert!(
            instance < self.instances,
            "instance {instance} out of range (instances = {})",
            self.instances
        );
        instance * self.states * self.actions
    }

    /// One instance's row of Q-values for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `instance` or `state` is out of range.
    #[must_use]
    pub fn row(&self, instance: usize, state: usize) -> &[f64] {
        assert!(
            state < self.states,
            "state {state} out of range (states = {})",
            self.states
        );
        let start = self.base(instance) + state * self.actions;
        &self.values[start..start + self.actions]
    }

    /// One instance's Q-value for `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn value(&self, instance: usize, state: usize, action: usize) -> f64 {
        assert!(
            action < self.actions,
            "action {action} out of range (actions = {})",
            self.actions
        );
        self.row(instance, state)[action]
    }

    /// One instance's visit count for `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn visit_count(&self, instance: usize, state: usize, action: usize) -> u64 {
        assert!(
            state < self.states && action < self.actions,
            "(state {state}, action {action}) out of range"
        );
        self.visits[self.base(instance) + state * self.actions + action]
    }

    /// Total Bellman updates applied to one instance.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range.
    #[must_use]
    pub fn update_count(&self, instance: usize) -> u64 {
        assert!(
            instance < self.instances,
            "instance {instance} out of range (instances = {})",
            self.instances
        );
        self.updates[instance]
    }

    /// One instance's mutable window (crate-internal: mutation from
    /// outside goes through [`AgentLanes::begin_epoch`]).
    pub(crate) fn view_mut(&mut self, instance: usize) -> InstanceView<'_> {
        let per = self.states * self.actions;
        let start = self.base(instance);
        InstanceView {
            values: &mut self.values[start..start + per],
            visits: &mut self.visits[start..start + per],
            updates: &mut self.updates[instance],
            states: self.states,
            actions: self.actions,
        }
    }

    /// `row_best` evaluated **across the instance axis**: for each
    /// instance `i`, the fused `(greedy_action, max_value)` of its row
    /// `states[i]`, appended to `out` in instance order. One linear
    /// sweep over the contiguous arena (instance-major layout means the
    /// visited rows are in ascending address order), allocation-free
    /// when `out` already has capacity for
    /// [`instances`](QArena::instances) entries.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != instances` or any state is out of
    /// range.
    pub fn row_best_across(&self, states: &[usize], out: &mut Vec<(usize, f64)>) {
        assert_eq!(
            states.len(),
            self.instances,
            "one state per instance required"
        );
        out.clear();
        out.reserve(self.instances);
        let per = self.states * self.actions;
        for (i, &s) in states.iter().enumerate() {
            assert!(
                s < self.states,
                "state {s} out of range (states = {})",
                self.states
            );
            let start = i * per + s * self.actions;
            out.push(best_of_row(&self.values[start..start + self.actions]));
        }
    }

    /// [`row_best_across`](QArena::row_best_across) with one broadcast
    /// state: every instance's greedy `(action, value)` at `state` —
    /// the cross-fleet policy-agreement probe.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn row_best_broadcast(&self, state: usize, out: &mut Vec<(usize, f64)>) {
        assert!(
            state < self.states,
            "state {state} out of range (states = {})",
            self.states
        );
        out.clear();
        out.reserve(self.instances);
        let per = self.states * self.actions;
        for i in 0..self.instances {
            let start = i * per + state * self.actions;
            out.push(best_of_row(&self.values[start..start + self.actions]));
        }
    }

    /// One instance's learnt greedy policy (one
    /// [`row_best`](QTable::row_best)-equivalent scan per state),
    /// written into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range.
    pub fn policy_into(&self, instance: usize, out: &mut Vec<usize>) {
        let base = self.base(instance);
        out.clear();
        out.reserve(self.states);
        for s in 0..self.states {
            let start = base + s * self.actions;
            out.push(best_of_row(&self.values[start..start + self.actions]).0);
        }
    }
}

/// The specification of one fleet lane: its learning configuration,
/// exploration policy and RNG seed. Configurations may differ between
/// lanes (e.g. different seeds, rewards or ε schedules) as long as
/// every lane shares the one `(states, actions)` arena shape.
pub struct LaneSpec {
    /// Learning hyper-parameters (validated at [`AgentLanes::new`]).
    pub config: AgentConfig,
    /// The lane's exploration policy.
    pub policy: Box<dyn ExplorationPolicy + Send>,
    /// The lane's RNG seed.
    pub seed: u64,
}

/// N Q-learning agents over one contiguous [`QArena`]: the
/// structure-of-arrays counterpart of N independent
/// [`QLearningAgent`](crate::QLearningAgent)s, stepping bit-identically
/// to them (shared initial tables, shared epoch body, shared kernels).
pub struct AgentLanes {
    arena: QArena,
    cores: Vec<AgentCore>,
}

impl core::fmt::Debug for AgentLanes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AgentLanes")
            .field("instances", &self.arena.instances)
            .field("states", &self.arena.states)
            .field("actions", &self.arena.actions)
            .finish()
    }
}

impl AgentLanes {
    /// Builds the lanes: per-lane initial tables packed into one arena,
    /// per-lane cores seeded independently.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty, any configuration is invalid, or
    /// `states` is zero — the same contract as
    /// [`QLearningAgent::with_policy`](crate::QLearningAgent::with_policy)
    /// per lane.
    #[must_use]
    pub fn new(states: usize, actions: &ActionSpace, lanes: Vec<LaneSpec>) -> Self {
        assert!(!lanes.is_empty(), "a fleet needs at least one lane");
        let templates: Vec<QTable> = lanes
            .iter()
            .map(|lane| {
                lane.config.validate().expect("invalid agent configuration");
                initial_table(&lane.config, states, actions)
            })
            .collect();
        let arena = QArena::from_templates(&templates).expect("non-empty lane list");
        let cores = lanes
            .into_iter()
            .map(|lane| AgentCore::new(&lane.config, actions.clone(), lane.policy, lane.seed))
            .collect();
        AgentLanes { arena, cores }
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// `false`: construction rejects empty fleets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shared Q arena (read access to every lane's values).
    #[must_use]
    pub fn arena(&self) -> &QArena {
        &self.arena
    }

    /// Runs one decision epoch for `instance` — the exact
    /// [`QLearningAgent::begin_epoch`](crate::QLearningAgent::begin_epoch)
    /// body over the lane's arena window.
    ///
    /// # Panics
    ///
    /// Panics if `instance` or `state` is out of range or `reward` is
    /// not finite.
    pub fn begin_epoch(&mut self, instance: usize, state: usize, reward: f64, slack: f64) -> usize {
        let mut view = self.arena.view_mut(instance);
        self.cores[instance].begin_epoch(&mut view, state, reward, slack)
    }

    /// One lane's current exploration probability ε.
    #[must_use]
    pub fn epsilon(&self, instance: usize) -> f64 {
        self.cores[instance].epsilon_value()
    }

    /// One lane's cumulative exploratory (non-greedy) selections.
    #[must_use]
    pub fn exploration_count(&self, instance: usize) -> u64 {
        self.cores[instance].exploration_count()
    }

    /// One lane's exploration count frozen at first convergence.
    #[must_use]
    pub fn explorations_to_convergence(&self, instance: usize) -> Option<u64> {
        self.cores[instance].explorations_to_convergence()
    }

    /// One lane's first convergence epoch, if reached.
    #[must_use]
    pub fn converged_at(&self, instance: usize) -> Option<u64> {
        self.cores[instance].converged_at()
    }

    /// Whether one lane's ε has decayed to its exploitation floor.
    #[must_use]
    pub fn is_exploitation(&self, instance: usize) -> bool {
        self.cores[instance].is_exploitation()
    }

    /// One lane's elapsed epochs.
    #[must_use]
    pub fn epochs(&self, instance: usize) -> u64 {
        self.cores[instance].epochs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecayingEpsilon, EpdPolicy, QLearningAgent, UniformPolicy};

    fn actions() -> ActionSpace {
        ActionSpace::from_freqs_ghz(&[0.2, 0.6, 1.0, 1.4, 2.0])
    }

    fn spec(seed: u64, gradient: f64) -> LaneSpec {
        LaneSpec {
            config: AgentConfig {
                optimistic_gradient: gradient,
                ..AgentConfig::default()
            },
            policy: Box::new(EpdPolicy::paper()),
            seed,
        }
    }

    /// A deterministic pseudo-driver: the same (state, reward, slack)
    /// sequence per instance, derived from the instance's own actions
    /// so the Q trajectories genuinely differ between seeds.
    fn drive<F: FnMut(usize, usize, f64, f64) -> usize>(
        instances: usize,
        epochs: u64,
        states: usize,
        mut step: F,
    ) -> Vec<Vec<usize>> {
        let mut traces = vec![Vec::new(); instances];
        let mut last = vec![0usize; instances];
        for e in 0..epochs {
            for i in 0..instances {
                let state = (e as usize + i) % states;
                let reward = if last[i] == 1 { 1.0 } else { -0.25 };
                let slack = 0.1 * (i as f64 + 1.0) / instances as f64;
                let a = step(i, state, reward, slack);
                traces[i].push(a);
                last[i] = a;
            }
        }
        traces
    }

    #[test]
    fn lanes_are_bit_identical_to_standalone_agents() {
        const STATES: usize = 6;
        const N: usize = 4;
        let seeds = [3u64, 11, 17, 99];
        let gradient = 0.05;

        let mut agents: Vec<QLearningAgent> = seeds
            .iter()
            .map(|&s| {
                QLearningAgent::with_policy(
                    AgentConfig {
                        optimistic_gradient: gradient,
                        ..AgentConfig::default()
                    },
                    STATES,
                    actions(),
                    Box::new(EpdPolicy::paper()),
                    s,
                )
            })
            .collect();
        let mut lanes = AgentLanes::new(
            STATES,
            &actions(),
            seeds.iter().map(|&s| spec(s, gradient)).collect(),
        );

        let flat = drive(N, 400, STATES, |i, s, r, l| agents[i].begin_epoch(s, r, l));
        let soa = drive(N, 400, STATES, |i, s, r, l| lanes.begin_epoch(i, s, r, l));
        assert_eq!(flat, soa, "action traces diverged");

        for (i, agent) in agents.iter().enumerate() {
            let q = agent.q_table();
            assert_eq!(q.update_count(), lanes.arena().update_count(i));
            for s in 0..STATES {
                let flat_bits: Vec<u64> = q.row(s).iter().map(|v| v.to_bits()).collect();
                let soa_bits: Vec<u64> = lanes
                    .arena()
                    .row(i, s)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(flat_bits, soa_bits, "instance {i} state {s} values");
                for a in 0..actions().len() {
                    assert_eq!(q.visit_count(s, a), lanes.arena().visit_count(i, s, a));
                }
            }
            assert_eq!(agent.epsilon().to_bits(), lanes.epsilon(i).to_bits());
            assert_eq!(agent.exploration_count(), lanes.exploration_count(i));
            assert_eq!(agent.converged_at(), lanes.converged_at(i));
        }
    }

    #[test]
    fn duplicate_seed_lanes_with_identical_inputs_coincide() {
        // Two lanes with the same seed fed the same (state, reward,
        // slack) stream must learn bit-identical tables — the
        // lane-level face of fleet duplicate-instance determinism.
        let mut lanes = AgentLanes::new(4, &actions(), vec![spec(42, 0.05), spec(42, 0.05)]);
        let mut last = [0usize; 2];
        for e in 0..300u64 {
            let state = e as usize % 4;
            for (i, slot) in last.iter_mut().enumerate() {
                let reward = if *slot == 2 { 0.5 } else { -0.5 };
                *slot = lanes.begin_epoch(i, state, reward, 0.05);
            }
        }
        assert_eq!(last[0], last[1]);
        for s in 0..4 {
            let a: Vec<u64> = lanes
                .arena()
                .row(0, s)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let b: Vec<u64> = lanes
                .arena()
                .row(1, s)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(a, b, "state {s}");
        }
        assert_eq!(lanes.epsilon(0).to_bits(), lanes.epsilon(1).to_bits());
        assert_eq!(lanes.exploration_count(0), lanes.exploration_count(1));
    }

    #[test]
    fn row_best_across_matches_per_instance_scans() {
        let mut lanes = AgentLanes::new(
            4,
            &actions(),
            (0..3).map(|i| spec(i, 0.05)).collect::<Vec<_>>(),
        );
        drive(3, 150, 4, |i, s, r, l| lanes.begin_epoch(i, s, r, l));

        let states = [1usize, 3, 0];
        let mut out = Vec::new();
        lanes.arena().row_best_across(&states, &mut out);
        assert_eq!(out.len(), 3);
        for (i, &s) in states.iter().enumerate() {
            let row = lanes.arena().row(i, s);
            let expect = crate::qtable::best_of_row(row);
            assert_eq!(out[i], expect, "instance {i}");
        }

        let mut broadcast = Vec::new();
        lanes.arena().row_best_broadcast(2, &mut broadcast);
        for (i, &(a, v)) in broadcast.iter().enumerate() {
            let expect = crate::qtable::best_of_row(lanes.arena().row(i, 2));
            assert_eq!((a, v.to_bits()), (expect.0, expect.1.to_bits()));
        }
    }

    #[test]
    fn from_template_replicates_values_and_zeroes_counters() {
        let template = QTable::with_action_bias(2, 3, &[0.0, 0.01, 0.02]).unwrap();
        let arena = QArena::from_template(3, &template).unwrap();
        assert_eq!(arena.instances(), 3);
        for i in 0..3 {
            for s in 0..2 {
                assert_eq!(arena.row(i, s), template.row(s));
            }
            assert_eq!(arena.update_count(i), 0);
            assert_eq!(arena.visit_count(i, 0, 0), 0);
        }
        assert!(QArena::from_template(0, &template).is_err());
    }

    #[test]
    fn policy_into_matches_qtable_policy() {
        let mut lanes = AgentLanes::new(
            5,
            &actions(),
            (0..2).map(|i| spec(i, 0.0)).collect::<Vec<_>>(),
        );
        drive(2, 120, 5, |i, s, r, l| lanes.begin_epoch(i, s, r, l));
        let mut out = Vec::new();
        for i in 0..2 {
            lanes.arena().policy_into(i, &mut out);
            let expect: Vec<usize> = (0..5)
                .map(|s| crate::qtable::best_of_row(lanes.arena().row(i, s)).0)
                .collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn heterogeneous_lane_configs_share_one_arena() {
        // Different ε schedules and policies per lane, one shape.
        let lanes = vec![
            LaneSpec {
                config: AgentConfig::default(),
                policy: Box::new(EpdPolicy::paper()),
                seed: 1,
            },
            LaneSpec {
                config: AgentConfig {
                    epsilon: DecayingEpsilon::paper(),
                    optimistic_gradient: 0.1,
                    ..AgentConfig::default()
                },
                policy: Box::new(UniformPolicy::new()),
                seed: 2,
            },
        ];
        let lanes = AgentLanes::new(4, &actions(), lanes);
        assert_eq!(lanes.len(), 2);
        // Lane 1's optimistic gradient is visible in its arena rows,
        // lane 0's rows stay zero.
        assert_eq!(lanes.arena().value(0, 0, 4), 0.0);
        assert!(lanes.arena().value(1, 0, 4) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_fleet_panics() {
        let _ = AgentLanes::new(2, &actions(), Vec::new());
    }

    #[test]
    #[should_panic(expected = "one (states, actions)")]
    fn mismatched_template_shapes_panic() {
        let a = QTable::new(2, 3).unwrap();
        let b = QTable::new(2, 4).unwrap();
        let _ = QArena::from_templates(&[a, b]);
    }
}
