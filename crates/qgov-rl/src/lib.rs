//! Model-free reinforcement-learning primitives for run-time management.
//!
//! This crate provides the learning machinery that the RTM of Biswas et
//! al. (DATE 2017) is built from, as small reusable pieces:
//!
//! * [`QTable`] — the dense state × action value table updated by
//!   Bellman's optimality equation (Eq. 3 of the paper);
//! * [`Predictor`] implementations — the EWMA workload predictor of Eq. 1
//!   ([`EwmaPredictor`]) plus simpler alternatives used as ablation
//!   baselines ([`LastValuePredictor`], [`MovingAveragePredictor`],
//!   [`WmaPredictor`]);
//! * [`Discretizer`] implementations — map continuous workload/slack
//!   measurements onto the N discrete levels that index the Q-table
//!   ([`UniformDiscretizer`], [`QuantileDiscretizer`]);
//! * [`ExplorationPolicy`] implementations — the paper's slack-aware
//!   discrete Exponential Probability Distribution (Eq. 2,
//!   [`EpdPolicy`]), the uniform baseline of prior work
//!   ([`UniformPolicy`]), plus [`SoftmaxPolicy`] and [`GreedyPolicy`];
//! * [`DecayingEpsilon`] — the accelerated exploration → exploitation
//!   transition of Eq. 6;
//! * [`RewardFn`] implementations — the slack-ratio pay-off of Eq. 4
//!   ([`SlackReward`]);
//! * [`QLearningAgent`] — glue combining all of the above into a
//!   ready-to-use epoch-driven agent, with exploration counting and
//!   convergence detection.
//!
//! # Example: a tiny agent learning to pick the best action
//!
//! ```
//! use qgov_rl::{ActionSpace, AgentConfig, QLearningAgent};
//!
//! // Three actions with "frequencies" 0.2, 1.0, 2.0 GHz.
//! let actions = ActionSpace::from_freqs_ghz(&[0.2, 1.0, 2.0]);
//! let mut agent = QLearningAgent::new(AgentConfig::default(), 4, actions, 7);
//!
//! // Drive the agent: state 0, reward favouring action 1.
//! let mut last_action = agent.begin_epoch(0, 0.0, 0.0);
//! for _ in 0..200 {
//!     let reward = if last_action == 1 { 1.0 } else { -1.0 };
//!     last_action = agent.begin_epoch(0, reward, 0.0);
//! }
//! assert_eq!(agent.q_table().greedy_action(0), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod arena;
mod convergence;
mod discretize;
mod epsilon;
mod error;
mod policy;
mod predictor;
mod qtable;
mod reward;

pub use agent::{ActionSpace, AgentConfig, QLearningAgent};
pub use arena::{AgentLanes, LaneSpec, QArena};
pub use convergence::ConvergenceTracker;
pub use discretize::{Discretizer, QuantileDiscretizer, UniformDiscretizer};
pub use epsilon::DecayingEpsilon;
pub use error::RlError;
pub use policy::{
    sample_weighted, uniform_f64, ActionContext, EpdPolicy, ExplorationPolicy, GreedyPolicy,
    SoftmaxPolicy, UniformPolicy,
};
pub use predictor::{
    EwmaPredictor, LastValuePredictor, MovingAveragePredictor, Predictor, WmaPredictor,
};
pub use qtable::QTable;
pub use reward::{LinearSlackReward, RewardFn, SlackReward};
