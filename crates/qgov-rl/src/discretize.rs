//! Discretisation of continuous measurements onto Q-table levels.
//!
//! "The size of the Q-table is limited by discretising the range of
//! workloads (slack and cycle count) into N levels. Here we have used N
//! as 5 in view of a pre-characterisation of the applications" (Section
//! II-A). [`UniformDiscretizer`] splits a fixed range evenly;
//! [`QuantileDiscretizer`] derives level boundaries from
//! pre-characterisation samples so each level is visited equally often.

use crate::RlError;

/// Maps a continuous measurement to one of `levels()` discrete levels
/// (`0 ..= levels() - 1`), clamping out-of-range inputs to the extreme
/// levels.
pub trait Discretizer {
    /// Number of levels N.
    fn levels(&self) -> usize;

    /// The level of `value`. Out-of-range values clamp; NaN maps to
    /// level 0 (callers should prevent NaN upstream).
    fn level_of(&self, value: f64) -> usize;
}

/// Splits `[min, max]` into `levels` equal-width bins.
///
/// # Examples
///
/// ```
/// use qgov_rl::{Discretizer, UniformDiscretizer};
///
/// let d = UniformDiscretizer::new(0.0, 10.0, 5).unwrap();
/// assert_eq!(d.level_of(-3.0), 0);  // clamped
/// assert_eq!(d.level_of(1.0), 0);
/// assert_eq!(d.level_of(5.0), 2);
/// assert_eq!(d.level_of(9.99), 4);
/// assert_eq!(d.level_of(42.0), 4);  // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UniformDiscretizer {
    min: f64,
    max: f64,
    levels: usize,
}

impl UniformDiscretizer {
    /// Creates a uniform discretiser over `[min, max]` with `levels`
    /// bins.
    ///
    /// # Errors
    ///
    /// Returns an error if `levels` is zero, if the bounds are not
    /// finite, or if `min >= max`.
    pub fn new(min: f64, max: f64, levels: usize) -> Result<Self, RlError> {
        RlError::check_nonempty("levels", levels)?;
        if !min.is_finite() || !max.is_finite() {
            return Err(RlError::NotFinite { name: "bounds" });
        }
        if min >= max {
            return Err(RlError::NotPositive {
                name: "range width",
                value: (max - min).to_string(),
            });
        }
        Ok(UniformDiscretizer { min, max, levels })
    }

    /// Lower bound of the range.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the range.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Midpoint value of a level (useful for reconstructing a
    /// representative measurement from a level index).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    #[must_use]
    pub fn midpoint(&self, level: usize) -> f64 {
        assert!(level < self.levels, "level {level} out of range");
        let width = (self.max - self.min) / self.levels as f64;
        self.min + width * (level as f64 + 0.5)
    }
}

impl Discretizer for UniformDiscretizer {
    fn levels(&self) -> usize {
        self.levels
    }

    fn level_of(&self, value: f64) -> usize {
        if value.is_nan() || value <= self.min {
            return 0;
        }
        if value >= self.max {
            return self.levels - 1;
        }
        let frac = (value - self.min) / (self.max - self.min);
        ((frac * self.levels as f64) as usize).min(self.levels - 1)
    }
}

/// Derives level boundaries from the empirical quantiles of
/// pre-characterisation samples, mirroring the paper's "design space
/// exploration" used to pick N.
///
/// With quantile boundaries each level is visited roughly equally often
/// during characterisation, so no Q-table row starves.
///
/// # Examples
///
/// ```
/// use qgov_rl::{Discretizer, QuantileDiscretizer};
///
/// let samples: Vec<f64> = (0..100).map(f64::from).collect();
/// let d = QuantileDiscretizer::from_samples(&samples, 4).unwrap();
/// assert_eq!(d.level_of(10.0), 0);
/// assert_eq!(d.level_of(30.0), 1);
/// assert_eq!(d.level_of(60.0), 2);
/// assert_eq!(d.level_of(99.0), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuantileDiscretizer {
    /// Ascending inner boundaries; `boundaries.len() == levels - 1`.
    boundaries: Vec<f64>,
}

impl QuantileDiscretizer {
    /// Builds boundaries at the `k/levels` quantiles of `samples`.
    ///
    /// # Errors
    ///
    /// Returns an error if `levels` is zero, `samples` is empty, or any
    /// sample is not finite.
    pub fn from_samples(samples: &[f64], levels: usize) -> Result<Self, RlError> {
        RlError::check_nonempty("levels", levels)?;
        RlError::check_nonempty("samples", samples.len())?;
        if samples.iter().any(|s| !s.is_finite()) {
            return Err(RlError::NotFinite { name: "samples" });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
        let boundaries = (1..levels)
            .map(|k| {
                let rank = k * sorted.len() / levels;
                sorted[rank.min(sorted.len() - 1)]
            })
            .collect();
        Ok(QuantileDiscretizer { boundaries })
    }

    /// The inner boundaries between levels (ascending,
    /// `levels() - 1` entries).
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }
}

impl Discretizer for QuantileDiscretizer {
    fn levels(&self) -> usize {
        self.boundaries.len() + 1
    }

    fn level_of(&self, value: f64) -> usize {
        if value.is_nan() {
            return 0;
        }
        // First boundary strictly greater than value determines the level.
        self.boundaries.partition_point(|&b| b <= value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rejects_bad_configs() {
        assert!(UniformDiscretizer::new(0.0, 1.0, 0).is_err());
        assert!(UniformDiscretizer::new(1.0, 1.0, 5).is_err());
        assert!(UniformDiscretizer::new(2.0, 1.0, 5).is_err());
        assert!(UniformDiscretizer::new(f64::NAN, 1.0, 5).is_err());
    }

    #[test]
    fn uniform_levels_partition_range() {
        let d = UniformDiscretizer::new(0.0, 100.0, 5).unwrap();
        assert_eq!(d.level_of(0.0), 0);
        assert_eq!(d.level_of(19.9), 0);
        assert_eq!(d.level_of(20.0), 1);
        assert_eq!(d.level_of(99.9), 4);
        assert_eq!(d.level_of(100.0), 4);
    }

    #[test]
    fn uniform_clamps_and_handles_nan() {
        let d = UniformDiscretizer::new(-1.0, 1.0, 5).unwrap();
        assert_eq!(d.level_of(-5.0), 0);
        assert_eq!(d.level_of(5.0), 4);
        assert_eq!(d.level_of(f64::NAN), 0);
    }

    #[test]
    fn uniform_midpoints_round_trip() {
        let d = UniformDiscretizer::new(0.0, 10.0, 5).unwrap();
        for level in 0..5 {
            assert_eq!(d.level_of(d.midpoint(level)), level);
        }
    }

    #[test]
    fn uniform_supports_negative_ranges_for_slack() {
        // Slack ratio L ranges over [-1, 1]; level 2 of 5 straddles zero.
        let d = UniformDiscretizer::new(-1.0, 1.0, 5).unwrap();
        assert_eq!(d.level_of(0.0), 2);
        assert_eq!(d.level_of(-0.9), 0);
        assert_eq!(d.level_of(0.9), 4);
    }

    #[test]
    fn quantile_balances_visits() {
        // Heavily skewed samples: uniform binning would starve high bins.
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 / 10.0).powi(3)).collect();
        let d = QuantileDiscretizer::from_samples(&samples, 5).unwrap();
        let mut counts = [0usize; 5];
        for &s in &samples {
            counts[d.level_of(s)] += 1;
        }
        for &c in &counts {
            // Each level should hold about 200 of 1000 samples.
            assert!((150..=250).contains(&c), "unbalanced counts {counts:?}");
        }
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert!(QuantileDiscretizer::from_samples(&[], 5).is_err());
        assert!(QuantileDiscretizer::from_samples(&[1.0], 0).is_err());
        assert!(QuantileDiscretizer::from_samples(&[f64::INFINITY], 2).is_err());
    }

    #[test]
    fn quantile_single_level_maps_everything_to_zero() {
        let d = QuantileDiscretizer::from_samples(&[1.0, 2.0, 3.0], 1).unwrap();
        assert_eq!(d.levels(), 1);
        assert_eq!(d.level_of(-10.0), 0);
        assert_eq!(d.level_of(10.0), 0);
    }

    #[test]
    fn quantile_is_monotone() {
        let samples: Vec<f64> = (0..50).map(|i| f64::from(i) * 2.0).collect();
        let d = QuantileDiscretizer::from_samples(&samples, 5).unwrap();
        let mut prev = 0;
        for i in 0..100 {
            let l = d.level_of(f64::from(i));
            assert!(l >= prev, "level decreased at {i}");
            prev = l;
        }
    }
}
