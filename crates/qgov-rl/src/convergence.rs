//! Detection of the exploration → exploitation hand-over.
//!
//! The paper's Tables II and III count "explorations" and "learning
//! overhead in decision epochs", both of which require a concrete notion
//! of *when learning has converged*. We use greedy-policy stability: the
//! learnt policy is converged once the greedy action of every visited
//! state has stopped changing for a configurable window of epochs.

/// Tracks greedy-policy stability over decision epochs.
///
/// Feed one [`record_epoch`](ConvergenceTracker::record_epoch) per
/// decision epoch, passing whether that epoch's Bellman update changed
/// any greedy action. The tracker reports convergence once `window`
/// consecutive epochs passed without a change, and remembers the first
/// epoch at which that happened.
///
/// # Examples
///
/// ```
/// use qgov_rl::ConvergenceTracker;
///
/// let mut t = ConvergenceTracker::new(3);
/// t.record_epoch(true);   // epoch 1: policy changed
/// t.record_epoch(false);  // epoch 2
/// t.record_epoch(false);  // epoch 3
/// assert!(!t.is_converged());
/// t.record_epoch(false);  // epoch 4: three quiet epochs
/// assert!(t.is_converged());
/// assert_eq!(t.converged_at(), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvergenceTracker {
    window: u64,
    /// Changes tolerated inside the window before it counts as unstable.
    tolerance: u64,
    epochs: u64,
    /// Epochs (1-based) at which the policy changed, oldest first;
    /// pruned to the window.
    recent_changes: std::collections::VecDeque<u64>,
    converged_at: Option<u64>,
}

impl ConvergenceTracker {
    /// Creates a tracker requiring `window` consecutive quiet epochs
    /// (zero tolerated changes).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64) -> Self {
        Self::with_tolerance(window, 0)
    }

    /// Creates a tracker that calls the policy converged once at most
    /// `tolerance` changes occurred within the trailing `window` epochs
    /// — robust against isolated late flips from stochastic rewards.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `tolerance >= window`.
    #[must_use]
    pub fn with_tolerance(window: u64, tolerance: u64) -> Self {
        assert!(window > 0, "convergence window must be non-zero");
        assert!(
            tolerance < window,
            "tolerance must be below the window length"
        );
        ConvergenceTracker {
            window,
            tolerance,
            epochs: 0,
            recent_changes: std::collections::VecDeque::new(),
            converged_at: None,
        }
    }

    /// Records one decision epoch; `policy_changed` signals that the
    /// epoch's update altered some state's greedy action.
    pub fn record_epoch(&mut self, policy_changed: bool) {
        self.epochs += 1;
        if policy_changed {
            self.recent_changes.push_back(self.epochs);
        }
        while let Some(&front) = self.recent_changes.front() {
            if self.epochs - front >= self.window {
                self.recent_changes.pop_front();
            } else {
                break;
            }
        }
        if self.converged_at.is_none()
            && self.epochs >= self.window
            && self.recent_changes.len() as u64 <= self.tolerance
        {
            self.converged_at = Some(self.epochs);
        }
    }

    /// `true` while at most `tolerance` changes fall inside the trailing
    /// window (may flip back to `false` if the policy changes again).
    #[must_use]
    pub fn is_converged(&self) -> bool {
        self.epochs >= self.window && self.recent_changes.len() as u64 <= self.tolerance
    }

    /// The first epoch (1-based) at which convergence was reached, if
    /// ever. Sticky: later policy changes do not erase it, mirroring the
    /// paper's one-shot exploration phase measurement.
    #[must_use]
    pub fn converged_at(&self) -> Option<u64> {
        self.converged_at
    }

    /// Number of epochs recorded so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The required quiet window length.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Forgets all history (e.g. after a performance-requirement change).
    pub fn reset(&mut self) {
        self.epochs = 0;
        self.recent_changes.clear();
        self.converged_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_after_quiet_window() {
        let mut t = ConvergenceTracker::new(5);
        for _ in 0..4 {
            t.record_epoch(false);
        }
        assert!(!t.is_converged());
        t.record_epoch(false);
        assert!(t.is_converged());
        assert_eq!(t.converged_at(), Some(5));
    }

    #[test]
    fn change_resets_the_window() {
        let mut t = ConvergenceTracker::new(3);
        t.record_epoch(false);
        t.record_epoch(false);
        t.record_epoch(true); // reset just before the window closed
        t.record_epoch(false);
        t.record_epoch(false);
        assert!(!t.is_converged());
        t.record_epoch(false);
        assert!(t.is_converged());
        assert_eq!(t.converged_at(), Some(6));
    }

    #[test]
    fn converged_at_is_sticky() {
        let mut t = ConvergenceTracker::new(2);
        t.record_epoch(false);
        t.record_epoch(false);
        assert_eq!(t.converged_at(), Some(2));
        t.record_epoch(true); // diverges again
        assert!(!t.is_converged());
        assert_eq!(t.converged_at(), Some(2), "first convergence is remembered");
    }

    #[test]
    fn reset_clears_history() {
        let mut t = ConvergenceTracker::new(2);
        t.record_epoch(false);
        t.record_epoch(false);
        t.reset();
        assert_eq!(t.epochs(), 0);
        assert_eq!(t.converged_at(), None);
        assert!(!t.is_converged() || t.epochs() == 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = ConvergenceTracker::new(0);
    }

    #[test]
    fn permanently_changing_policy_never_converges() {
        let mut t = ConvergenceTracker::new(3);
        for _ in 0..100 {
            t.record_epoch(true);
        }
        assert!(!t.is_converged());
        assert_eq!(t.converged_at(), None);
    }
}
