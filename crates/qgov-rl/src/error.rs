//! Error type for invalid learning configurations.

use core::fmt;

/// Error returned when a learning component is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RlError {
    /// A probability-like parameter was outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending textual value.
        value: String,
    },
    /// A parameter had to be strictly positive but was not.
    NotPositive {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending textual value.
        value: String,
    },
    /// A table or space dimension was zero.
    EmptyDimension {
        /// Which dimension was empty ("states", "actions", "levels", ...).
        name: &'static str,
    },
    /// A parameter was NaN or infinite.
    NotFinite {
        /// Which parameter was rejected.
        name: &'static str,
    },
}

impl fmt::Display for RlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlError::ProbabilityOutOfRange { name, value } => {
                write!(f, "parameter `{name}` must lie in [0, 1], got {value}")
            }
            RlError::NotPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            RlError::EmptyDimension { name } => {
                write!(f, "dimension `{name}` must be non-zero")
            }
            RlError::NotFinite { name } => {
                write!(f, "parameter `{name}` must be finite")
            }
        }
    }
}

impl std::error::Error for RlError {}

impl RlError {
    /// Validates that `v` is a probability in `[0, 1]`.
    pub fn check_probability(name: &'static str, v: f64) -> Result<(), RlError> {
        if !v.is_finite() {
            return Err(RlError::NotFinite { name });
        }
        if !(0.0..=1.0).contains(&v) {
            return Err(RlError::ProbabilityOutOfRange {
                name,
                value: v.to_string(),
            });
        }
        Ok(())
    }

    /// Validates that `v` is finite and strictly positive.
    pub fn check_positive(name: &'static str, v: f64) -> Result<(), RlError> {
        if !v.is_finite() {
            return Err(RlError::NotFinite { name });
        }
        if v <= 0.0 {
            return Err(RlError::NotPositive {
                name,
                value: v.to_string(),
            });
        }
        Ok(())
    }

    /// Validates that a dimension is non-zero.
    pub fn check_nonempty(name: &'static str, n: usize) -> Result<(), RlError> {
        if n == 0 {
            return Err(RlError::EmptyDimension { name });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_bounds() {
        assert!(RlError::check_probability("p", 0.0).is_ok());
        assert!(RlError::check_probability("p", 1.0).is_ok());
        assert!(RlError::check_probability("p", 1.01).is_err());
        assert!(RlError::check_probability("p", -0.01).is_err());
        assert!(RlError::check_probability("p", f64::NAN).is_err());
    }

    #[test]
    fn positivity() {
        assert!(RlError::check_positive("a", 0.1).is_ok());
        assert!(RlError::check_positive("a", 0.0).is_err());
        assert!(RlError::check_positive("a", -1.0).is_err());
        assert!(RlError::check_positive("a", f64::INFINITY).is_err());
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = RlError::check_probability("alpha", 2.0).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("alpha"));
        assert!(msg.contains('2'));
    }

    #[test]
    fn nonempty_dimension() {
        assert!(RlError::check_nonempty("states", 1).is_ok());
        assert!(RlError::check_nonempty("states", 0).is_err());
    }
}
