//! The state × action value look-up table.

use crate::RlError;

/// The fused greedy-scan fold shared by [`QTable::row_best`] and the
/// instance-major arena kernels ([`crate::QArena`]): one pass over a
/// row returning `(argmax, max)`. Folds from the first entry (correct
/// for rows of any value range) and breaks ties towards the lowest
/// action index — for a frequency-ordered action space, the lowest
/// (most energy-frugal) frequency.
///
/// # Panics
///
/// Panics if `row` is empty (the slice index of the fold seed).
#[inline]
pub(crate) fn best_of_row(row: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_v = row[0];
    for (a, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            best = a;
            best_v = v;
        }
    }
    (best, best_v)
}

/// Eq. 3's value mix, shared by every Q store so that arena-resident
/// and table-resident instances execute the identical floating-point
/// expression (the seam the fleet's bit-identity guarantee rests on):
///
/// ```text
/// Q ← (1 − α)·Q + α·[R + γ·max_a Q(s′, a)]
/// ```
#[inline]
pub(crate) fn bellman_mix(old: f64, reward: f64, future: f64, alpha: f64, discount: f64) -> f64 {
    (1.0 - alpha) * old + alpha * (reward + discount * future)
}

/// Mutable access to one agent instance's Q storage — the seam that
/// lets [`crate::agent::AgentCore`] drive either a standalone
/// [`QTable`] or one instance's rows of a [`crate::QArena`] through
/// the identical epoch body.
pub(crate) trait QAccess {
    /// The row of Q-values for `state`.
    fn row(&self, state: usize) -> &[f64];
    /// The fused `(greedy_action, max_value)` scan of a state's row.
    fn row_best(&self, state: usize) -> (usize, f64);
    /// The Bellman fast path (validated-parameter contract of
    /// [`QTable::update_unchecked`]).
    fn update_unchecked(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        alpha: f64,
        discount: f64,
    );
}

impl QAccess for QTable {
    #[inline]
    fn row(&self, state: usize) -> &[f64] {
        QTable::row(self, state)
    }

    #[inline]
    fn row_best(&self, state: usize) -> (usize, f64) {
        QTable::row_best(self, state)
    }

    #[inline]
    fn update_unchecked(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        alpha: f64,
        discount: f64,
    ) {
        QTable::update_unchecked(self, state, action, reward, next_state, alpha, discount);
    }
}

/// A dense state × action Q-value table.
///
/// The RTM stores its decisions "in a look-up table (referred to as a
/// Q-table)" whose rows are system states (discretised workload × slack
/// levels) and whose columns are the available V-F actions (Section II of
/// the paper). The table size `|S| × |A|` governs the trade-off between
/// learning overhead and achievable energy minimisation, which is why the
/// paper limits both dimensions by discretisation.
///
/// Values are updated with Bellman's optimality equation (Eq. 3):
///
/// ```text
/// Q(sᵢ, aᵢ) ← (1 − α)·Q(sᵢ, aᵢ) + α·[Rᵢ + γ·max_a Q(sᵢ₊₁, a)]
/// ```
///
/// # Examples
///
/// ```
/// use qgov_rl::QTable;
///
/// let mut q = QTable::new(2, 3).unwrap();
/// q.update(0, 2, 1.0, 1, 0.5, 0.9);
/// assert!(q.value(0, 2) > 0.0);
/// assert_eq!(q.greedy_action(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QTable {
    states: usize,
    actions: usize,
    values: Vec<f64>,
    visits: Vec<u64>,
    updates: u64,
}

impl QTable {
    /// Creates a zero-initialised table with `states` rows and `actions`
    /// columns.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDimension`] if either dimension is zero.
    pub fn new(states: usize, actions: usize) -> Result<Self, RlError> {
        RlError::check_nonempty("states", states)?;
        RlError::check_nonempty("actions", actions)?;
        Ok(QTable {
            states,
            actions,
            values: vec![0.0; states * actions],
            visits: vec![0; states * actions],
            updates: 0,
        })
    }

    /// Creates a table with every entry set to `init` (optimistic
    /// initialisation encourages early exploration).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDimension`] if either dimension is zero, or
    /// [`RlError::NotFinite`] if `init` is not finite.
    pub fn with_init(states: usize, actions: usize, init: f64) -> Result<Self, RlError> {
        if !init.is_finite() {
            return Err(RlError::NotFinite { name: "init" });
        }
        let mut t = Self::new(states, actions)?;
        t.values.fill(init);
        Ok(t)
    }

    /// Creates a table whose every row starts with the given per-action
    /// initial values.
    ///
    /// A small bias rising with the action index makes an untouched
    /// state's greedy pick the *highest* (safest) action and crawl
    /// downward through mild over-performance penalties, instead of
    /// crawling upward through deadline misses — the learning-phase
    /// analogue of booting a governor at maximum frequency.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyDimension`] if either dimension is zero
    /// or `bias.len() != actions`, and [`RlError::NotFinite`] if any
    /// bias value is not finite.
    pub fn with_action_bias(states: usize, actions: usize, bias: &[f64]) -> Result<Self, RlError> {
        if bias.len() != actions {
            return Err(RlError::EmptyDimension {
                name: "bias (must have one entry per action)",
            });
        }
        if bias.iter().any(|b| !b.is_finite()) {
            return Err(RlError::NotFinite { name: "bias" });
        }
        let mut t = Self::new(states, actions)?;
        for s in 0..states {
            t.values[s * actions..(s + 1) * actions].copy_from_slice(bias);
        }
        Ok(t)
    }

    /// Number of states (rows).
    #[must_use]
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of actions (columns).
    #[must_use]
    pub fn actions(&self) -> usize {
        self.actions
    }

    /// Total number of state–action pairs, `|S| × |A|` — the table size
    /// the paper says must be "carefully chosen".
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `false` (a Q-table always has at least one cell).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of Bellman updates applied so far.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    #[inline]
    fn idx(&self, state: usize, action: usize) -> usize {
        assert!(
            state < self.states,
            "state {state} out of range (states = {})",
            self.states
        );
        assert!(
            action < self.actions,
            "action {action} out of range (actions = {})",
            self.actions
        );
        state * self.actions + action
    }

    /// Hot-path index: range errors are programming errors on the
    /// steady-state path, so the formatted asserts of [`QTable::idx`]
    /// are debug-only here; release builds still bounds-check at the
    /// slice access itself.
    #[inline]
    fn idx_fast(&self, state: usize, action: usize) -> usize {
        debug_assert!(
            state < self.states,
            "state {state} out of range (states = {})",
            self.states
        );
        debug_assert!(
            action < self.actions,
            "action {action} out of range (actions = {})",
            self.actions
        );
        state * self.actions + action
    }

    /// The Q-value of a state–action pair.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range.
    #[must_use]
    pub fn value(&self, state: usize, action: usize) -> f64 {
        self.values[self.idx(state, action)]
    }

    /// The full row of Q-values for a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn row(&self, state: usize) -> &[f64] {
        let start = self.idx(state, 0);
        &self.values[start..start + self.actions]
    }

    /// How many times a state–action pair has been updated.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range.
    #[must_use]
    pub fn visit_count(&self, state: usize, action: usize) -> u64 {
        self.visits[self.idx(state, action)]
    }

    /// How many of this state's actions have been tried at least once.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn tried_actions(&self, state: usize) -> usize {
        let start = self.idx(state, 0);
        self.visits[start..start + self.actions]
            .iter()
            .filter(|&&v| v > 0)
            .count()
    }

    /// The fused greedy-scan kernel: one pass over a state's row
    /// returning both the argmax action and its value — the
    /// `(greedy_action, max_value)` pair every decision epoch needs
    /// (selection wants the argmax, the Bellman update the max).
    /// Ties break towards the lowest action index, which for a
    /// frequency-ordered action space means the lowest (most
    /// energy-frugal) frequency.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range (a debug-formatted message in
    /// debug builds, the plain slice bounds check in release builds —
    /// this is the hot path).
    #[inline]
    #[must_use]
    pub fn row_best(&self, state: usize) -> (usize, f64) {
        let start = self.idx_fast(state, 0);
        best_of_row(&self.values[start..start + self.actions])
    }

    /// The greedy (highest-value) action for a state. Ties break towards
    /// the lowest action index, which for a frequency-ordered action space
    /// means the lowest (most energy-frugal) frequency. A single row
    /// scan via [`QTable::row_best`].
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn greedy_action(&self, state: usize) -> usize {
        self.row_best(state).0
    }

    /// The maximum Q-value over all actions of a state — the
    /// `max_a Q(sᵢ₊₁, a)` term of Eq. 3. A single row scan via
    /// [`QTable::row_best`] (whose fold starts from the first entry, so
    /// the identity element is correct for rows of any value range —
    /// including rows more negative than the old `f64::MIN` fold seed
    /// could have handled).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn max_value(&self, state: usize) -> f64 {
        self.row_best(state).1
    }

    /// Applies the Bellman update of Eq. 3 to `(state, action)` given the
    /// observed `reward` and the predicted `next_state`.
    ///
    /// `alpha` is the learning rate and `discount` the discount factor γ
    /// "for descaling the current maximum Q-value" of the next state's
    /// row.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range, if `alpha`/`discount` are
    /// outside `[0, 1]`, or if `reward` is not finite.
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        alpha: f64,
        discount: f64,
    ) {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "learning rate alpha must lie in [0, 1], got {alpha}"
        );
        assert!(
            (0.0..=1.0).contains(&discount),
            "discount factor must lie in [0, 1], got {discount}"
        );
        assert!(reward.is_finite(), "reward must be finite, got {reward}");
        // Re-assert the indices eagerly (the fast path defers them to
        // the slice bounds checks) so the checked API keeps its
        // descriptive panic messages.
        let _ = self.idx(state, action);
        let _ = self.idx(next_state, 0);
        self.update_unchecked(state, action, reward, next_state, alpha, discount);
    }

    /// The Bellman update without the per-call range/finiteness asserts
    /// of [`QTable::update`] — the steady-state fast path for callers
    /// that validated `alpha`/`discount`/`reward` at construction time
    /// (e.g. [`AgentConfig::validate`](crate::AgentConfig::validate)).
    ///
    /// One fused row traversal ([`QTable::row_best`]) computes the
    /// future term, replacing the two index-checked passes of the
    /// original kernel. Numerically bit-identical to
    /// [`QTable::update`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices (formatted messages in debug
    /// builds, plain slice bounds checks in release). Invalid
    /// `alpha`/`discount`/`reward` are debug-only assertions here.
    #[inline]
    pub fn update_unchecked(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        alpha: f64,
        discount: f64,
    ) {
        debug_assert!(
            (0.0..=1.0).contains(&alpha),
            "learning rate alpha must lie in [0, 1], got {alpha}"
        );
        debug_assert!(
            (0.0..=1.0).contains(&discount),
            "discount factor must lie in [0, 1], got {discount}"
        );
        debug_assert!(reward.is_finite(), "reward must be finite, got {reward}");
        let (_, future) = self.row_best(next_state);
        let i = self.idx_fast(state, action);
        self.values[i] = bellman_mix(self.values[i], reward, future, alpha, discount);
        self.visits[i] += 1;
        self.updates += 1;
    }

    /// Resets all values and visit counts to zero, forgetting everything
    /// learnt (used when an application's performance requirement
    /// changes).
    pub fn reset(&mut self) {
        self.values.fill(0.0);
        self.visits.fill(0);
        self.updates = 0;
    }

    /// Returns the greedy action for every state, i.e. the current learnt
    /// policy.
    #[must_use]
    pub fn policy(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.policy_into(&mut out);
        out
    }

    /// Writes the greedy action for every state into `out`
    /// (allocation-free when `out` already has capacity for
    /// [`states`](QTable::states) entries): one fused [`row_best`]
    /// scan per row over the flat value buffer instead of a
    /// twice-indexed pass per state.
    ///
    /// [`row_best`]: QTable::row_best
    pub fn policy_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(self.states);
        for s in 0..self.states {
            out.push(self.row_best(s).0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty_dimensions() {
        assert!(QTable::new(0, 3).is_err());
        assert!(QTable::new(3, 0).is_err());
        assert!(QTable::new(1, 1).is_ok());
    }

    #[test]
    fn update_moves_value_towards_target() {
        let mut q = QTable::new(2, 2).unwrap();
        // Terminal-style update: next state has all-zero row.
        q.update(0, 1, 10.0, 1, 0.5, 0.9);
        assert_eq!(q.value(0, 1), 5.0); // (1-0.5)*0 + 0.5*(10 + 0.9*0)
        q.update(0, 1, 10.0, 1, 0.5, 0.9);
        assert_eq!(q.value(0, 1), 7.5);
    }

    #[test]
    fn update_propagates_future_value() {
        let mut q = QTable::new(2, 2).unwrap();
        q.update(1, 0, 8.0, 1, 1.0, 0.0); // Q(1,0) = 8
        q.update(0, 0, 0.0, 1, 1.0, 0.5); // Q(0,0) = 0 + 0.5*8 = 4
        assert_eq!(q.value(0, 0), 4.0);
    }

    #[test]
    fn greedy_ties_break_low() {
        let q = QTable::new(1, 4).unwrap();
        // All zero: greedy must be action 0 (lowest frequency).
        assert_eq!(q.greedy_action(0), 0);
    }

    #[test]
    fn greedy_finds_max() {
        let mut q = QTable::new(1, 3).unwrap();
        q.update(0, 2, 1.0, 0, 1.0, 0.0);
        q.update(0, 1, 3.0, 0, 1.0, 0.0);
        assert_eq!(q.greedy_action(0), 1);
        assert_eq!(q.max_value(0), q.value(0, 1));
    }

    #[test]
    fn visits_and_updates_are_counted() {
        let mut q = QTable::new(2, 2).unwrap();
        q.update(0, 0, 0.0, 0, 0.1, 0.9);
        q.update(0, 0, 0.0, 0, 0.1, 0.9);
        q.update(1, 1, 0.0, 0, 0.1, 0.9);
        assert_eq!(q.visit_count(0, 0), 2);
        assert_eq!(q.visit_count(1, 1), 1);
        assert_eq!(q.visit_count(0, 1), 0);
        assert_eq!(q.update_count(), 3);
        assert_eq!(q.tried_actions(0), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = QTable::with_init(2, 2, 1.0).unwrap();
        q.update(0, 0, 5.0, 1, 0.5, 0.9);
        q.reset();
        assert_eq!(q.value(0, 0), 0.0);
        assert_eq!(q.visit_count(0, 0), 0);
        assert_eq!(q.update_count(), 0);
    }

    #[test]
    fn optimistic_init_fills_table() {
        let q = QTable::with_init(2, 3, 2.5).unwrap();
        for s in 0..2 {
            for a in 0..3 {
                assert_eq!(q.value(s, a), 2.5);
            }
        }
    }

    #[test]
    fn action_bias_seeds_every_row() {
        let q = QTable::with_action_bias(3, 3, &[0.0, 0.01, 0.02]).unwrap();
        for s in 0..3 {
            assert_eq!(q.greedy_action(s), 2, "fresh rows pick the safest action");
            assert_eq!(q.value(s, 1), 0.01);
        }
        assert!(QTable::with_action_bias(2, 3, &[0.0]).is_err());
        assert!(QTable::with_action_bias(2, 2, &[0.0, f64::NAN]).is_err());
    }

    #[test]
    fn policy_lists_greedy_per_state() {
        let mut q = QTable::new(2, 3).unwrap();
        q.update(0, 2, 5.0, 0, 1.0, 0.0);
        q.update(1, 1, 5.0, 0, 1.0, 0.0);
        assert_eq!(q.policy(), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_panics() {
        let q = QTable::new(2, 2).unwrap();
        let _ = q.value(2, 0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let mut q = QTable::new(1, 1).unwrap();
        q.update(0, 0, 0.0, 0, 1.5, 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_next_state_panics() {
        let mut q = QTable::new(2, 2).unwrap();
        q.update(0, 0, 0.0, 5, 0.5, 0.9);
    }

    #[test]
    fn row_best_fuses_argmax_and_max() {
        let mut q = QTable::new(2, 4).unwrap();
        q.update(1, 2, 7.0, 0, 1.0, 0.0);
        q.update(1, 0, 3.0, 0, 1.0, 0.0);
        assert_eq!(q.row_best(1), (2, 7.0));
        assert_eq!(q.row_best(0), (0, 0.0));
        // Agreement with the two split kernels by construction.
        assert_eq!(q.row_best(1).0, q.greedy_action(1));
        assert_eq!(q.row_best(1).1, q.max_value(1));
    }

    #[test]
    fn row_best_ties_break_low() {
        let q = QTable::with_init(1, 5, 3.25).unwrap();
        assert_eq!(q.row_best(0), (0, 3.25));
    }

    #[test]
    fn max_value_is_correct_for_all_negative_rows() {
        // The old fold seeded from f64::MIN, whose identity is wrong
        // for rows at or below it; the fused kernel folds from the
        // first entry, so arbitrarily negative rows report their true
        // maximum.
        let q = QTable::with_init(1, 3, -1.0e300).unwrap();
        assert_eq!(q.max_value(0), -1.0e300);
        assert_eq!(q.greedy_action(0), 0);
        let mut q = QTable::with_init(1, 3, f64::MIN).unwrap();
        assert_eq!(q.max_value(0), f64::MIN);
        q.values[1] = f64::MIN / 2.0;
        assert_eq!(q.max_value(0), f64::MIN / 2.0);
        assert_eq!(q.greedy_action(0), 1);
    }

    #[test]
    fn update_unchecked_matches_checked_update_bit_for_bit() {
        let mut checked = QTable::new(3, 4).unwrap();
        let mut fast = QTable::new(3, 4).unwrap();
        for i in 0..200u64 {
            let s = (i % 3) as usize;
            let a = (i % 4) as usize;
            let next = ((i + 1) % 3) as usize;
            let r = (i as f64).sin() * 5.0;
            checked.update(s, a, r, next, 0.3, 0.5);
            fast.update_unchecked(s, a, r, next, 0.3, 0.5);
        }
        assert_eq!(checked, fast);
    }

    #[test]
    fn policy_into_reuses_the_buffer() {
        let mut q = QTable::new(3, 3).unwrap();
        q.update(1, 2, 5.0, 0, 1.0, 0.0);
        let mut out = Vec::with_capacity(3);
        q.policy_into(&mut out);
        assert_eq!(out, vec![0, 2, 0]);
        q.update(0, 1, 5.0, 0, 1.0, 0.0);
        q.policy_into(&mut out);
        assert_eq!(out, vec![1, 2, 0]);
        assert_eq!(out, q.policy());
    }
}
