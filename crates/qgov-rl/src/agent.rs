//! A ready-to-use epoch-driven Q-learning agent.

use crate::qtable::QAccess;
use crate::{
    ActionContext, ConvergenceTracker, DecayingEpsilon, EpdPolicy, ExplorationPolicy, QTable,
    RlError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The discrete set of actions available to an agent, annotated with the
/// operating frequency of each action (the `F` term of the EPD, Eq. 2).
///
/// Actions must be listed in ascending frequency order so that greedy
/// tie-breaks favour the lowest (most energy-frugal) frequency.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ActionSpace {
    freqs_ghz: Vec<f64>,
}

impl ActionSpace {
    /// Creates an action space from per-action frequencies in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty, contains non-finite or non-positive
    /// values, or is not ascending.
    #[must_use]
    pub fn from_freqs_ghz(freqs: &[f64]) -> Self {
        assert!(!freqs.is_empty(), "action space must be non-empty");
        assert!(
            freqs.iter().all(|f| f.is_finite() && *f > 0.0),
            "action frequencies must be finite and positive"
        );
        assert!(
            freqs.windows(2).all(|w| w[0] < w[1]),
            "action frequencies must be strictly ascending"
        );
        ActionSpace {
            freqs_ghz: freqs.to_vec(),
        }
    }

    /// Number of actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.freqs_ghz.len()
    }

    /// `false`: an action space always has at least one action.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The per-action frequencies in GHz.
    #[must_use]
    pub fn freqs_ghz(&self) -> &[f64] {
        &self.freqs_ghz
    }
}

/// Learning hyper-parameters for a [`QLearningAgent`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AgentConfig {
    /// Learning rate α of the Bellman update (Eq. 3).
    pub alpha: f64,
    /// Discount factor γ of the Bellman update (Eq. 3).
    pub discount: f64,
    /// The exploration probability schedule (Eq. 6).
    pub epsilon: DecayingEpsilon,
    /// Quiet-window length for convergence detection (epochs).
    pub convergence_window: u64,
    /// Optimistic initial-Q gradient towards the highest action: cell
    /// `(s, a)` starts at `optimistic_gradient · a / (actions − 1)`.
    /// An untouched state then greedily picks the safest (fastest)
    /// action and crawls downward through mild energy penalties instead
    /// of upward through deadline misses. Zero disables the bias.
    pub optimistic_gradient: f64,
}

impl AgentConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if `alpha` or `discount` lies outside `[0, 1]`
    /// or the convergence window is zero.
    pub fn validate(&self) -> Result<(), RlError> {
        RlError::check_probability("alpha", self.alpha)?;
        RlError::check_probability("discount", self.discount)?;
        RlError::check_nonempty("convergence_window", self.convergence_window as usize)?;
        if !(self.optimistic_gradient.is_finite() && self.optimistic_gradient >= 0.0) {
            return Err(RlError::NotPositive {
                name: "optimistic_gradient",
                value: self.optimistic_gradient.to_string(),
            });
        }
        Ok(())
    }
}

impl Default for AgentConfig {
    /// α = 0.3, γ = 0.5, the paper's ε schedule, 20-epoch convergence
    /// window, no optimistic bias.
    fn default() -> Self {
        AgentConfig {
            alpha: 0.3,
            discount: 0.5,
            epsilon: DecayingEpsilon::paper(),
            convergence_window: 20,
            optimistic_gradient: 0.0,
        }
    }
}

/// The initial table a validated `config` prescribes: the optimistic
/// action-bias gradient when configured, zeros otherwise. Shared by
/// [`QLearningAgent`] and the fleet arena ([`crate::AgentLanes`]) so
/// arena lanes start from bit-identical values.
pub(crate) fn initial_table(config: &AgentConfig, states: usize, actions: &ActionSpace) -> QTable {
    if config.optimistic_gradient > 0.0 {
        let n = actions.len();
        let bias: Vec<f64> = (0..n)
            .map(|a| {
                if n == 1 {
                    0.0
                } else {
                    config.optimistic_gradient * a as f64 / (n - 1) as f64
                }
            })
            .collect();
        QTable::with_action_bias(states, n, &bias).expect("non-zero dimensions")
    } else {
        QTable::new(states, actions.len()).expect("non-zero dimensions")
    }
}

/// Everything a Q-learning agent carries *besides* its Q storage:
/// action space, learning rates, ε schedule, exploration policy, RNG,
/// previous state–action pair and convergence bookkeeping.
///
/// The epoch body ([`AgentCore::begin_epoch`]) is generic over
/// [`QAccess`], which is what lets a [`QLearningAgent`] (one core, one
/// [`QTable`]) and the fleet's [`crate::AgentLanes`] (N cores over one
/// contiguous [`crate::QArena`]) execute the identical instruction
/// sequence — the construction the fleet's bit-identity rests on.
pub(crate) struct AgentCore {
    actions: ActionSpace,
    alpha: f64,
    discount: f64,
    epsilon: DecayingEpsilon,
    policy: Box<dyn ExplorationPolicy + Send>,
    rng: StdRng,
    last: Option<(usize, usize)>,
    explorations: u64,
    explorations_at_convergence: Option<u64>,
    tracker: ConvergenceTracker,
}

impl AgentCore {
    /// Builds a core from a **validated** configuration (callers run
    /// [`AgentConfig::validate`] first).
    pub(crate) fn new(
        config: &AgentConfig,
        actions: ActionSpace,
        policy: Box<dyn ExplorationPolicy + Send>,
        seed: u64,
    ) -> Self {
        AgentCore {
            actions,
            alpha: config.alpha,
            discount: config.discount,
            epsilon: config.epsilon.clone(),
            policy,
            rng: StdRng::seed_from_u64(seed),
            last: None,
            explorations: 0,
            explorations_at_convergence: None,
            // One tolerated flip inside the window keeps the detector
            // robust against isolated stochastic-reward glitches.
            tracker: ConvergenceTracker::with_tolerance(
                config.convergence_window,
                u64::from(config.convergence_window > 1),
            ),
        }
    }

    /// One decision epoch against any Q storage — the shared body of
    /// [`QLearningAgent::begin_epoch`] (see its docs for the contract).
    pub(crate) fn begin_epoch<Q: QAccess + ?Sized>(
        &mut self,
        q: &mut Q,
        state: usize,
        reward: f64,
        slack: f64,
    ) -> usize {
        assert!(reward.is_finite(), "reward must be finite, got {reward}");
        // (1) + (2): pay-off and Bellman update for the previous pair.
        // `alpha`/`discount` were validated at construction, so the
        // unchecked fast path applies (one fused row traversal for the
        // future term instead of two index-checked passes).
        if let Some((prev_state, prev_action)) = self.last {
            let (greedy_before, _) = q.row_best(prev_state);
            q.update_unchecked(
                prev_state,
                prev_action,
                reward,
                state,
                self.alpha,
                self.discount,
            );
            let changed = q.row_best(prev_state).0 != greedy_before;
            // A quiet greedy policy during the exploration phase is not
            // convergence — early on, updates have not yet differentiated
            // the actions, so the greedy choice sits still for trivial
            // reasons. Only a quiet window *after* ε has decayed to its
            // exploitation floor counts (this is also what freezes the
            // Table II exploration count at a meaningful moment).
            let settled = self.epsilon.is_exploitation();
            self.tracker.record_epoch(changed || !settled);
            if self.explorations_at_convergence.is_none() && self.tracker.converged_at().is_some() {
                self.explorations_at_convergence = Some(self.explorations);
            }
        }

        // (3): action selection for the coming interval — the fused
        // argmax scan (re-run after the update above, whose target row
        // may alias `state`).
        let (greedy, _) = q.row_best(state);
        let explore = crate::uniform_f64(&mut self.rng) < self.epsilon.value();
        let action = if explore {
            let ctx = ActionContext::new(q.row(state), self.actions.freqs_ghz(), slack);
            self.policy.select(&ctx, &mut self.rng)
        } else {
            greedy
        };
        if explore && action != greedy {
            self.explorations += 1;
        }
        self.epsilon.step();
        self.last = Some((state, action));
        action
    }

    pub(crate) fn actions(&self) -> &ActionSpace {
        &self.actions
    }

    pub(crate) fn policy_name(&self) -> &str {
        self.policy.name()
    }

    pub(crate) fn exploration_count(&self) -> u64 {
        self.explorations
    }

    pub(crate) fn explorations_to_convergence(&self) -> Option<u64> {
        self.explorations_at_convergence
    }

    pub(crate) fn epochs(&self) -> u64 {
        self.tracker.epochs()
    }

    pub(crate) fn converged_at(&self) -> Option<u64> {
        self.tracker.converged_at()
    }

    pub(crate) fn epsilon_value(&self) -> f64 {
        self.epsilon.value()
    }

    pub(crate) fn is_exploitation(&self) -> bool {
        self.epsilon.is_exploitation()
    }

    /// Resets everything but the Q storage (the caller restores that).
    pub(crate) fn reset(&mut self) {
        self.epsilon.reset();
        self.tracker.reset();
        self.last = None;
        self.explorations = 0;
        self.explorations_at_convergence = None;
    }
}

/// An epoch-driven Q-learning agent: Q-table + exploration policy +
/// ε schedule + convergence tracking.
///
/// Each call to [`begin_epoch`](QLearningAgent::begin_epoch) performs the
/// three RTM steps of Section II: (1) applies the pay-off computed for
/// the completed interval, (2) updates the Q-table entry of the previous
/// state–action pair, and (3) selects an action for the coming interval
/// given the (predicted) state.
pub struct QLearningAgent {
    q: QTable,
    /// Pristine copy of the initial table (restored on reset, so the
    /// optimistic bias survives a learning restart).
    pristine: QTable,
    core: AgentCore,
}

impl core::fmt::Debug for QLearningAgent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("QLearningAgent")
            .field("states", &self.q.states())
            .field("actions", &self.q.actions())
            .field("alpha", &self.core.alpha)
            .field("discount", &self.core.discount)
            .field("epsilon", &self.core.epsilon_value())
            .field("policy", &self.core.policy_name())
            .field("explorations", &self.core.explorations)
            .field("epochs", &self.core.epochs())
            .finish()
    }
}

impl QLearningAgent {
    /// Creates an agent with the paper's EPD exploration policy.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `states` is zero (use
    /// [`AgentConfig::validate`] to check fallibly first).
    #[must_use]
    pub fn new(config: AgentConfig, states: usize, actions: ActionSpace, seed: u64) -> Self {
        Self::with_policy(config, states, actions, Box::new(EpdPolicy::paper()), seed)
    }

    /// Creates an agent with an explicit exploration policy (e.g.
    /// [`UniformPolicy`](crate::UniformPolicy) for the Table II
    /// baseline).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `states` is zero.
    #[must_use]
    pub fn with_policy(
        config: AgentConfig,
        states: usize,
        actions: ActionSpace,
        policy: Box<dyn ExplorationPolicy + Send>,
        seed: u64,
    ) -> Self {
        config.validate().expect("invalid agent configuration");
        let q = initial_table(&config, states, &actions);
        QLearningAgent {
            pristine: q.clone(),
            q,
            core: AgentCore::new(&config, actions, policy, seed),
        }
    }

    /// Runs one decision epoch.
    ///
    /// `state` is the (predicted) state for the *coming* interval,
    /// `reward` the pay-off computed for the interval that just ended,
    /// and `slack` the current average slack ratio `L` consulted by
    /// slack-aware exploration policies.
    ///
    /// Returns the selected action for the coming interval.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or `reward`/`slack` are not
    /// finite.
    pub fn begin_epoch(&mut self, state: usize, reward: f64, slack: f64) -> usize {
        self.core.begin_epoch(&mut self.q, state, reward, slack)
    }

    /// The underlying Q-table.
    #[must_use]
    pub fn q_table(&self) -> &QTable {
        &self.q
    }

    /// Number of actions.
    #[must_use]
    pub fn action_count(&self) -> usize {
        self.core.actions().len()
    }

    /// Per-action frequencies in GHz.
    #[must_use]
    pub fn action_freqs_ghz(&self) -> &[f64] {
        self.core.actions().freqs_ghz()
    }

    /// Total number of exploratory (non-greedy) selections so far.
    #[must_use]
    pub fn exploration_count(&self) -> u64 {
        self.core.exploration_count()
    }

    /// The exploration count frozen at the moment of first convergence —
    /// the quantity Table II reports. `None` until converged.
    #[must_use]
    pub fn explorations_to_convergence(&self) -> Option<u64> {
        self.core.explorations_to_convergence()
    }

    /// Epochs elapsed.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.core.epochs()
    }

    /// First convergence epoch, if reached (Table III's learning
    /// overhead measure).
    #[must_use]
    pub fn converged_at(&self) -> Option<u64> {
        self.core.converged_at()
    }

    /// Current exploration probability ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.core.epsilon_value()
    }

    /// `true` once ε has decayed to its floor (the paper's exploitation
    /// phase).
    #[must_use]
    pub fn is_exploitation(&self) -> bool {
        self.core.is_exploitation()
    }

    /// Resets all learning state (table, ε, counters), e.g. on a
    /// performance-requirement change. The optimistic initialisation is
    /// restored, not zeroed.
    pub fn reset(&mut self) {
        self.q = self.pristine.clone();
        self.core.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformPolicy;

    fn small_actions() -> ActionSpace {
        ActionSpace::from_freqs_ghz(&[0.2, 1.0, 2.0])
    }

    /// A bandit where action 1 pays 1 and everything else pays -1 must be
    /// learnt quickly.
    #[test]
    fn learns_a_simple_bandit() {
        let mut agent = QLearningAgent::new(AgentConfig::default(), 1, small_actions(), 42);
        let mut action = agent.begin_epoch(0, 0.0, 0.0);
        for _ in 0..300 {
            let r = if action == 1 { 1.0 } else { -1.0 };
            action = agent.begin_epoch(0, r, 0.0);
        }
        assert_eq!(agent.q_table().greedy_action(0), 1);
        assert!(agent.is_exploitation());
    }

    #[test]
    fn exploration_count_grows_then_freezes_at_convergence() {
        let mut agent = QLearningAgent::new(AgentConfig::default(), 2, small_actions(), 7);
        let mut action = agent.begin_epoch(0, 0.0, 0.0);
        for i in 0..500 {
            let state = i % 2;
            let r = if action == 1 { 1.0 } else { -1.0 };
            action = agent.begin_epoch(state, r, 0.0);
        }
        let frozen = agent.explorations_to_convergence();
        assert!(frozen.is_some(), "agent should converge on a trivial task");
        assert!(frozen.unwrap() <= agent.exploration_count());
        assert!(agent.converged_at().is_some());
    }

    #[test]
    fn uniform_policy_explores_more_than_epd_under_slack_bias() {
        // With persistent positive slack the EPD concentrates on the
        // low-frequency action; UPD keeps bouncing across all three.
        let run = |policy: Box<dyn ExplorationPolicy + Send>| {
            let mut agent =
                QLearningAgent::with_policy(AgentConfig::default(), 1, small_actions(), policy, 3);
            let mut action = agent.begin_epoch(0, 0.0, 0.6);
            for _ in 0..400 {
                // Reward the lowest frequency: with slack 0.6 the system
                // is over-performing, so the cheap action is correct.
                let r = if action == 0 { 1.0 } else { -0.5 };
                action = agent.begin_epoch(0, r, 0.6);
            }
            agent.exploration_count()
        };
        let epd = run(Box::new(EpdPolicy::paper()));
        let upd = run(Box::new(UniformPolicy::new()));
        assert!(
            epd < upd,
            "EPD should explore less than UPD (epd = {epd}, upd = {upd})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut agent = QLearningAgent::new(AgentConfig::default(), 2, small_actions(), seed);
            let mut trace = Vec::new();
            let mut action = agent.begin_epoch(0, 0.0, 0.0);
            for i in 0..100 {
                trace.push(action);
                let r = if action == 2 { 1.0 } else { 0.0 };
                action = agent.begin_epoch(i % 2, r, 0.1);
            }
            trace
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should diverge");
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut agent = QLearningAgent::new(AgentConfig::default(), 1, small_actions(), 1);
        for _ in 0..50 {
            agent.begin_epoch(0, 1.0, 0.0);
        }
        agent.reset();
        assert_eq!(agent.exploration_count(), 0);
        assert_eq!(agent.epochs(), 0);
        assert_eq!(agent.epsilon(), 1.0);
        assert_eq!(agent.q_table().update_count(), 0);
    }

    #[test]
    fn action_space_validation() {
        // Not ascending.
        let r = std::panic::catch_unwind(|| ActionSpace::from_freqs_ghz(&[1.0, 0.5]));
        assert!(r.is_err());
        // Negative frequency.
        let r = std::panic::catch_unwind(|| ActionSpace::from_freqs_ghz(&[-1.0, 0.5]));
        assert!(r.is_err());
        // Empty.
        let r = std::panic::catch_unwind(|| ActionSpace::from_freqs_ghz(&[]));
        assert!(r.is_err());
    }

    #[test]
    fn config_validation() {
        let bad_alpha = AgentConfig {
            alpha: 1.5,
            ..AgentConfig::default()
        };
        assert!(bad_alpha.validate().is_err());
        let bad_discount = AgentConfig {
            discount: -0.1,
            ..AgentConfig::default()
        };
        assert!(bad_discount.validate().is_err());
        let bad_window = AgentConfig {
            convergence_window: 0,
            ..AgentConfig::default()
        };
        assert!(bad_window.validate().is_err());
        let bad_gradient = AgentConfig {
            optimistic_gradient: -1.0,
            ..AgentConfig::default()
        };
        assert!(bad_gradient.validate().is_err());
        assert!(AgentConfig::default().validate().is_ok());
    }
}
