//! Pay-off (reward) functions.
//!
//! Eq. 4 of the paper computes the immediate pay-off at decision epoch
//! `tᵢ` from the resulting average slack ratio `Lᵢ` and its change since
//! the previous epoch:
//!
//! ```text
//! Rᵢ = a·Lᵢ + b·ΔL
//! ```
//!
//! "where a and b are predetermined constants to ensure actions improving
//! Lᵢ values are rewarded or vice-versa". *Improving* means driving the
//! slack towards zero from either side: negative slack is a deadline
//! violation (users see dropped frames), while large positive slack is
//! over-performance that wastes energy — exactly the failure mode the
//! paper attributes to the ondemand governor in Table I. [`SlackReward`]
//! therefore applies Eq. 4 with regime-dependent signs for `a`;
//! [`LinearSlackReward`] is the strictly literal single-sign reading,
//! kept for ablation (it converges to maximum frequency).

use crate::RlError;

/// Maps the performance feedback of a completed epoch to a scalar
/// pay-off.
pub trait RewardFn {
    /// The pay-off for observing average slack ratio `slack` (`Lᵢ`) after
    /// the previous epoch's `prev_slack` (`Lᵢ₋₁`).
    fn reward(&self, slack: f64, prev_slack: f64) -> f64;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's slack pay-off (Eq. 4) with the constants' signs resolved
/// per regime so that *meeting the deadline exactly* is the maximum:
///
/// * `L < 0` (under-performance, deadline misses): `R = −miss − a·|L|`
///   — a fixed penalty for the miss itself (a dropped frame is a
///   discrete failure: "most video decoders drop frames, which miss
///   deadlines, resulting in a glitch", Section III-B) plus a penalty
///   proportional to the violation depth;
/// * `L ≥ 0` (over-performance): `R = −a·w_over·L` — a milder penalty
///   proportional to the wasted headroom (which costs energy);
/// * both regimes add `b·(|Lᵢ₋₁| − |Lᵢ|)`, rewarding epochs that moved
///   the slack towards zero (the `ΔL` term).
///
/// The fixed miss penalty keeps a marginal miss (slack −0.001) strictly
/// worse than one discrete OPP step of over-performance — without it a
/// Q-learner parks just on the wrong side of the deadline.
///
/// # Examples
///
/// ```
/// use qgov_rl::{RewardFn, SlackReward};
///
/// let r = SlackReward::paper();
/// // Meeting the deadline exactly is the best outcome.
/// assert!(r.reward(0.0, 0.0) > r.reward(-0.3, 0.0));
/// assert!(r.reward(0.0, 0.0) > r.reward(0.5, 0.0));
/// // Deadline misses hurt more than the same amount of over-performance.
/// assert!(r.reward(-0.2, 0.0) < r.reward(0.2, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlackReward {
    a: f64,
    b: f64,
    over_weight: f64,
    peak: f64,
    miss_penalty: f64,
}

impl SlackReward {
    /// Creates a slack reward with violation gain `a`, improvement gain
    /// `b` and over-performance weight `over_weight` (the fraction of `a`
    /// applied to positive slack). The reward at exactly-zero slack is
    /// `peak()` (default 1): a *positive* optimum ensures tried-and-good
    /// actions dominate never-tried ones (whose Q-value is the
    /// zero-initialisation) during exploitation.
    ///
    /// # Errors
    ///
    /// Returns an error unless `a` and `b` are finite and positive and
    /// `over_weight` lies in `(0, 1]`.
    pub fn new(a: f64, b: f64, over_weight: f64) -> Result<Self, RlError> {
        RlError::check_positive("a", a)?;
        RlError::check_positive("b", b)?;
        RlError::check_positive("over_weight", over_weight)?;
        RlError::check_probability("over_weight", over_weight)?;
        Ok(SlackReward {
            a,
            b,
            over_weight,
            peak: 1.0,
            miss_penalty: 2.0,
        })
    }

    /// The constants used throughout our reproduction: `a = 10`,
    /// `b = 2`, `over_weight = 0.4`. Deadline misses are penalised 2.5×
    /// harder than equal over-performance, matching the paper's
    /// observation that its governor settles just on the over-performing
    /// side of the deadline (normalised performance 0.96 in Table I).
    #[must_use]
    pub fn paper() -> Self {
        Self::new(10.0, 2.0, 0.4).expect("paper constants are valid")
    }

    /// The violation gain `a`.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The improvement gain `b`.
    #[must_use]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The over-performance weight.
    #[must_use]
    pub fn over_weight(&self) -> f64 {
        self.over_weight
    }

    /// The reward attained at exactly-zero steady slack.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The fixed penalty applied to any deadline miss.
    #[must_use]
    pub fn miss_penalty(&self) -> f64 {
        self.miss_penalty
    }

    /// Overrides the fixed miss penalty.
    ///
    /// # Panics
    ///
    /// Panics if `penalty` is negative or not finite.
    #[must_use]
    pub fn with_miss_penalty(mut self, penalty: f64) -> Self {
        assert!(
            penalty.is_finite() && penalty >= 0.0,
            "miss penalty must be finite and non-negative"
        );
        self.miss_penalty = penalty;
        self
    }
}

impl RewardFn for SlackReward {
    fn reward(&self, slack: f64, prev_slack: f64) -> f64 {
        assert!(
            slack.is_finite() && prev_slack.is_finite(),
            "slack values must be finite"
        );
        let level = if slack < 0.0 {
            // Any miss is a discrete failure plus a depth penalty.
            -self.miss_penalty + self.a * slack
        } else {
            -self.a * self.over_weight * slack // headroom wastes energy
        };
        let improvement = self.b * (prev_slack.abs() - slack.abs());
        self.peak + level + improvement
    }

    fn name(&self) -> &'static str {
        "slack"
    }
}

/// The strictly literal reading of Eq. 4, `R = a·L + b·ΔL` with a single
/// positive `a` — kept as an ablation to demonstrate why the sign
/// resolution in [`SlackReward`] is necessary (maximising `a·L` drives
/// the policy to the highest frequency and erases the energy savings).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearSlackReward {
    a: f64,
    b: f64,
}

impl LinearSlackReward {
    /// Creates the literal linear reward.
    ///
    /// # Errors
    ///
    /// Returns an error unless both gains are finite and positive.
    pub fn new(a: f64, b: f64) -> Result<Self, RlError> {
        RlError::check_positive("a", a)?;
        RlError::check_positive("b", b)?;
        Ok(LinearSlackReward { a, b })
    }
}

impl RewardFn for LinearSlackReward {
    fn reward(&self, slack: f64, prev_slack: f64) -> f64 {
        assert!(
            slack.is_finite() && prev_slack.is_finite(),
            "slack values must be finite"
        );
        self.a * slack + self.b * (slack - prev_slack)
    }

    fn name(&self) -> &'static str {
        "linear-slack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_slack_is_the_peak() {
        let r = SlackReward::paper();
        let peak = r.reward(0.0, 0.0);
        for l in [-0.5, -0.1, 0.1, 0.5, 1.0] {
            assert!(r.reward(l, l) < peak, "L = {l} should score below peak");
        }
    }

    #[test]
    fn peak_reward_is_positive() {
        // A positive optimum keeps tried-and-good actions above the
        // zero-initialised Q-values of never-tried actions.
        let r = SlackReward::paper();
        assert_eq!(r.reward(0.0, 0.0), r.peak());
        assert!(r.peak() > 0.0);
    }

    #[test]
    fn misses_hurt_more_than_overperformance() {
        let r = SlackReward::paper();
        assert!(r.reward(-0.3, 0.0) < r.reward(0.3, 0.0));
    }

    #[test]
    fn improvement_term_rewards_motion_towards_zero() {
        let r = SlackReward::paper();
        // Same final slack, but one epoch arrived from further away.
        assert!(r.reward(0.1, 0.6) > r.reward(0.1, 0.1));
        assert!(r.reward(-0.1, -0.6) > r.reward(-0.1, -0.1));
        // Moving away from zero is penalised.
        assert!(r.reward(0.4, 0.1) < r.reward(0.4, 0.4));
    }

    #[test]
    fn reward_is_monotone_in_violation_depth() {
        let r = SlackReward::paper();
        assert!(r.reward(-0.1, 0.0) > r.reward(-0.2, 0.0));
        assert!(r.reward(-0.2, 0.0) > r.reward(-0.4, 0.0));
    }

    #[test]
    fn literal_linear_form_matches_equation() {
        let r = LinearSlackReward::new(2.0, 3.0).unwrap();
        // R = 2*0.5 + 3*(0.5 - 0.2) = 1.0 + 0.9
        assert!((r.reward(0.5, 0.2) - 1.9).abs() < 1e-12);
    }

    #[test]
    fn linear_form_prefers_maximum_slack() {
        // Demonstrates the ablation point: literal Eq. 4 rewards
        // over-performance without bound.
        let r = LinearSlackReward::new(1.0, 1.0).unwrap();
        assert!(r.reward(0.9, 0.9) > r.reward(0.1, 0.1));
    }

    #[test]
    fn constructors_validate() {
        assert!(SlackReward::new(0.0, 1.0, 0.5).is_err());
        assert!(SlackReward::new(1.0, -1.0, 0.5).is_err());
        assert!(SlackReward::new(1.0, 1.0, 0.0).is_err());
        assert!(SlackReward::new(1.0, 1.0, 1.5).is_err());
        assert!(LinearSlackReward::new(1.0, 0.0).is_err());
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(
            SlackReward::paper().name(),
            LinearSlackReward::new(1.0, 1.0).unwrap().name()
        );
    }
}
