//! Workload predictors.
//!
//! "Predicting the state of the system is a key step in RL" (Section
//! II-A). The RTM proactively chooses the V-F setting for the *next*
//! decision epoch, so it must forecast the coming workload from the
//! history of observed workloads. The paper uses an Exponential Weighted
//! Moving Average (EWMA, Eq. 1); the alternatives here serve as ablation
//! baselines representing the "adaptive filters" the paper cites as
//! falling short.

/// A one-step-ahead scalar workload predictor.
///
/// The protocol is: call [`predict`](Predictor::predict) to obtain the
/// forecast for the coming epoch, then, once the epoch has elapsed, feed
/// the measured value back via [`observe`](Predictor::observe).
pub trait Predictor {
    /// Forecast for the next epoch given everything observed so far.
    fn predict(&self) -> f64;

    /// Feeds the actual measurement of the epoch that just completed.
    ///
    /// # Panics
    ///
    /// Implementations panic if `actual` is not finite.
    fn observe(&mut self, actual: f64);

    /// Forgets all history.
    fn reset(&mut self);

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Exponential Weighted Moving Average predictor — Eq. 1 of the paper:
///
/// ```text
/// CCᵢ₊₁ = γ·actualCCᵢ + (1 − γ)·predCCᵢ
/// ```
///
/// where γ is the smoothing factor (the paper experimentally determines
/// γ = 0.6 for its MPEG4 analysis, Section III-B).
///
/// # Examples
///
/// ```
/// use qgov_rl::{EwmaPredictor, Predictor};
///
/// let mut p = EwmaPredictor::new(0.6).unwrap();
/// p.observe(100.0);
/// assert_eq!(p.predict(), 100.0); // first observation seeds the state
/// p.observe(200.0);
/// assert_eq!(p.predict(), 0.6 * 200.0 + 0.4 * 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EwmaPredictor {
    smoothing: f64,
    prediction: Option<f64>,
}

impl EwmaPredictor {
    /// Creates an EWMA predictor with the given smoothing factor γ.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < smoothing <= 1`.
    pub fn new(smoothing: f64) -> Result<Self, crate::RlError> {
        crate::RlError::check_probability("smoothing", smoothing)?;
        crate::RlError::check_positive("smoothing", smoothing)?;
        Ok(EwmaPredictor {
            smoothing,
            prediction: None,
        })
    }

    /// The paper's experimentally-determined smoothing factor, γ = 0.6.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(0.6).expect("0.6 is a valid smoothing factor")
    }

    /// The smoothing factor γ.
    #[must_use]
    pub fn smoothing(&self) -> f64 {
        self.smoothing
    }
}

impl Predictor for EwmaPredictor {
    fn predict(&self) -> f64 {
        self.prediction.unwrap_or(0.0)
    }

    fn observe(&mut self, actual: f64) {
        assert!(actual.is_finite(), "observation must be finite");
        self.prediction = Some(match self.prediction {
            // Seed with the first observation rather than decaying from 0,
            // otherwise early predictions are systematically low.
            None => actual,
            Some(prev) => self.smoothing * actual + (1.0 - self.smoothing) * prev,
        });
    }

    fn reset(&mut self) {
        self.prediction = None;
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Naive last-value predictor: tomorrow equals today.
///
/// The simplest reactive baseline; equivalent to EWMA with γ = 1.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LastValuePredictor {
    last: Option<f64>,
}

impl LastValuePredictor {
    /// Creates a last-value predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for LastValuePredictor {
    fn predict(&self) -> f64 {
        self.last.unwrap_or(0.0)
    }

    fn observe(&mut self, actual: f64) {
        assert!(actual.is_finite(), "observation must be finite");
        self.last = Some(actual);
    }

    fn reset(&mut self) {
        self.last = None;
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Simple moving average over a sliding window.
///
/// Represents the "adaptive filters" class the paper criticises for the
/// lag "inherent in the filtering technique" — the window must fill
/// before the prediction tracks a workload change.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MovingAveragePredictor {
    window: usize,
    history: Vec<f64>,
    cursor: usize,
    filled: bool,
}

impl MovingAveragePredictor {
    /// Creates a moving-average predictor over the last `window`
    /// observations.
    ///
    /// # Errors
    ///
    /// Returns an error if `window` is zero.
    pub fn new(window: usize) -> Result<Self, crate::RlError> {
        crate::RlError::check_nonempty("window", window)?;
        Ok(MovingAveragePredictor {
            window,
            history: Vec::with_capacity(window),
            cursor: 0,
            filled: false,
        })
    }

    fn len(&self) -> usize {
        if self.filled {
            self.window
        } else {
            self.history.len()
        }
    }
}

impl Predictor for MovingAveragePredictor {
    fn predict(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            0.0
        } else {
            self.history.iter().sum::<f64>() / n as f64
        }
    }

    fn observe(&mut self, actual: f64) {
        assert!(actual.is_finite(), "observation must be finite");
        if self.filled {
            self.history[self.cursor] = actual;
            self.cursor = (self.cursor + 1) % self.window;
        } else {
            self.history.push(actual);
            if self.history.len() == self.window {
                self.filled = true;
                self.cursor = 0;
            }
        }
    }

    fn reset(&mut self) {
        self.history.clear();
        self.cursor = 0;
        self.filled = false;
    }

    fn name(&self) -> &'static str {
        "moving-average"
    }
}

/// Weighted moving average with linearly decaying weights (most recent
/// observation weighs most).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WmaPredictor {
    window: usize,
    history: Vec<f64>, // most recent last
}

impl WmaPredictor {
    /// Creates a weighted-moving-average predictor over `window`
    /// observations.
    ///
    /// # Errors
    ///
    /// Returns an error if `window` is zero.
    pub fn new(window: usize) -> Result<Self, crate::RlError> {
        crate::RlError::check_nonempty("window", window)?;
        Ok(WmaPredictor {
            window,
            history: Vec::with_capacity(window),
        })
    }
}

impl Predictor for WmaPredictor {
    fn predict(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &v) in self.history.iter().enumerate() {
            let w = (i + 1) as f64; // oldest gets weight 1, newest gets weight n
            num += w * v;
            den += w;
        }
        num / den
    }

    fn observe(&mut self, actual: f64) {
        assert!(actual.is_finite(), "observation must be finite");
        if self.history.len() == self.window {
            self.history.remove(0);
        }
        self.history.push(actual);
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn name(&self) -> &'static str {
        "wma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_matches_equation_one() {
        let mut p = EwmaPredictor::new(0.6).unwrap();
        p.observe(100.0);
        p.observe(50.0);
        // pred = 0.6*50 + 0.4*100 = 70
        assert!((p.predict() - 70.0).abs() < 1e-12);
        p.observe(70.0);
        // pred = 0.6*70 + 0.4*70 = 70
        assert!((p.predict() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_rejects_bad_smoothing() {
        assert!(EwmaPredictor::new(0.0).is_err());
        assert!(EwmaPredictor::new(1.1).is_err());
        assert!(EwmaPredictor::new(-0.2).is_err());
        assert!(EwmaPredictor::new(1.0).is_ok());
    }

    #[test]
    fn ewma_paper_preset_uses_0_6() {
        assert_eq!(EwmaPredictor::paper().smoothing(), 0.6);
    }

    #[test]
    fn ewma_converges_to_constant_signal() {
        let mut p = EwmaPredictor::new(0.6).unwrap();
        for _ in 0..50 {
            p.observe(42.0);
        }
        assert!((p.predict() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_reset_forgets() {
        let mut p = EwmaPredictor::paper();
        p.observe(10.0);
        p.reset();
        assert_eq!(p.predict(), 0.0);
    }

    #[test]
    fn last_value_tracks_immediately() {
        let mut p = LastValuePredictor::new();
        assert_eq!(p.predict(), 0.0);
        p.observe(3.0);
        p.observe(9.0);
        assert_eq!(p.predict(), 9.0);
    }

    #[test]
    fn moving_average_lags_a_step_change() {
        let mut ma = MovingAveragePredictor::new(4).unwrap();
        for _ in 0..4 {
            ma.observe(0.0);
        }
        ma.observe(100.0);
        // Only one of four window slots sees the new level: lag.
        assert_eq!(ma.predict(), 25.0);
        let mut ewma = EwmaPredictor::new(0.6).unwrap();
        for _ in 0..4 {
            ewma.observe(0.0);
        }
        ewma.observe(100.0);
        // EWMA with gamma=0.6 adapts much faster.
        assert!(ewma.predict() > ma.predict());
    }

    #[test]
    fn moving_average_window_wraps() {
        let mut ma = MovingAveragePredictor::new(2).unwrap();
        ma.observe(1.0);
        ma.observe(3.0);
        ma.observe(5.0); // window now holds {3, 5}
        assert_eq!(ma.predict(), 4.0);
    }

    #[test]
    fn wma_weights_recent_more() {
        let mut p = WmaPredictor::new(2).unwrap();
        p.observe(0.0);
        p.observe(30.0);
        // weights: 1*0 + 2*30 over 3 = 20
        assert!((p.predict() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn predictors_report_names() {
        assert_eq!(EwmaPredictor::paper().name(), "ewma");
        assert_eq!(LastValuePredictor::new().name(), "last-value");
        assert_eq!(
            MovingAveragePredictor::new(3).unwrap().name(),
            "moving-average"
        );
        assert_eq!(WmaPredictor::new(3).unwrap().name(), "wma");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_observation_panics() {
        let mut p = EwmaPredictor::paper();
        p.observe(f64::NAN);
    }
}
