//! Exploration policies — how the agent picks actions before it has
//! learnt their values.
//!
//! The paper's key exploration idea (Section II-B) is to replace the
//! "commonly used random selection policy based on a Uniform Probability
//! Distribution (UPD)" with a discrete **Exponential Probability
//! Distribution** (EPD, Eq. 2) that encodes the intuitive relationship
//! between slack and frequency:
//!
//! ```text
//! pᵢ(a) = λ · exp(−β · F_a · Lᵢ),   a ∈ A{V, F}
//! ```
//!
//! With positive slack (over-performance) high frequencies are damped —
//! the agent preferentially explores energy-frugal settings; with
//! negative slack (deadline misses) high frequencies are boosted. "For
//! values of L close to zero, the Exponential Probabilities guided by λ
//! are almost uniform." This focus is what cuts the number of
//! explorations roughly in half in Table II.

use crate::RlError;
use rand::RngCore;

/// Everything a policy may consult when selecting an action.
#[derive(Debug, Clone, Copy)]
pub struct ActionContext<'a> {
    /// Q-values of the current state's row (one per action).
    pub q_row: &'a [f64],
    /// Operating frequency of each action in GHz — the `F` term of Eq. 2.
    pub action_freqs_ghz: &'a [f64],
    /// Current average slack ratio `L` (Eq. 5): positive when the
    /// application runs ahead of its deadline, negative when behind.
    pub slack: f64,
}

impl<'a> ActionContext<'a> {
    /// Creates a context, validating that the two per-action slices
    /// agree in length.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or of different lengths, or if
    /// `slack` is not finite.
    #[must_use]
    pub fn new(q_row: &'a [f64], action_freqs_ghz: &'a [f64], slack: f64) -> Self {
        assert!(!q_row.is_empty(), "action space must be non-empty");
        assert_eq!(
            q_row.len(),
            action_freqs_ghz.len(),
            "q_row and action_freqs_ghz must have one entry per action"
        );
        assert!(slack.is_finite(), "slack must be finite");
        ActionContext {
            q_row,
            action_freqs_ghz,
            slack,
        }
    }

    /// Number of actions.
    #[must_use]
    pub fn actions(&self) -> usize {
        self.q_row.len()
    }
}

/// A stochastic action-selection policy used during the exploration
/// phase.
///
/// Implementations must be deterministic functions of `(ctx, rng)` so
/// that seeded simulations reproduce exactly.
pub trait ExplorationPolicy {
    /// Selects an action index in `0..ctx.actions()`.
    fn select(&self, ctx: &ActionContext<'_>, rng: &mut dyn RngCore) -> usize;

    /// Short human-readable name for reports ("epd", "upd", ...).
    fn name(&self) -> &'static str;
}

/// Draws a uniform float in `[0, 1)` from any RNG (object-safe helper).
#[must_use]
pub fn uniform_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 random mantissa bits, the standard conversion.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Samples an index proportionally to non-negative `weights`.
///
/// Degenerate inputs (all-zero or non-finite totals) fall back to a
/// uniform draw so exploration never wedges.
///
/// # Panics
///
/// Panics if `weights` is empty or any weight is negative or NaN.
#[must_use]
pub fn sample_weighted(weights: &[f64], rng: &mut dyn RngCore) -> usize {
    assert!(!weights.is_empty(), "cannot sample from zero weights");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return (rng.next_u64() % weights.len() as u64) as usize;
    }
    let mut target = uniform_f64(rng) * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1 // float round-off: last index
}

/// The paper's slack-aware Exponential Probability Distribution (Eq. 2).
///
/// # Examples
///
/// ```
/// use qgov_rl::{ActionContext, EpdPolicy, ExplorationPolicy};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let policy = EpdPolicy::paper();
/// let q = [0.0; 3];
/// let freqs = [0.2, 1.0, 2.0];
/// let mut rng = StdRng::seed_from_u64(1);
///
/// // Large positive slack: low-frequency actions dominate.
/// let ctx = ActionContext::new(&q, &freqs, 0.8);
/// let picks: Vec<usize> = (0..100).map(|_| policy.select(&ctx, &mut rng)).collect();
/// let low = picks.iter().filter(|&&a| a == 0).count();
/// let high = picks.iter().filter(|&&a| a == 2).count();
/// assert!(low > high);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EpdPolicy {
    lambda: f64,
    beta: f64,
}

impl EpdPolicy {
    /// Creates an EPD policy.
    ///
    /// `lambda` is the uniform base probability of Eq. 2 (it scales all
    /// weights equally and cancels in normalisation, but is kept for
    /// fidelity and reporting); `beta` controls how sharply slack biases
    /// the distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and positive.
    pub fn new(lambda: f64, beta: f64) -> Result<Self, RlError> {
        RlError::check_positive("lambda", lambda)?;
        RlError::check_positive("beta", beta)?;
        Ok(EpdPolicy { lambda, beta })
    }

    /// EPD with the constants used throughout our reproduction
    /// (λ = 1/19 matching the XU3's 19-action space, β = 2 per GHz of
    /// frequency per unit slack).
    #[must_use]
    pub fn paper() -> Self {
        Self::new(1.0 / 19.0, 2.0).expect("paper constants are valid")
    }

    /// The sharpness parameter β.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The uniform base probability λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The unnormalised Eq. 2 weight of each action for slack `l`.
    #[must_use]
    pub fn weights(&self, action_freqs_ghz: &[f64], l: f64) -> Vec<f64> {
        action_freqs_ghz
            .iter()
            .map(|&f| self.lambda * (-self.beta * f * l).exp())
            .collect()
    }
}

impl ExplorationPolicy for EpdPolicy {
    /// Allocation-free selection: the Eq. 2 weights are recomputed on
    /// the fly in two passes (sum, then walk) instead of being
    /// materialised into a vector. The per-weight expression, the
    /// summation order and the walk order are identical to
    /// [`EpdPolicy::weights`] + [`sample_weighted`], so the selection
    /// is bit-for-bit the same while the steady-state decision epoch
    /// stays heap-free.
    fn select(&self, ctx: &ActionContext<'_>, rng: &mut dyn RngCore) -> usize {
        let weight_at = |f: f64| self.lambda * (-self.beta * f * ctx.slack).exp();
        // Pass 1: total + finiteness. Guard against exp() overflow
        // (inf) and underflow (all zero) for extreme |slack|: fall back
        // to the deterministic limit behaviour and pick the extreme
        // action the bias points at.
        let mut any_non_finite = false;
        let mut total = 0.0f64;
        for &f in ctx.action_freqs_ghz {
            let w = weight_at(f);
            any_non_finite |= !w.is_finite();
            total += w;
        }
        if any_non_finite || total <= 0.0 {
            return if ctx.slack > 0.0 {
                lowest_freq_action(ctx.action_freqs_ghz)
            } else {
                highest_freq_action(ctx.action_freqs_ghz)
            };
        }
        if !total.is_finite() {
            // Finite weights whose sum overflows: `sample_weighted`'s
            // degenerate-total fallback, preserved bit-for-bit.
            return (rng.next_u64() % ctx.actions() as u64) as usize;
        }
        // Pass 2: the `sample_weighted` walk over the regenerated
        // weights.
        let mut target = uniform_f64(rng) * total;
        for (i, &f) in ctx.action_freqs_ghz.iter().enumerate() {
            let w = weight_at(f);
            if target < w {
                return i;
            }
            target -= w;
        }
        ctx.actions() - 1 // float round-off: last index
    }

    fn name(&self) -> &'static str {
        "epd"
    }
}

fn lowest_freq_action(freqs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &f) in freqs.iter().enumerate() {
        if f < freqs[best] {
            best = i;
        }
    }
    best
}

fn highest_freq_action(freqs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &f) in freqs.iter().enumerate() {
        if f > freqs[best] {
            best = i;
        }
    }
    best
}

/// The Uniform Probability Distribution baseline of prior work
/// (e.g. Shen et al., TODAES 2013 — reference \[21\] of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UniformPolicy;

impl UniformPolicy {
    /// Creates a uniform policy.
    #[must_use]
    pub fn new() -> Self {
        UniformPolicy
    }
}

impl ExplorationPolicy for UniformPolicy {
    fn select(&self, ctx: &ActionContext<'_>, rng: &mut dyn RngCore) -> usize {
        (rng.next_u64() % ctx.actions() as u64) as usize
    }

    fn name(&self) -> &'static str {
        "upd"
    }
}

/// Boltzmann/softmax exploration over Q-values: `p(a) ∝ exp(Q(s,a)/τ)`.
///
/// Not used by the paper; provided as a standard alternative for
/// ablation studies.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SoftmaxPolicy {
    temperature: f64,
}

impl SoftmaxPolicy {
    /// Creates a softmax policy with temperature `τ`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `temperature` is finite and positive.
    pub fn new(temperature: f64) -> Result<Self, RlError> {
        RlError::check_positive("temperature", temperature)?;
        Ok(SoftmaxPolicy { temperature })
    }

    /// The temperature τ.
    #[must_use]
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl ExplorationPolicy for SoftmaxPolicy {
    /// Allocation-free selection: like [`EpdPolicy::select`], the
    /// Boltzmann weights are recomputed on the fly in two passes (sum,
    /// then walk) instead of being materialised into a vector. The
    /// per-weight expression, summation order and walk order are
    /// identical to collecting `exp((q − max)/τ)` and calling
    /// [`sample_weighted`], so selections are bit-for-bit the same
    /// while the steady-state decision epoch stays heap-free.
    fn select(&self, ctx: &ActionContext<'_>, rng: &mut dyn RngCore) -> usize {
        // Subtract the max for numerical stability: weights land in
        // (0, 1] and their total in [1, n] for finite Q-values.
        let max_q = ctx.q_row.iter().copied().fold(f64::MIN, f64::max);
        let weight_at = |q: f64| ((q - max_q) / self.temperature).exp();
        let mut total = 0.0f64;
        for &q in ctx.q_row {
            total += weight_at(q);
        }
        if total <= 0.0 || !total.is_finite() {
            // `sample_weighted`'s degenerate-total fallback (reachable
            // only through non-finite Q-values), preserved bit-for-bit.
            return (rng.next_u64() % ctx.actions() as u64) as usize;
        }
        let mut target = uniform_f64(rng) * total;
        for (i, &q) in ctx.q_row.iter().enumerate() {
            let w = weight_at(q);
            if target < w {
                return i;
            }
            target -= w;
        }
        ctx.actions() - 1 // float round-off: last index
    }

    fn name(&self) -> &'static str {
        "softmax"
    }
}

/// Pure exploitation: always the argmax action (ties towards the lowest
/// index, i.e. the lowest frequency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GreedyPolicy;

impl GreedyPolicy {
    /// Creates a greedy policy.
    #[must_use]
    pub fn new() -> Self {
        GreedyPolicy
    }
}

impl ExplorationPolicy for GreedyPolicy {
    fn select(&self, ctx: &ActionContext<'_>, _rng: &mut dyn RngCore) -> usize {
        let mut best = 0;
        let mut best_v = ctx.q_row[0];
        for (a, &v) in ctx.q_row.iter().enumerate().skip(1) {
            if v > best_v {
                best = a;
                best_v = v;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(
        policy: &dyn ExplorationPolicy,
        ctx: &ActionContext<'_>,
        n: usize,
        seed: u64,
    ) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; ctx.actions()];
        for _ in 0..n {
            counts[policy.select(ctx, &mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_spreads_evenly() {
        let q = [0.0; 4];
        let f = [0.5, 1.0, 1.5, 2.0];
        let ctx = ActionContext::new(&q, &f, 0.0);
        let counts = histogram(&UniformPolicy::new(), &ctx, 4000, 11);
        for &c in &counts {
            assert!((800..=1200).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn epd_is_nearly_uniform_at_zero_slack() {
        let q = [0.0; 4];
        let f = [0.5, 1.0, 1.5, 2.0];
        let ctx = ActionContext::new(&q, &f, 0.0);
        let counts = histogram(&EpdPolicy::paper(), &ctx, 4000, 13);
        for &c in &counts {
            assert!((800..=1200).contains(&c), "EPD at L=0 skewed: {counts:?}");
        }
    }

    #[test]
    fn epd_biases_low_freq_when_over_performing() {
        let q = [0.0; 3];
        let f = [0.2, 1.0, 2.0];
        let ctx = ActionContext::new(&q, &f, 0.5); // positive slack
        let counts = histogram(&EpdPolicy::paper(), &ctx, 3000, 17);
        assert!(
            counts[0] > 2 * counts[2],
            "expected strong low-frequency bias, got {counts:?}"
        );
    }

    #[test]
    fn epd_biases_high_freq_when_missing_deadlines() {
        let q = [0.0; 3];
        let f = [0.2, 1.0, 2.0];
        let ctx = ActionContext::new(&q, &f, -0.5); // negative slack
        let counts = histogram(&EpdPolicy::paper(), &ctx, 3000, 19);
        assert!(
            counts[2] > 2 * counts[0],
            "expected strong high-frequency bias, got {counts:?}"
        );
    }

    #[test]
    fn epd_extreme_slack_degrades_gracefully() {
        let q = [0.0; 3];
        let f = [0.2, 1.0, 2.0];
        let mut rng = StdRng::seed_from_u64(3);
        let policy = EpdPolicy::new(1.0, 500.0).unwrap();
        // Huge beta*|L| drives exp() to inf/0; must still return a legal
        // action deterministically.
        let over = ActionContext::new(&q, &f, 1e6);
        assert_eq!(policy.select(&over, &mut rng), 0);
        let under = ActionContext::new(&q, &f, -1e6);
        assert_eq!(policy.select(&under, &mut rng), 2);
    }

    #[test]
    fn epd_on_the_fly_select_matches_materialised_weights() {
        // The allocation-free two-pass select must be bit-identical to
        // sampling the materialised `weights()` vector under the same
        // RNG stream.
        let policy = EpdPolicy::paper();
        let q = [0.0; 19];
        let freqs: Vec<f64> = (2..21).map(|i| f64::from(i) / 10.0).collect();
        for slack in [-0.9, -0.3, 0.0, 0.2, 0.7] {
            let ctx = ActionContext::new(&q, &freqs, slack);
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            for _ in 0..500 {
                let fused = policy.select(&ctx, &mut rng_a);
                let weights = policy.weights(&freqs, slack);
                let reference = sample_weighted(&weights, &mut rng_b);
                assert_eq!(fused, reference, "slack {slack}");
            }
        }
    }

    #[test]
    fn softmax_on_the_fly_select_matches_materialised_weights() {
        // The allocation-free two-pass select must be bit-identical to
        // sampling the materialised Boltzmann weights under the same
        // RNG stream.
        let policy = SoftmaxPolicy::new(0.4).unwrap();
        let freqs: Vec<f64> = (2..21).map(|i| f64::from(i) / 10.0).collect();
        let q: Vec<f64> = (0..19).map(|i| f64::from(i % 7) * 0.31 - 0.8).collect();
        let ctx = ActionContext::new(&q, &freqs, 0.1);
        let max_q = q.iter().copied().fold(f64::MIN, f64::max);
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            let fused = policy.select(&ctx, &mut rng_a);
            let weights: Vec<f64> = q
                .iter()
                .map(|&v| ((v - max_q) / policy.temperature()).exp())
                .collect();
            let reference = sample_weighted(&weights, &mut rng_b);
            assert_eq!(fused, reference);
        }
    }

    #[test]
    fn epd_weights_match_equation_two() {
        let p = EpdPolicy::new(0.1, 2.0).unwrap();
        let w = p.weights(&[1.0, 2.0], 0.25);
        assert!((w[0] - 0.1 * (-0.5f64).exp()).abs() < 1e-12);
        assert!((w[1] - 0.1 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn softmax_prefers_higher_q() {
        let q = [0.0, 2.0, 0.0];
        let f = [0.5, 1.0, 1.5];
        let ctx = ActionContext::new(&q, &f, 0.0);
        let counts = histogram(&SoftmaxPolicy::new(0.5).unwrap(), &ctx, 3000, 23);
        assert!(counts[1] > counts[0] + counts[2], "{counts:?}");
    }

    #[test]
    fn greedy_ignores_rng_and_ties_low() {
        let q = [1.0, 5.0, 5.0];
        let f = [0.5, 1.0, 1.5];
        let ctx = ActionContext::new(&q, &f, 0.3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(GreedyPolicy::new().select(&ctx, &mut rng), 1);
    }

    #[test]
    fn sample_weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_weighted(&[0.0, 1.0, 3.0], &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > 2 * counts[1], "{counts:?}");
    }

    #[test]
    fn sample_weighted_all_zero_falls_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[sample_weighted(&[0.0, 0.0, 0.0], &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform fallback missing indices");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_action_space_panics() {
        let _ = ActionContext::new(&[], &[], 0.0);
    }

    #[test]
    #[should_panic(expected = "one entry per action")]
    fn mismatched_lengths_panic() {
        let _ = ActionContext::new(&[0.0], &[0.5, 1.0], 0.0);
    }

    #[test]
    fn policies_report_names() {
        assert_eq!(EpdPolicy::paper().name(), "epd");
        assert_eq!(UniformPolicy::new().name(), "upd");
        assert_eq!(SoftmaxPolicy::new(1.0).unwrap().name(), "softmax");
        assert_eq!(GreedyPolicy::new().name(), "greedy");
    }

    #[test]
    fn uniform_f64_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = uniform_f64(&mut rng);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
