//! Property-based tests on the learning primitives: invariants that must
//! hold for arbitrary parameters and input streams.

use proptest::prelude::*;
use qgov_rl::{
    sample_weighted, ActionContext, Discretizer, EpdPolicy, EwmaPredictor, ExplorationPolicy,
    Predictor, QTable, QuantileDiscretizer, RewardFn, SlackReward, UniformDiscretizer,
    UniformPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The naive two-pass reference the fused `row_best` kernel replaced:
/// an independent greedy argmax scan (strict `>`, ties to the lowest
/// index) plus an independent max fold.
fn naive_two_pass(row: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for (a, &v) in row.iter().enumerate().skip(1) {
        if v > row[best] {
            best = a;
        }
    }
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (best, max)
}

proptest! {
    /// The fused single-scan `row_best` kernel agrees with the naive
    /// two-pass reference on arbitrary finite rows — argmax and max
    /// bit-for-bit, ties still breaking towards the lowest action.
    #[test]
    fn row_best_matches_naive_two_pass_reference(
        row in proptest::collection::vec(-1e12f64..1e12, 1..40),
    ) {
        let mut q = QTable::new(1, row.len()).unwrap();
        for (a, &v) in row.iter().enumerate() {
            // Terminal-style write: alpha = 1, discount = 0 sets the
            // cell to exactly `v`.
            q.update(0, a, v, 0, 1.0, 0.0);
        }
        let (action, value) = q.row_best(0);
        let (ref_action, ref_value) = naive_two_pass(q.row(0));
        prop_assert_eq!(action, ref_action);
        prop_assert_eq!(value.to_bits(), ref_value.to_bits());
        prop_assert_eq!(action, q.greedy_action(0));
        prop_assert_eq!(value.to_bits(), q.max_value(0).to_bits());
    }

    /// Duplicated maxima anywhere in the row: the fused kernel must
    /// return the first (lowest-index) occurrence.
    #[test]
    fn row_best_ties_break_low_for_any_duplicate_position(
        len in 2usize..20,
        positions in proptest::collection::vec(0usize..20, 2..5),
        value in -1e6f64..1e6,
    ) {
        let mut q = QTable::with_init(1, len, value - 1.0).unwrap();
        let mut firsts: Vec<usize> = positions.iter().map(|p| p % len).collect();
        firsts.sort_unstable();
        for &p in &firsts {
            q.update(0, p, value, 0, 1.0, 0.0);
        }
        prop_assert_eq!(q.row_best(0).0, firsts[0]);
    }

    /// EWMA predictions always stay inside the convex hull of the
    /// observations (it is a convex combination).
    #[test]
    fn ewma_stays_in_observation_hull(
        gamma in 0.01f64..=1.0,
        obs in proptest::collection::vec(-1e9f64..1e9, 1..100),
    ) {
        let mut p = EwmaPredictor::new(gamma).unwrap();
        let lo = obs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = obs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &o in &obs {
            p.observe(o);
            let pred = p.predict();
            prop_assert!(pred >= lo - 1e-6 && pred <= hi + 1e-6,
                "prediction {pred} escaped hull [{lo}, {hi}]");
        }
    }

    /// EWMA error on a constant signal decays geometrically.
    #[test]
    fn ewma_error_decays_on_constant_signal(
        gamma in 0.05f64..=0.95,
        start in -1e6f64..1e6,
        target in -1e6f64..1e6,
    ) {
        let mut p = EwmaPredictor::new(gamma).unwrap();
        p.observe(start);
        let mut prev_err = (p.predict() - target).abs();
        for _ in 0..50 {
            p.observe(target);
            let err = (p.predict() - target).abs();
            prop_assert!(err <= prev_err + 1e-9, "error must not grow: {err} > {prev_err}");
            prev_err = err;
        }
    }

    /// Q-values stay bounded by reward_max / (1 - discount) for bounded
    /// rewards (contraction property of the Bellman operator).
    #[test]
    fn q_values_stay_bounded(
        alpha in 0.01f64..=1.0,
        discount in 0.0f64..=0.9,
        steps in proptest::collection::vec(
            (0usize..4, 0usize..3, -1.0f64..=1.0, 0usize..4), 1..300),
    ) {
        let mut q = QTable::new(4, 3).unwrap();
        let bound = 1.0 / (1.0 - discount) + 1e-9;
        for (s, a, r, ns) in steps {
            q.update(s, a, r, ns, alpha, discount);
            for state in 0..4 {
                for action in 0..3 {
                    let v = q.value(state, action);
                    prop_assert!(v.abs() <= bound,
                        "|Q| = {v} exceeded bound {bound}");
                }
            }
        }
    }

    /// The greedy action always attains the row maximum.
    #[test]
    fn greedy_attains_max(
        steps in proptest::collection::vec(
            (0usize..3, 0usize..4, -5.0f64..5.0, 0usize..3), 1..200),
    ) {
        let mut q = QTable::new(3, 4).unwrap();
        for (s, a, r, ns) in steps {
            q.update(s, a, r, ns, 0.5, 0.5);
        }
        for s in 0..3 {
            let g = q.greedy_action(s);
            prop_assert_eq!(q.value(s, g), q.max_value(s));
        }
    }

    /// Uniform discretiser: levels are monotone in the input and cover
    /// the full range.
    #[test]
    fn uniform_discretizer_monotone(
        min in -1e6f64..0.0,
        width in 1.0f64..1e6,
        levels in 1usize..20,
        probes in proptest::collection::vec(-2e6f64..2e6, 2..50),
    ) {
        let d = UniformDiscretizer::new(min, min + width, levels).unwrap();
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0usize;
        for (i, &v) in sorted.iter().enumerate() {
            let l = d.level_of(v);
            prop_assert!(l < levels);
            if i > 0 {
                prop_assert!(l >= prev, "levels must be monotone");
            }
            prev = l;
        }
    }

    /// Quantile discretiser levels are monotone and within range for any
    /// sample set.
    #[test]
    fn quantile_discretizer_monotone(
        samples in proptest::collection::vec(-1e6f64..1e6, 2..200),
        levels in 1usize..10,
        probes in proptest::collection::vec(-2e6f64..2e6, 2..50),
    ) {
        let d = QuantileDiscretizer::from_samples(&samples, levels).unwrap();
        prop_assert_eq!(d.levels(), levels);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0usize;
        for (i, &v) in sorted.iter().enumerate() {
            let l = d.level_of(v);
            prop_assert!(l < levels);
            if i > 0 {
                prop_assert!(l >= prev);
            }
            prev = l;
        }
    }

    /// sample_weighted never returns an index with zero weight (when a
    /// positive-weight index exists).
    #[test]
    fn zero_weight_never_sampled(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        seed in 0u64..1000,
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let i = sample_weighted(&weights, &mut rng);
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
        }
    }

    /// Policies always return a legal action for any finite slack.
    #[test]
    fn policies_return_legal_actions(
        slack in -1e3f64..1e3,
        n in 1usize..20,
        seed in 0u64..100,
    ) {
        let q = vec![0.0; n];
        let freqs: Vec<f64> = (1..=n).map(|i| i as f64 * 0.1).collect();
        let ctx = ActionContext::new(&q, &freqs, slack);
        let mut rng = StdRng::seed_from_u64(seed);
        let epd = EpdPolicy::paper();
        let upd = UniformPolicy::new();
        for _ in 0..20 {
            prop_assert!(epd.select(&ctx, &mut rng) < n);
            prop_assert!(upd.select(&ctx, &mut rng) < n);
        }
    }

    /// The slack reward is maximised at zero slack for any valid
    /// parameterisation.
    #[test]
    fn slack_reward_peaks_at_zero(
        a in 0.1f64..100.0,
        b in 0.1f64..100.0,
        w in 0.05f64..=1.0,
        l in -1.0f64..1.0,
    ) {
        let r = SlackReward::new(a, b, w).unwrap();
        // Compare steady states (prev == current) so the delta term is zero.
        prop_assert!(r.reward(l, l) <= r.reward(0.0, 0.0) + 1e-12);
    }
}
