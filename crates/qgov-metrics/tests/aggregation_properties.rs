//! Property tests for the cross-seed aggregation math: the streaming
//! and keep-all-samples accumulators must agree with brute-force
//! two-pass references on arbitrary inputs, including the n = 1
//! (σ undefined, reported as zero / bare-mean cell) and
//! constant-series edge cases.

use proptest::prelude::*;
use qgov_metrics::{t_critical_975, MetricSummary, OnlineStats, SampleStats};

/// Brute-force reference: (mean, sample variance, min, max).
fn reference(xs: &[f64]) -> (f64, f64, f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() < 2 {
        0.0
    } else {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, var, min, max)
}

/// Absolute-or-relative tolerance for comparing the streaming fold
/// against the naive two-pass sum.
fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-9 * scale.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn online_stats_match_brute_force(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..64)
    ) {
        let (mean, var, min, max) = reference(&xs);
        let s: OnlineStats = xs.iter().copied().collect();
        prop_assert!(close(s.mean(), mean, mean), "mean {} vs {}", s.mean(), mean);
        prop_assert!(
            close(s.sample_variance(), var, var.max(1e6)),
            "variance {} vs {}", s.sample_variance(), var
        );
        prop_assert_eq!(s.min().unwrap().to_bits(), min.to_bits());
        prop_assert_eq!(s.max().unwrap().to_bits(), max.to_bits());
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn ci95_matches_the_textbook_formula(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..40)
    ) {
        let (_, var, _, _) = reference(&xs);
        let s: OnlineStats = xs.iter().copied().collect();
        let expected = t_critical_975(xs.len() as u64 - 1)
            * var.sqrt()
            / (xs.len() as f64).sqrt();
        prop_assert!(
            close(s.ci95_half_width(), expected, expected.max(1e3)),
            "ci95 {} vs {}", s.ci95_half_width(), expected
        );
        // The CI half-width never exceeds the full sample range times
        // the worst-case t multiplier.
        prop_assert!(s.ci95_half_width() <= 12.706 * (s.max().unwrap() - s.min().unwrap()) + 1e-9);
    }

    #[test]
    fn metric_summary_agrees_with_online_stats(
        xs in proptest::collection::vec(-1e5f64..1e5, 1..48)
    ) {
        let summary = MetricSummary::from_samples(&xs);
        let online: OnlineStats = xs.iter().copied().collect();
        // Same fold modulo summation order (the summary sorts first).
        prop_assert!(close(summary.mean, online.mean(), online.mean()));
        prop_assert!(close(summary.std_dev, online.sample_std_dev(), online.sample_std_dev().max(1e5)));
        prop_assert_eq!(summary.min.to_bits(), online.min().unwrap().to_bits());
        prop_assert_eq!(summary.max.to_bits(), online.max().unwrap().to_bits());
        prop_assert_eq!(summary.n, online.count());
        // Mean is bracketed by the extrema; σ and CI are non-negative.
        prop_assert!(summary.min <= summary.mean + 1e-9 && summary.mean <= summary.max + 1e-9);
        prop_assert!(summary.std_dev >= 0.0 && summary.ci95 >= 0.0);
    }

    #[test]
    fn summaries_are_invariant_to_sample_order(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..32),
        rot in 0usize..32
    ) {
        let mut rotated = xs.clone();
        rotated.rotate_left(rot % xs.len().max(1));
        let a = MetricSummary::from_samples(&xs);
        let b = MetricSummary::from_samples(&rotated);
        prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        prop_assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
        prop_assert_eq!(a.min.to_bits(), b.min.to_bits());
        prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
        prop_assert_eq!(a.ci95.to_bits(), b.ci95.to_bits());
    }

    #[test]
    fn n1_spread_is_zero_and_cell_is_bare(x in -1e6f64..1e6) {
        let summary = MetricSummary::from_samples(&[x]);
        prop_assert_eq!(summary.n, 1);
        prop_assert_eq!(summary.std_dev, 0.0);
        prop_assert_eq!(summary.ci95, 0.0);
        prop_assert_eq!(summary.min.to_bits(), x.to_bits());
        prop_assert_eq!(summary.max.to_bits(), x.to_bits());
        let cell = summary.cell(3);
        prop_assert!(cell.ends_with("(n=1)"), "{}", cell);
        prop_assert!(!cell.contains('±'), "{}", cell);
    }

    #[test]
    fn constant_series_has_zero_spread(x in -1e5f64..1e5, n in 2usize..32) {
        let xs = vec![x; n];
        let summary = MetricSummary::from_samples(&xs);
        // Welford on identical values cancels exactly: σ and CI are
        // exactly zero, not merely tiny.
        prop_assert_eq!(summary.std_dev, 0.0);
        prop_assert_eq!(summary.ci95, 0.0);
        prop_assert_eq!(summary.mean.to_bits(), x.to_bits());
        let online: OnlineStats = xs.iter().copied().collect();
        prop_assert_eq!(online.sample_variance(), 0.0);
        prop_assert_eq!(online.ci95_half_width(), 0.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..48),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0
    ) {
        let s: SampleStats = xs.iter().copied().collect();
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = s.quantile(lo).unwrap();
        let v_hi = s.quantile(hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-9, "q{} = {} > q{} = {}", lo, v_lo, hi, v_hi);
        prop_assert!(s.quantile(0.0).unwrap() <= v_lo + 1e-9);
        prop_assert!(v_hi <= s.quantile(1.0).unwrap() + 1e-9);
        // The extremes are exactly min and max.
        let summary = s.summary();
        prop_assert_eq!(s.quantile(0.0).unwrap().to_bits(), summary.min.to_bits());
        prop_assert_eq!(s.quantile(1.0).unwrap().to_bits(), summary.max.to_bits());
    }
}
