//! The streaming-vs-offline oracle for the temporal monitors: the
//! O(1)-state streaming verdict must be **bit-identical** to a
//! brute-force offline evaluation over the materialised sample
//! sequence, for random property trees and random traces — including
//! the empty and length-1 streams.
//!
//! The vendored proptest has no `prop_oneof`/recursive strategies, so
//! property trees are built deterministically from random integer /
//! float node vectors: the first node picks the base combinator
//! (always / eventually / until), every further node wraps the tree in
//! an `after` layer.

use proptest::prelude::*;
use qgov_metrics::{Property, Verdict};

/// A threshold predicate over an `f64` sample: `v >= t` or `v < t`.
#[derive(Debug, Clone, Copy)]
struct Pred {
    threshold: f64,
    ge: bool,
}

impl Pred {
    fn eval(self, v: f64) -> bool {
        if self.ge {
            v >= self.threshold
        } else {
            v < self.threshold
        }
    }

    fn closure(self) -> impl FnMut(&f64) -> bool + Send + 'static {
        move |v: &f64| self.eval(*v)
    }
}

/// A materialised property tree, mirroring the streaming combinators.
#[derive(Debug, Clone)]
enum Spec {
    Always(Pred),
    Eventually(Pred),
    Until { hold: Pred, release: Pred },
    After { trigger: Pred, inner: Box<Spec> },
}

/// One raw tree node drawn by proptest: (combinator tag, threshold,
/// predicate-direction bits).
type Node = (u8, f64, u8);

/// Deterministically folds raw nodes into a property tree: `nodes[0]`
/// picks the base combinator, each further node adds an `after` layer.
fn build_spec(nodes: &[Node]) -> Spec {
    let (tag, t, bits) = nodes[0];
    let pred = |t: f64, bit: u8| Pred {
        threshold: t,
        ge: bit & 1 == 0,
    };
    let mut spec = match tag % 3 {
        0 => Spec::Always(pred(t, bits)),
        1 => Spec::Eventually(pred(t, bits)),
        _ => Spec::Until {
            hold: pred(t, bits),
            release: pred(t - 0.7, bits >> 1),
        },
    };
    for &(_, t, bits) in &nodes[1..] {
        spec = Spec::After {
            trigger: pred(t, bits),
            inner: Box::new(spec),
        };
    }
    spec
}

/// Builds the streaming property mirroring `spec`.
fn build_property(spec: &Spec) -> Property<f64> {
    match spec {
        Spec::Always(p) => Property::always(p.closure()),
        Spec::Eventually(p) => Property::eventually(p.closure()),
        Spec::Until { hold, release } => Property::until(hold.closure(), release.closure()),
        Spec::After { trigger, inner } => Property::after(trigger.closure(), build_property(inner)),
    }
}

/// Brute-force offline evaluation of `spec` over `trace`, whose first
/// sample carries absolute epoch `start` (nested `after` layers keep
/// absolute epoch numbers, exactly like the streaming monitor).
fn eval_offline(spec: &Spec, trace: &[f64], start: u64) -> Verdict {
    if trace.is_empty() {
        return Verdict::Vacuous;
    }
    let last = start + trace.len() as u64 - 1;
    match spec {
        Spec::Always(p) => match trace.iter().position(|v| !p.eval(*v)) {
            Some(i) => Verdict::Violated {
                epoch: start + i as u64,
            },
            None => Verdict::Holds,
        },
        Spec::Eventually(p) => {
            if trace.iter().any(|v| p.eval(*v)) {
                Verdict::Holds
            } else {
                Verdict::Violated { epoch: last }
            }
        }
        Spec::Until { hold, release } => {
            for (i, v) in trace.iter().enumerate() {
                if release.eval(*v) {
                    return if i == 0 {
                        Verdict::Vacuous
                    } else {
                        Verdict::Holds
                    };
                }
                if !hold.eval(*v) {
                    return Verdict::Violated {
                        epoch: start + i as u64,
                    };
                }
            }
            Verdict::Violated { epoch: last }
        }
        Spec::After { trigger, inner } => match trace.iter().position(|v| trigger.eval(*v)) {
            Some(i) => eval_offline(inner, &trace[i..], start + i as u64),
            None => Verdict::Vacuous,
        },
    }
}

/// Streams `trace` through the property and returns the final verdict.
fn eval_streaming(spec: &Spec, trace: &[f64]) -> Verdict {
    let mut prop = build_property(spec);
    for (epoch, v) in trace.iter().enumerate() {
        prop.observe(epoch as u64, v);
    }
    prop.verdict()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn streaming_verdict_matches_offline_evaluation(
        nodes in proptest::collection::vec((0u8..6, -1.0f64..1.0, 0u8..4), 1..5),
        trace in proptest::collection::vec(-1.2f64..1.2, 0..32),
    ) {
        let spec = build_spec(&nodes);
        let offline = eval_offline(&spec, &trace, 0);
        let streaming = eval_streaming(&spec, &trace);
        prop_assert_eq!(
            streaming, offline,
            "spec {:?} trace {:?}", spec, trace
        );
    }

    #[test]
    fn verdict_is_stable_once_the_stream_ends(
        nodes in proptest::collection::vec((0u8..6, -1.0f64..1.0, 0u8..4), 1..4),
        trace in proptest::collection::vec(-1.2f64..1.2, 0..16),
    ) {
        // verdict() is read-only: calling it repeatedly — and between
        // observations — never changes the final answer.
        let spec = build_spec(&nodes);
        let mut prop = build_property(&spec);
        for (epoch, v) in trace.iter().enumerate() {
            let _ = prop.verdict();
            prop.observe(epoch as u64, v);
        }
        prop_assert_eq!(prop.verdict(), prop.verdict());
        prop_assert_eq!(prop.verdict(), eval_offline(&spec, &trace, 0));
    }
}

#[test]
fn empty_stream_is_vacuous_for_every_combinator() {
    for tag in 0u8..3 {
        let spec = build_spec(&[(tag, 0.0, 0)]);
        assert_eq!(eval_streaming(&spec, &[]), Verdict::Vacuous, "{spec:?}");
        assert_eq!(eval_offline(&spec, &[], 0), Verdict::Vacuous);
    }
    // A never-fired `after` wrapper is vacuous even over a non-empty
    // stream.
    let spec = Spec::After {
        trigger: Pred {
            threshold: 10.0,
            ge: true,
        },
        inner: Box::new(Spec::Always(Pred {
            threshold: 0.0,
            ge: true,
        })),
    };
    assert_eq!(eval_streaming(&spec, &[0.5, 0.5]), Verdict::Vacuous);
}

#[test]
fn length_one_streams_agree_on_every_combinator() {
    for tag in 0u8..3 {
        for bits in 0u8..4 {
            for v in [-1.0, -0.5, 0.0, 0.5, 1.0] {
                let spec = build_spec(&[(tag, 0.0, bits)]);
                assert_eq!(
                    eval_streaming(&spec, &[v]),
                    eval_offline(&spec, &[v], 0),
                    "{spec:?} over [{v}]"
                );
            }
        }
    }
}
