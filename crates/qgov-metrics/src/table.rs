//! Aligned ASCII comparison tables.

/// A small column-aligned table for printing paper-style comparisons,
/// with CSV export.
///
/// # Examples
///
/// ```
/// use qgov_metrics::ComparisonTable;
///
/// let mut t = ComparisonTable::new(vec!["Methodology", "Norm. energy"]);
/// t.add_row(vec!["Linux Ondemand".into(), "1.29".into()]);
/// t.add_row(vec!["Proposed".into(), "1.11".into()]);
/// let text = t.render();
/// assert!(text.contains("Proposed"));
/// assert!(t.to_csv().starts_with("Methodology,Norm. energy"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ComparisonTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        ComparisonTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Exports as CSV (cells containing commas or quotes are quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ComparisonTable {
        let mut t = ComparisonTable::new(vec!["Name", "Value"]);
        t.add_row(vec!["short".into(), "1.0".into()]);
        t.add_row(vec!["a much longer name".into(), "2.25".into()]);
        t
    }

    #[test]
    fn columns_align() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        // "Value" column starts at the same offset in every row.
        let offset = lines[0].find("Value").unwrap();
        assert_eq!(lines[2].find("1.0").unwrap(), offset);
        assert_eq!(lines[3].find("2.25").unwrap(), offset);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = ComparisonTable::new(vec!["a", "b"]);
        t.add_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn row_width_is_validated() {
        let mut t = ComparisonTable::new(vec!["only one"]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.add_row(vec!["a".into(), "b".into()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn emptiness() {
        let t = ComparisonTable::new(vec!["h"]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }
}
