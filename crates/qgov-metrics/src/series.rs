//! Named data series for figure regeneration.

/// A named (x, y) series, e.g. "predicted CC" over frame numbers.
///
/// Figures are regenerated as CSV files (one x column, one column per
/// series) that any plotting tool can consume.
///
/// # Examples
///
/// ```
/// use qgov_metrics::Series;
///
/// let a = Series::from_ys("actual", &[1.0, 2.0]);
/// let b = Series::from_ys("predicted", &[1.0, 1.5]);
/// let csv = Series::to_csv_aligned("frame", &[&a, &b]);
/// assert!(csv.starts_with("frame,actual,predicted\n"));
/// assert!(csv.contains("0,1,1"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from explicit (x, y) points.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is not finite.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
            "series points must be finite"
        );
        Series {
            name: name.into(),
            points,
        }
    }

    /// Creates a series from y-values indexed 0, 1, 2, …
    #[must_use]
    pub fn from_ys(name: impl Into<String>, ys: &[f64]) -> Self {
        Self::new(
            name,
            ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        )
    }

    /// The series name (used as its CSV column header).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders several series sharing an x-axis as one CSV document.
    /// Rows are taken from the first series' x-values; shorter series
    /// leave blank cells.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty.
    #[must_use]
    pub fn to_csv_aligned(x_name: &str, series: &[&Series]) -> String {
        assert!(!series.is_empty(), "need at least one series");
        let mut out = String::new();
        out.push_str(x_name);
        for s in series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..rows {
            let x = series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0))
                .unwrap_or(i as f64);
            out.push_str(&trim_float(x));
            for s in series {
                out.push(',');
                if let Some(p) = s.points.get(i) {
                    out.push_str(&trim_float(p.1));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly (no trailing zeros, integers bare).
fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ys_indexes_sequentially() {
        let s = Series::from_ys("y", &[5.0, 6.0, 7.0]);
        assert_eq!(s.points()[2], (2.0, 7.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn aligned_csv_handles_uneven_lengths() {
        let a = Series::from_ys("a", &[1.0, 2.0, 3.0]);
        let b = Series::from_ys("b", &[9.0]);
        let csv = Series::to_csv_aligned("x", &[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "0,1,9");
        assert_eq!(lines[2], "1,2,");
        assert_eq!(lines[3], "2,3,");
    }

    #[test]
    fn floats_are_trimmed() {
        assert_eq!(trim_float(2.0), "2");
        assert_eq!(trim_float(2.5), "2.5");
        assert_eq!(trim_float(0.333333333), "0.333333");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_points_panic() {
        let _ = Series::new("bad", vec![(0.0, f64::NAN)]);
    }
}
