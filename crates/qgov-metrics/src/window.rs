//! Windowed streaming folds: convergence-over-time summaries for
//! long-horizon runs.
//!
//! A 100k-frame experiment cannot report a single mean and call it a
//! learning curve — the whole point of a long horizon is to see the
//! governor's behaviour *change* as the Q-table converges. A
//! [`WindowedStats`] fold splits the sample stream into fixed-length
//! windows and keeps one [`WindowSummary`] (mean / σ / extrema) per
//! window, in O(windows) memory however long the stream: the streaming
//! complement to the whole-run [`OnlineStats`] accumulator, the same
//! way `ShardedTrace` complements `WorkloadTrace` on the workload
//! side.

use crate::stats::OnlineStats;

/// One completed window's aggregate: its position in the stream plus
/// the moments of its samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Zero-based window index.
    pub index: usize,
    /// Stream index of the window's first sample.
    pub start: u64,
    /// Number of samples in the window (every window holds the
    /// configured length except possibly the last).
    pub len: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample (`n − 1`) standard deviation; zero when `len < 2`.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl WindowSummary {
    fn from_stats(index: usize, start: u64, stats: &OnlineStats) -> Self {
        WindowSummary {
            index,
            start,
            len: stats.count(),
            mean: stats.mean(),
            std_dev: stats.sample_std_dev(),
            min: stats.min().unwrap_or(0.0),
            max: stats.max().unwrap_or(0.0),
        }
    }
}

/// Folds a sample stream into fixed-length window summaries in
/// O(windows) memory.
///
/// Samples are pushed in stream order; every `window_len` samples a
/// window seals and its summary is appended. The trailing partial
/// window (if any) is sealed by [`WindowedStats::into_windows`].
///
/// # Examples
///
/// ```
/// use qgov_metrics::WindowedStats;
///
/// let mut w = WindowedStats::new(3);
/// w.extend([1.0, 2.0, 3.0, 10.0, 20.0, 30.0, 5.0]);
/// assert_eq!(w.completed().len(), 2);
/// assert_eq!(w.completed()[1].mean, 20.0);
///
/// let windows = w.into_windows(); // seals the 1-sample tail
/// assert_eq!(windows.len(), 3);
/// assert_eq!((windows[2].start, windows[2].len, windows[2].mean), (6, 1, 5.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedStats {
    window_len: u64,
    total: u64,
    current: OnlineStats,
    windows: Vec<WindowSummary>,
}

impl WindowedStats {
    /// Creates a fold with `window_len` samples per window.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is zero.
    #[must_use]
    pub fn new(window_len: u64) -> Self {
        assert!(window_len > 0, "a window needs at least one sample");
        WindowedStats {
            window_len,
            total: 0,
            current: OnlineStats::new(),
            windows: Vec::new(),
        }
    }

    /// A fold sized so a stream of `total` samples yields about
    /// `windows` windows: `window_len = ceil(total / windows)`,
    /// clamped to at least one sample per window.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero.
    #[must_use]
    pub fn spanning(total: u64, windows: u64) -> Self {
        assert!(windows > 0, "at least one window is required");
        Self::new(total.div_ceil(windows).max(1))
    }

    /// Adds one sample, sealing the current window if it fills.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite (inherited from [`OnlineStats`]).
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        self.total += 1;
        if self.current.count() == self.window_len {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let start = self.total - self.current.count();
        let summary = WindowSummary::from_stats(self.windows.len(), start, &self.current);
        self.windows.push(summary);
        self.current = OnlineStats::new();
    }

    /// Pre-reserves capacity for `additional` further window
    /// summaries, so a stream of known length folds without
    /// reallocating (the harness's zero-allocation steady-state loop
    /// sizes its folds with this before entering the hot loop).
    pub fn reserve(&mut self, additional: usize) {
        self.windows.reserve(additional);
    }

    /// Samples per full window.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Total samples pushed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when no samples were pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The sealed (full-length) windows so far, in stream order.
    #[must_use]
    pub fn completed(&self) -> &[WindowSummary] {
        &self.windows
    }

    /// Consumes the fold, sealing the trailing partial window (if any),
    /// and returns every window in stream order.
    #[must_use]
    pub fn into_windows(mut self) -> Vec<WindowSummary> {
        if self.current.count() > 0 {
            self.seal();
        }
        self.windows
    }
}

impl Extend<f64> for WindowedStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_split_the_stream_in_order() {
        let mut w = WindowedStats::new(4);
        w.extend((0..12).map(f64::from));
        let windows = w.into_windows();
        assert_eq!(windows.len(), 3);
        for (i, win) in windows.iter().enumerate() {
            assert_eq!(win.index, i);
            assert_eq!(win.start, i as u64 * 4);
            assert_eq!(win.len, 4);
        }
        assert_eq!(windows[0].mean, 1.5);
        assert_eq!(windows[2].mean, 9.5);
        assert_eq!((windows[2].min, windows[2].max), (8.0, 11.0));
    }

    #[test]
    fn partial_tail_is_sealed_only_on_finish() {
        let mut w = WindowedStats::new(5);
        w.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(w.completed().len(), 1);
        assert_eq!(w.count(), 7);
        let windows = w.into_windows();
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[1].start, windows[1].len), (5, 2));
        assert_eq!(windows[1].mean, 6.5);
    }

    #[test]
    fn exact_multiple_leaves_no_partial_tail() {
        let mut w = WindowedStats::new(3);
        w.extend([1.0; 6]);
        assert_eq!(w.completed().len(), 2);
        assert_eq!(w.into_windows().len(), 2);
    }

    #[test]
    fn empty_fold_yields_no_windows() {
        let w = WindowedStats::new(3);
        assert!(w.is_empty());
        assert!(w.into_windows().is_empty());
    }

    #[test]
    fn window_std_dev_is_sample_corrected() {
        let mut w = WindowedStats::new(2);
        w.extend([1.0, 3.0]);
        let windows = w.into_windows();
        // Sample (n − 1) std dev of {1, 3} is √2.
        assert!((windows[0].std_dev - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn spanning_sizes_the_window_from_the_total() {
        assert_eq!(WindowedStats::spanning(100, 10).window_len(), 10);
        assert_eq!(WindowedStats::spanning(101, 10).window_len(), 11);
        assert_eq!(WindowedStats::spanning(3, 10).window_len(), 1);
        let mut w = WindowedStats::spanning(20_000, 10);
        w.extend((0..20_000).map(|i| f64::from(i % 7)));
        assert_eq!(w.into_windows().len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_window_len_panics() {
        let _ = WindowedStats::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_window_count_panics() {
        let _ = WindowedStats::spanning(10, 0);
    }
}
