//! Per-run accounting.

use crate::monitor::MonitorReport;
use crate::{OnlineStats, WindowedStats};
use qgov_units::{Energy, Power, SimTime, Temp};

/// Windowed per-frame folds kept instead of raw [`FrameStat`]s when a
/// report runs in windowed retention
/// ([`RunReport::with_windowed_frames`]): one [`WindowedStats`] per
/// tracked signal, so a multi-million-frame horizon costs O(windows)
/// memory while every whole-run scalar on [`RunReport`] stays
/// bit-identical to full retention.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameWindows {
    ratio: WindowedStats,
    energy_j: WindowedStats,
    opp: WindowedStats,
    miss: WindowedStats,
}

impl FrameWindows {
    fn new(window_len: u64) -> Self {
        FrameWindows {
            ratio: WindowedStats::new(window_len),
            energy_j: WindowedStats::new(window_len),
            opp: WindowedStats::new(window_len),
            miss: WindowedStats::new(window_len),
        }
    }

    fn push(&mut self, ratio: f64, energy_j: f64, opp: usize, met_deadline: bool) {
        self.ratio.push(ratio);
        self.energy_j.push(energy_j);
        self.opp.push(opp as f64);
        self.miss.push(if met_deadline { 0.0 } else { 1.0 });
    }

    fn reserve_frames(&mut self, frames: usize) {
        let windows = (frames as u64)
            .div_ceil(self.ratio.window_len())
            .saturating_add(1) as usize;
        self.ratio.reserve(windows);
        self.energy_j.reserve(windows);
        self.opp.reserve(windows);
        self.miss.reserve(windows);
    }

    /// Samples per full window.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.ratio.window_len()
    }

    /// Windowed fold of the per-frame `Tᵢ / T_ref` performance ratio.
    #[must_use]
    pub fn ratio(&self) -> &WindowedStats {
        &self.ratio
    }

    /// Windowed fold of per-frame ground-truth energy in joules.
    #[must_use]
    pub fn energy_j(&self) -> &WindowedStats {
        &self.energy_j
    }

    /// Windowed fold of the cluster OPP index.
    #[must_use]
    pub fn opp(&self) -> &WindowedStats {
        &self.opp
    }

    /// Windowed fold of the deadline-miss indicator (1 = missed).
    #[must_use]
    pub fn miss(&self) -> &WindowedStats {
        &self.miss
    }
}

/// Minimal per-frame record kept by a run for downstream analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameStat {
    /// Execution time of the frame (including overheads).
    pub frame_time: SimTime,
    /// Wall-clock span of the epoch.
    pub wall_time: SimTime,
    /// Ground-truth energy of the epoch.
    pub energy: Energy,
    /// Cluster OPP index the frame ran at.
    pub opp: usize,
    /// Whether the deadline was met.
    pub met_deadline: bool,
}

/// Accumulated results of one governor × application run.
///
/// Normalisation follows the paper's Table I conventions:
/// *performance* is normalised to the required per-frame time `T_ref`
/// (values < 1 mean over-performance, > 1 mean under-performance), and
/// *energy* is normalised to the Oracle's consumption on the identical
/// workload.
///
/// # Examples
///
/// ```
/// use qgov_metrics::RunReport;
/// use qgov_units::{Energy, SimTime};
///
/// let mut report = RunReport::new("mygov", "myapp", SimTime::from_ms(40));
/// report.record_frame(
///     SimTime::from_ms(30), SimTime::from_ms(40),
///     Energy::from_joules(0.1), 7, true,
/// );
/// assert_eq!(report.frames(), 1);
/// assert!((report.normalized_performance() - 0.75).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    governor: String,
    app: String,
    period: SimTime,
    frames: Vec<FrameStat>,
    /// `Some` in windowed retention: per-frame folds replacing the raw
    /// `frames` vector (which then stays empty).
    windows: Option<FrameWindows>,
    /// Streaming frame counter — authoritative in both retention
    /// modes, so whole-run scalars never depend on `frames.len()`.
    frame_count: u64,
    /// Streaming OPP-index sum, accumulated in record order (the same
    /// left-to-right fold a post-hoc sum over `frames` performs, so
    /// [`mean_opp`](RunReport::mean_opp) is bit-identical across
    /// retention modes).
    opp_sum: f64,
    frame_time_ratio: OnlineStats,
    total_energy: Energy,
    total_measured_energy: Energy,
    total_wall: SimTime,
    misses: u64,
    transitions: u64,
    total_overhead: SimTime,
    peak_temp: Temp,
    /// Temporal-property verdicts, when the run was monitored. `None`
    /// for unmonitored runs, so monitored and plain reports of the same
    /// run differ only here.
    monitor: Option<MonitorReport>,
}

impl RunReport {
    /// Creates an empty report.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(governor: impl Into<String>, app: impl Into<String>, period: SimTime) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        RunReport {
            governor: governor.into(),
            app: app.into(),
            period,
            frames: Vec::new(),
            windows: None,
            frame_count: 0,
            opp_sum: 0.0,
            frame_time_ratio: OnlineStats::new(),
            total_energy: Energy::ZERO,
            total_measured_energy: Energy::ZERO,
            total_wall: SimTime::ZERO,
            misses: 0,
            transitions: 0,
            total_overhead: SimTime::ZERO,
            peak_temp: Temp::default(),
            monitor: None,
        }
    }

    /// Switches the report to **windowed retention** before any frame
    /// is recorded: instead of one [`FrameStat`] per frame, per-frame
    /// signals stream into [`FrameWindows`] folds of `window_len`
    /// frames each, keeping a multi-million-frame run O(windows). All
    /// whole-run scalars (`frames`, `normalized_performance`,
    /// `miss_rate`, `mean_opp`, energies) are computed from streaming
    /// accumulators and stay bit-identical to full retention;
    /// [`frame_stats`](RunReport::frame_stats) returns an empty slice.
    ///
    /// # Panics
    ///
    /// Panics if frames were already recorded or `window_len` is zero.
    #[must_use]
    pub fn with_windowed_frames(mut self, window_len: u64) -> Self {
        assert_eq!(
            self.frame_count, 0,
            "retention must be chosen before recording frames"
        );
        self.windows = Some(FrameWindows::new(window_len));
        self
    }

    /// Pre-reserves capacity for `frames` further
    /// [`record_frame`](RunReport::record_frame) calls, so a run of
    /// known length records every frame without reallocating (the
    /// harness's zero-allocation steady-state loop). In windowed
    /// retention this reserves the window summaries instead.
    pub fn reserve_frames(&mut self, frames: usize) {
        match &mut self.windows {
            Some(w) => w.reserve_frames(frames),
            None => self.frames.reserve(frames),
        }
    }

    /// Records one frame's outcome.
    pub fn record_frame(
        &mut self,
        frame_time: SimTime,
        wall_time: SimTime,
        energy: Energy,
        opp: usize,
        met_deadline: bool,
    ) {
        let ratio = frame_time.ratio(self.period);
        match &mut self.windows {
            Some(w) => w.push(ratio, energy.as_joules(), opp, met_deadline),
            None => self.frames.push(FrameStat {
                frame_time,
                wall_time,
                energy,
                opp,
                met_deadline,
            }),
        }
        self.frame_count += 1;
        self.opp_sum += opp as f64;
        self.frame_time_ratio.push(ratio);
        self.total_energy += energy;
        self.total_wall += wall_time;
        if !met_deadline {
            self.misses += 1;
        }
    }

    /// Records run-wide extras not visible per frame.
    pub fn set_run_totals(
        &mut self,
        measured_energy: Energy,
        transitions: u64,
        total_overhead: SimTime,
        peak_temp: Temp,
    ) {
        self.total_measured_energy = measured_energy;
        self.transitions = transitions;
        self.total_overhead = total_overhead;
        self.peak_temp = peak_temp;
    }

    /// Governor name.
    #[must_use]
    pub fn governor(&self) -> &str {
        &self.governor
    }

    /// Application name.
    #[must_use]
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The per-frame deadline `T_ref`.
    #[must_use]
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Number of frames recorded.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frame_count
    }

    /// The per-frame records. Empty in windowed retention — use
    /// [`frame_windows`](RunReport::frame_windows) there.
    #[must_use]
    pub fn frame_stats(&self) -> &[FrameStat] {
        &self.frames
    }

    /// The windowed per-frame folds, when the report runs in windowed
    /// retention ([`with_windowed_frames`](RunReport::with_windowed_frames)).
    #[must_use]
    pub fn frame_windows(&self) -> Option<&FrameWindows> {
        self.windows.as_ref()
    }

    /// Ground-truth energy of the whole run.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }

    /// Sensor-measured energy of the whole run (the paper's
    /// measurement).
    #[must_use]
    pub fn measured_energy(&self) -> Energy {
        self.total_measured_energy
    }

    /// Mean ground-truth power over the run.
    #[must_use]
    pub fn avg_power(&self) -> Power {
        if self.total_wall.is_zero() {
            Power::ZERO
        } else {
            Power::from_watts(self.total_energy.as_joules() / self.total_wall.as_secs_f64())
        }
    }

    /// The paper's normalised performance: mean `Tᵢ / T_ref`. Values
    /// below 1 are over-performance, above 1 under-performance.
    #[must_use]
    pub fn normalized_performance(&self) -> f64 {
        self.frame_time_ratio.mean()
    }

    /// The paper's normalised energy with respect to a reference run
    /// (the Oracle in Table I).
    ///
    /// # Panics
    ///
    /// Panics if the reference consumed zero energy.
    #[must_use]
    pub fn normalized_energy(&self, reference: &RunReport) -> f64 {
        self.total_energy.normalized_to(reference.total_energy)
    }

    /// Number of missed deadlines.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of frames that missed their deadline.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.frame_count == 0 {
            0.0
        } else {
            self.misses as f64 / self.frame_count as f64
        }
    }

    /// Number of V-F transitions performed.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total learning/DVFS overhead time charged (`ΣT_OVH`).
    #[must_use]
    pub fn total_overhead(&self) -> SimTime {
        self.total_overhead
    }

    /// Peak die temperature of the run.
    #[must_use]
    pub fn peak_temp(&self) -> Temp {
        self.peak_temp
    }

    /// Attaches the temporal-monitor verdicts of a monitored run.
    pub fn set_monitor_report(&mut self, monitor: MonitorReport) {
        self.monitor = Some(monitor);
    }

    /// The temporal-monitor verdicts, when the run was monitored.
    #[must_use]
    pub fn monitor_report(&self) -> Option<&MonitorReport> {
        self.monitor.as_ref()
    }

    /// Strips the monitor verdicts, restoring the exact report an
    /// unmonitored run produces — the form the bit-identity seams
    /// compare.
    #[must_use]
    pub fn without_monitor_report(mut self) -> Self {
        self.monitor = None;
        self
    }

    /// Mean OPP index over the run (a quick energy-behaviour summary).
    #[must_use]
    pub fn mean_opp(&self) -> f64 {
        if self.frame_count == 0 {
            return 0.0;
        }
        self.opp_sum / self.frame_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(ratios: &[f64], energies_j: &[f64], met: &[bool]) -> RunReport {
        let period = SimTime::from_ms(100);
        let mut r = RunReport::new("g", "a", period);
        for ((&ratio, &e), &m) in ratios.iter().zip(energies_j).zip(met) {
            r.record_frame(
                period.scale(ratio),
                period.max(period.scale(ratio)),
                Energy::from_joules(e),
                5,
                m,
            );
        }
        r
    }

    #[test]
    fn normalized_performance_is_mean_ratio() {
        let r = report_with(&[0.5, 1.0, 1.5], &[1.0; 3], &[true, true, false]);
        assert!((r.normalized_performance() - 1.0).abs() < 1e-12);
        let over = report_with(&[0.5, 0.9], &[1.0; 2], &[true, true]);
        assert!((over.normalized_performance() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn normalized_energy_uses_reference() {
        let ours = report_with(&[1.0], &[11.1], &[true]);
        let oracle = report_with(&[1.0], &[10.0], &[true]);
        assert!((ours.normalized_energy(&oracle) - 1.11).abs() < 1e-12);
    }

    #[test]
    fn miss_accounting() {
        let r = report_with(&[1.0; 4], &[1.0; 4], &[true, false, true, false]);
        assert_eq!(r.deadline_misses(), 2);
        assert!((r.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn avg_power_is_energy_over_wall() {
        let r = report_with(&[1.0, 1.0], &[2.0, 4.0], &[true, true]);
        // 6 J over 200 ms = 30 W.
        assert!((r.avg_power().as_watts() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::new("g", "a", SimTime::from_ms(10));
        assert_eq!(r.frames(), 0);
        assert_eq!(r.normalized_performance(), 0.0);
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.avg_power(), Power::ZERO);
        assert_eq!(r.mean_opp(), 0.0);
    }

    #[test]
    fn monitor_report_attaches_and_strips_cleanly() {
        use crate::{Property, PropertySet};
        let plain = report_with(&[1.0], &[1.0], &[true]);
        let mut monitored = plain.clone();
        let mut set = PropertySet::new().with("ok", Property::always(|_: &u64| true));
        set.observe(&0);
        monitored.set_monitor_report(set.report());
        assert_ne!(monitored, plain);
        assert!(monitored.monitor_report().unwrap().is_clean());
        assert_eq!(monitored.without_monitor_report(), plain);
    }

    #[test]
    fn windowed_retention_matches_full_retention_bit_for_bit() {
        let period = SimTime::from_ms(100);
        let ratios = [0.5, 0.9, 1.1, 1.0, 0.7, 1.3, 0.8];
        let energies = [1.0, 2.5, 0.5, 3.0, 1.5, 2.0, 0.25];
        let met = [true, true, false, true, true, false, true];

        let mut full = RunReport::new("g", "a", period);
        let mut windowed = RunReport::new("g", "a", period).with_windowed_frames(3);
        windowed.reserve_frames(ratios.len());
        for ((&ratio, &e), &m) in ratios.iter().zip(&energies).zip(&met) {
            for r in [&mut full, &mut windowed] {
                r.record_frame(
                    period.scale(ratio),
                    period.max(period.scale(ratio)),
                    Energy::from_joules(e),
                    (ratio * 10.0) as usize,
                    m,
                );
            }
        }

        // Every whole-run scalar is bit-identical across retentions.
        assert_eq!(full.frames(), windowed.frames());
        assert_eq!(
            full.normalized_performance().to_bits(),
            windowed.normalized_performance().to_bits()
        );
        assert_eq!(full.mean_opp().to_bits(), windowed.mean_opp().to_bits());
        assert_eq!(full.miss_rate().to_bits(), windowed.miss_rate().to_bits());
        assert_eq!(
            full.total_energy().as_joules().to_bits(),
            windowed.total_energy().as_joules().to_bits()
        );
        assert_eq!(full.deadline_misses(), windowed.deadline_misses());

        // Windowed retention drops the raw records and keeps the folds,
        // which equal a post-hoc re-fold of the full frame stream.
        assert!(windowed.frame_stats().is_empty());
        assert_eq!(full.frame_windows(), None);
        let folds = windowed.frame_windows().expect("windowed retention");
        assert_eq!(folds.window_len(), 3);
        let mut refold = WindowedStats::new(3);
        refold.extend(full.frame_stats().iter().map(|f| f.opp as f64));
        assert_eq!(folds.opp().clone().into_windows(), refold.into_windows());
        let miss_windows = folds.miss().clone().into_windows();
        let total_misses: f64 = miss_windows.iter().map(|w| w.mean * w.len as f64).sum();
        assert!((total_misses - windowed.deadline_misses() as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before recording frames")]
    fn windowed_retention_after_frames_panics() {
        let r = report_with(&[1.0], &[1.0], &[true]);
        let _ = r.with_windowed_frames(4);
    }

    #[test]
    fn run_totals_are_stored() {
        let mut r = report_with(&[1.0], &[1.0], &[true]);
        r.set_run_totals(
            Energy::from_joules(1.02),
            7,
            SimTime::from_ms(3),
            Temp::from_celsius(71.0),
        );
        assert_eq!(r.transitions(), 7);
        assert_eq!(r.total_overhead(), SimTime::from_ms(3));
        assert_eq!(r.peak_temp(), Temp::from_celsius(71.0));
        assert!((r.measured_energy().as_joules() - 1.02).abs() < 1e-12);
    }
}
