//! Per-run accounting.

use crate::monitor::MonitorReport;
use crate::OnlineStats;
use qgov_units::{Energy, Power, SimTime, Temp};

/// Minimal per-frame record kept by a run for downstream analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameStat {
    /// Execution time of the frame (including overheads).
    pub frame_time: SimTime,
    /// Wall-clock span of the epoch.
    pub wall_time: SimTime,
    /// Ground-truth energy of the epoch.
    pub energy: Energy,
    /// Cluster OPP index the frame ran at.
    pub opp: usize,
    /// Whether the deadline was met.
    pub met_deadline: bool,
}

/// Accumulated results of one governor × application run.
///
/// Normalisation follows the paper's Table I conventions:
/// *performance* is normalised to the required per-frame time `T_ref`
/// (values < 1 mean over-performance, > 1 mean under-performance), and
/// *energy* is normalised to the Oracle's consumption on the identical
/// workload.
///
/// # Examples
///
/// ```
/// use qgov_metrics::RunReport;
/// use qgov_units::{Energy, SimTime};
///
/// let mut report = RunReport::new("mygov", "myapp", SimTime::from_ms(40));
/// report.record_frame(
///     SimTime::from_ms(30), SimTime::from_ms(40),
///     Energy::from_joules(0.1), 7, true,
/// );
/// assert_eq!(report.frames(), 1);
/// assert!((report.normalized_performance() - 0.75).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    governor: String,
    app: String,
    period: SimTime,
    frames: Vec<FrameStat>,
    frame_time_ratio: OnlineStats,
    total_energy: Energy,
    total_measured_energy: Energy,
    total_wall: SimTime,
    misses: u64,
    transitions: u64,
    total_overhead: SimTime,
    peak_temp: Temp,
    /// Temporal-property verdicts, when the run was monitored. `None`
    /// for unmonitored runs, so monitored and plain reports of the same
    /// run differ only here.
    monitor: Option<MonitorReport>,
}

impl RunReport {
    /// Creates an empty report.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(governor: impl Into<String>, app: impl Into<String>, period: SimTime) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        RunReport {
            governor: governor.into(),
            app: app.into(),
            period,
            frames: Vec::new(),
            frame_time_ratio: OnlineStats::new(),
            total_energy: Energy::ZERO,
            total_measured_energy: Energy::ZERO,
            total_wall: SimTime::ZERO,
            misses: 0,
            transitions: 0,
            total_overhead: SimTime::ZERO,
            peak_temp: Temp::default(),
            monitor: None,
        }
    }

    /// Pre-reserves capacity for `frames` further
    /// [`record_frame`](RunReport::record_frame) calls, so a run of
    /// known length records every frame without reallocating (the
    /// harness's zero-allocation steady-state loop).
    pub fn reserve_frames(&mut self, frames: usize) {
        self.frames.reserve(frames);
    }

    /// Records one frame's outcome.
    pub fn record_frame(
        &mut self,
        frame_time: SimTime,
        wall_time: SimTime,
        energy: Energy,
        opp: usize,
        met_deadline: bool,
    ) {
        self.frames.push(FrameStat {
            frame_time,
            wall_time,
            energy,
            opp,
            met_deadline,
        });
        self.frame_time_ratio.push(frame_time.ratio(self.period));
        self.total_energy += energy;
        self.total_wall += wall_time;
        if !met_deadline {
            self.misses += 1;
        }
    }

    /// Records run-wide extras not visible per frame.
    pub fn set_run_totals(
        &mut self,
        measured_energy: Energy,
        transitions: u64,
        total_overhead: SimTime,
        peak_temp: Temp,
    ) {
        self.total_measured_energy = measured_energy;
        self.transitions = transitions;
        self.total_overhead = total_overhead;
        self.peak_temp = peak_temp;
    }

    /// Governor name.
    #[must_use]
    pub fn governor(&self) -> &str {
        &self.governor
    }

    /// Application name.
    #[must_use]
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The per-frame deadline `T_ref`.
    #[must_use]
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Number of frames recorded.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// The per-frame records.
    #[must_use]
    pub fn frame_stats(&self) -> &[FrameStat] {
        &self.frames
    }

    /// Ground-truth energy of the whole run.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }

    /// Sensor-measured energy of the whole run (the paper's
    /// measurement).
    #[must_use]
    pub fn measured_energy(&self) -> Energy {
        self.total_measured_energy
    }

    /// Mean ground-truth power over the run.
    #[must_use]
    pub fn avg_power(&self) -> Power {
        if self.total_wall.is_zero() {
            Power::ZERO
        } else {
            Power::from_watts(self.total_energy.as_joules() / self.total_wall.as_secs_f64())
        }
    }

    /// The paper's normalised performance: mean `Tᵢ / T_ref`. Values
    /// below 1 are over-performance, above 1 under-performance.
    #[must_use]
    pub fn normalized_performance(&self) -> f64 {
        self.frame_time_ratio.mean()
    }

    /// The paper's normalised energy with respect to a reference run
    /// (the Oracle in Table I).
    ///
    /// # Panics
    ///
    /// Panics if the reference consumed zero energy.
    #[must_use]
    pub fn normalized_energy(&self, reference: &RunReport) -> f64 {
        self.total_energy.normalized_to(reference.total_energy)
    }

    /// Number of missed deadlines.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of frames that missed their deadline.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.misses as f64 / self.frames.len() as f64
        }
    }

    /// Number of V-F transitions performed.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total learning/DVFS overhead time charged (`ΣT_OVH`).
    #[must_use]
    pub fn total_overhead(&self) -> SimTime {
        self.total_overhead
    }

    /// Peak die temperature of the run.
    #[must_use]
    pub fn peak_temp(&self) -> Temp {
        self.peak_temp
    }

    /// Attaches the temporal-monitor verdicts of a monitored run.
    pub fn set_monitor_report(&mut self, monitor: MonitorReport) {
        self.monitor = Some(monitor);
    }

    /// The temporal-monitor verdicts, when the run was monitored.
    #[must_use]
    pub fn monitor_report(&self) -> Option<&MonitorReport> {
        self.monitor.as_ref()
    }

    /// Strips the monitor verdicts, restoring the exact report an
    /// unmonitored run produces — the form the bit-identity seams
    /// compare.
    #[must_use]
    pub fn without_monitor_report(mut self) -> Self {
        self.monitor = None;
        self
    }

    /// Mean OPP index over the run (a quick energy-behaviour summary).
    #[must_use]
    pub fn mean_opp(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(|f| f.opp as f64).sum::<f64>() / self.frames.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(ratios: &[f64], energies_j: &[f64], met: &[bool]) -> RunReport {
        let period = SimTime::from_ms(100);
        let mut r = RunReport::new("g", "a", period);
        for ((&ratio, &e), &m) in ratios.iter().zip(energies_j).zip(met) {
            r.record_frame(
                period.scale(ratio),
                period.max(period.scale(ratio)),
                Energy::from_joules(e),
                5,
                m,
            );
        }
        r
    }

    #[test]
    fn normalized_performance_is_mean_ratio() {
        let r = report_with(&[0.5, 1.0, 1.5], &[1.0; 3], &[true, true, false]);
        assert!((r.normalized_performance() - 1.0).abs() < 1e-12);
        let over = report_with(&[0.5, 0.9], &[1.0; 2], &[true, true]);
        assert!((over.normalized_performance() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn normalized_energy_uses_reference() {
        let ours = report_with(&[1.0], &[11.1], &[true]);
        let oracle = report_with(&[1.0], &[10.0], &[true]);
        assert!((ours.normalized_energy(&oracle) - 1.11).abs() < 1e-12);
    }

    #[test]
    fn miss_accounting() {
        let r = report_with(&[1.0; 4], &[1.0; 4], &[true, false, true, false]);
        assert_eq!(r.deadline_misses(), 2);
        assert!((r.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn avg_power_is_energy_over_wall() {
        let r = report_with(&[1.0, 1.0], &[2.0, 4.0], &[true, true]);
        // 6 J over 200 ms = 30 W.
        assert!((r.avg_power().as_watts() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::new("g", "a", SimTime::from_ms(10));
        assert_eq!(r.frames(), 0);
        assert_eq!(r.normalized_performance(), 0.0);
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.avg_power(), Power::ZERO);
        assert_eq!(r.mean_opp(), 0.0);
    }

    #[test]
    fn monitor_report_attaches_and_strips_cleanly() {
        use crate::{Property, PropertySet};
        let plain = report_with(&[1.0], &[1.0], &[true]);
        let mut monitored = plain.clone();
        let mut set = PropertySet::new().with("ok", Property::always(|_: &u64| true));
        set.observe(&0);
        monitored.set_monitor_report(set.report());
        assert_ne!(monitored, plain);
        assert!(monitored.monitor_report().unwrap().is_clean());
        assert_eq!(monitored.without_monitor_report(), plain);
    }

    #[test]
    fn run_totals_are_stored() {
        let mut r = report_with(&[1.0], &[1.0], &[true]);
        r.set_run_totals(
            Energy::from_joules(1.02),
            7,
            SimTime::from_ms(3),
            Temp::from_celsius(71.0),
        );
        assert_eq!(r.transitions(), 7);
        assert_eq!(r.total_overhead(), SimTime::from_ms(3));
        assert_eq!(r.peak_temp(), Temp::from_celsius(71.0));
        assert!((r.measured_energy().as_joules() - 1.02).abs() < 1e-12);
    }
}
