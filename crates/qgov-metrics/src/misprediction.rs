//! Workload misprediction analysis — the statistics Fig. 3 quotes.

use crate::OnlineStats;

/// Predicted-vs-actual workload error analysis.
///
/// The paper reports "the highest average misprediction with respect to
/// the average workload was approximately 8 %, evident for the first
/// 100 frames, with a lowest misprediction value of 3 % following it"
/// (Section III-B) — i.e. *windowed* mean absolute error relative to
/// the window's mean workload.
///
/// # Examples
///
/// ```
/// use qgov_metrics::MispredictionStats;
///
/// let predicted = [100.0, 110.0, 100.0];
/// let actual = [100.0, 100.0, 125.0];
/// let m = MispredictionStats::from_series(&predicted, &actual);
/// // errors: 0, 10, 25 -> mean 35/3 relative to mean actual 108.33
/// assert!((m.mean_relative_error() - (35.0 / 3.0) / (325.0 / 3.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MispredictionStats {
    predicted: Vec<f64>,
    actual: Vec<f64>,
}

impl MispredictionStats {
    /// Creates the analysis from aligned prediction/actual series.
    ///
    /// # Panics
    ///
    /// Panics if the series differ in length, are empty, or contain
    /// non-finite values.
    #[must_use]
    pub fn from_series(predicted: &[f64], actual: &[f64]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "series must be aligned frame by frame"
        );
        assert!(!predicted.is_empty(), "series must be non-empty");
        assert!(
            predicted.iter().chain(actual).all(|v| v.is_finite()),
            "series values must be finite"
        );
        MispredictionStats {
            predicted: predicted.to_vec(),
            actual: actual.to_vec(),
        }
    }

    /// Number of frames analysed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actual.len()
    }

    /// `false`: construction requires a non-empty series.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mean absolute error over a frame range, relative to the range's
    /// mean actual workload — the paper's "average misprediction with
    /// respect to the average workload".
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    #[must_use]
    pub fn windowed_relative_error(&self, start: usize, end: usize) -> f64 {
        assert!(
            start < end && end <= self.len(),
            "invalid window [{start}, {end})"
        );
        let mut abs_err = OnlineStats::new();
        let mut workload = OnlineStats::new();
        for i in start..end {
            abs_err.push((self.predicted[i] - self.actual[i]).abs());
            workload.push(self.actual[i]);
        }
        if workload.mean() == 0.0 {
            0.0
        } else {
            abs_err.mean() / workload.mean()
        }
    }

    /// Whole-run relative error.
    #[must_use]
    pub fn mean_relative_error(&self) -> f64 {
        self.windowed_relative_error(0, self.len())
    }

    /// The largest single-frame relative error and its frame index.
    #[must_use]
    pub fn worst_frame(&self) -> (usize, f64) {
        let mut worst = (0, 0.0);
        for i in 0..self.len() {
            if self.actual[i] > 0.0 {
                let e = (self.predicted[i] - self.actual[i]).abs() / self.actual[i];
                if e > worst.1 {
                    worst = (i, e);
                }
            }
        }
        worst
    }

    /// Frames whose relative error exceeds `threshold` (the paper's
    /// "mispredictions" in Fig. 3).
    #[must_use]
    pub fn mispredicted_frames(&self, threshold: f64) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| {
                self.actual[i] > 0.0
                    && (self.predicted[i] - self.actual[i]).abs() / self.actual[i] > threshold
            })
            .collect()
    }

    /// Fraction of frames under-predicted (actual above prediction —
    /// the dangerous direction: "under-prediction … results in a
    /// deadline miss", Section III-B).
    #[must_use]
    pub fn underprediction_rate(&self) -> f64 {
        let n = (0..self.len())
            .filter(|&i| self.actual[i] > self.predicted[i])
            .count();
        n as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_error() {
        let xs = [5.0, 6.0, 7.0];
        let m = MispredictionStats::from_series(&xs, &xs);
        assert_eq!(m.mean_relative_error(), 0.0);
        assert!(m.mispredicted_frames(0.01).is_empty());
    }

    #[test]
    fn windowed_error_localises_bursts() {
        // Accurate for 10 frames, then a burst of error.
        let actual = vec![100.0; 20];
        let mut predicted = vec![100.0; 20];
        for p in predicted.iter_mut().skip(10) {
            *p = 130.0;
        }
        let m = MispredictionStats::from_series(&predicted, &actual);
        assert_eq!(m.windowed_relative_error(0, 10), 0.0);
        assert!((m.windowed_relative_error(10, 20) - 0.3).abs() < 1e-12);
        assert!((m.mean_relative_error() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn worst_frame_is_found() {
        let predicted = [100.0, 100.0, 100.0];
        let actual = [100.0, 50.0, 90.0];
        let m = MispredictionStats::from_series(&predicted, &actual);
        let (idx, err) = m.worst_frame();
        assert_eq!(idx, 1);
        assert!((err - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underprediction_rate_counts_direction() {
        let predicted = [100.0, 100.0, 100.0, 100.0];
        let actual = [150.0, 50.0, 120.0, 100.0];
        let m = MispredictionStats::from_series(&predicted, &actual);
        assert!((m.underprediction_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic() {
        let _ = MispredictionStats::from_series(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn bad_window_panics() {
        let m = MispredictionStats::from_series(&[1.0, 2.0], &[1.0, 2.0]);
        let _ = m.windowed_relative_error(1, 1);
    }
}
