//! Cross-seed aggregation: order-invariant sample summaries and the
//! `mean ± σ (n)` tables the multi-seed experiment sweeps render.
//!
//! A sweep runs the same experiment once per seed and folds each
//! metric's per-seed samples into a [`MetricSummary`] (mean, sample
//! standard deviation, extrema, 95 % confidence interval). Summaries
//! are **invariant to sample order**: the fold sorts by
//! [`f64::total_cmp`] first, so aggregating seeds `[5, 77]` is
//! bit-identical to aggregating `[77, 5]` — the property
//! `tests/sweep_determinism.rs` pins.
//!
//! [`SweepTable`] renders one summary per cell in the paper-table
//! layouts ([`ComparisonTable`] underneath), with per-column numeric
//! formats and a wide CSV export carrying the full summary.

use crate::stats::OnlineStats;
use crate::table::ComparisonTable;

/// A keep-all-samples accumulator: everything [`OnlineStats`] offers
/// plus order statistics ([`SampleStats::quantile`]), for the small
/// sample counts of a seed sweep (one sample per seed).
///
/// # Examples
///
/// ```
/// use qgov_metrics::SampleStats;
///
/// let s: SampleStats = [4.0, 1.0, 3.0, 2.0].into_iter().collect();
/// assert_eq!(s.quantile(0.5), Some(2.5));
/// assert_eq!(s.quantile(0.0), Some(1.0));
/// assert_eq!(s.quantile(1.0), Some(4.0));
/// assert_eq!(s.summary().mean, 2.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleStats {
    samples: Vec<f64>,
}

impl SampleStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        SampleStats {
            samples: Vec::new(),
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "samples must be finite, got {x}");
        self.samples.push(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, in push order.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The `q`-quantile (0 = min, 0.5 = median, 1 = max) with linear
    /// interpolation between order statistics; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        Some(quantile_of_sorted(&sorted, q))
    }

    /// Folds the samples into a [`MetricSummary`] (order-invariant).
    #[must_use]
    pub fn summary(&self) -> MetricSummary {
        MetricSummary::from_samples(&self.samples)
    }
}

impl Extend<f64> for SampleStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for SampleStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Linearly interpolated `q`-quantile of an already-sorted slice.
fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// One metric's cross-seed aggregate: sample count, mean, sample
/// standard deviation, extrema, p50/p95 quantiles and the 95 %
/// confidence half-width.
///
/// Construction sorts the samples by [`f64::total_cmp`] before
/// folding, so a summary is **bit-identical under any permutation of
/// its samples** — what makes sweep aggregates invariant to seed-list
/// order. The quantiles use the same linear interpolation between
/// order statistics as [`SampleStats::quantile`]. With a single sample
/// (`n = 1`) the spread fields are all zero and [`MetricSummary::cell`]
/// renders a bare mean: σ of one observation is undefined, not small.
///
/// # Examples
///
/// ```
/// use qgov_metrics::MetricSummary;
///
/// let s = MetricSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.n, 5);
/// assert_eq!(s.mean, 3.0);
/// assert_eq!((s.min, s.max), (1.0, 5.0));
/// assert_eq!((s.p50, s.p95), (3.0, 4.8));
/// assert_eq!(s.cell(1), "3.0 ± 1.6 (n=5)");
/// assert_eq!(MetricSummary::from_samples(&[2.5]).cell(2), "2.50 (n=1)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Number of samples aggregated.
    pub n: u64,
    /// Sample mean (zero when empty).
    pub mean: f64,
    /// Sample (`n − 1`) standard deviation; zero when `n < 2`.
    pub std_dev: f64,
    /// Smallest sample (zero when empty).
    pub min: f64,
    /// Largest sample (zero when empty).
    pub max: f64,
    /// Median (0.5-quantile, interpolated; zero when empty).
    pub p50: f64,
    /// 0.95-quantile (interpolated; zero when empty).
    pub p95: f64,
    /// Half-width of the 95 % Student-t confidence interval on the
    /// mean; zero when `n < 2`.
    pub ci95: f64,
}

impl MetricSummary {
    /// Aggregates `samples` (any order; the fold sorts first).
    ///
    /// An empty slice yields the all-zero `n = 0` summary, which
    /// renders as `—`.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let stats: OnlineStats = sorted.iter().copied().collect();
        let (p50, p95) = if sorted.is_empty() {
            (0.0, 0.0)
        } else {
            (
                quantile_of_sorted(&sorted, 0.5),
                quantile_of_sorted(&sorted, 0.95),
            )
        };
        MetricSummary {
            n: stats.count(),
            mean: stats.mean(),
            std_dev: stats.sample_std_dev(),
            min: stats.min().unwrap_or(0.0),
            max: stats.max().unwrap_or(0.0),
            p50,
            p95,
            ci95: stats.ci95_half_width(),
        }
    }

    /// `true` when no samples were aggregated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Renders the `mean ± σ (n)` cell with `decimals` fraction
    /// digits: `"1.19 ± 0.02 (n=5)"`, a bare `"1.19 (n=1)"` when σ is
    /// undefined, `"—"` when empty.
    #[must_use]
    pub fn cell(&self, decimals: usize) -> String {
        match self.n {
            0 => "—".into(),
            1 => format!("{:.decimals$} (n=1)", self.mean),
            n => format!(
                "{:.decimals$} ± {:.decimals$} (n={n})",
                self.mean, self.std_dev
            ),
        }
    }

    /// [`MetricSummary::cell`] for a fractional metric, scaled to
    /// percent: `"6.0% ± 0.4% (n=5)"`.
    #[must_use]
    pub fn cell_pct(&self, decimals: usize) -> String {
        match self.n {
            0 => "—".into(),
            1 => format!("{:.decimals$}% (n=1)", self.mean * 100.0),
            n => format!(
                "{:.decimals$}% ± {:.decimals$}% (n={n})",
                self.mean * 100.0,
                self.std_dev * 100.0
            ),
        }
    }
}

/// How a [`SweepTable`] column formats its summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepFormat {
    /// Fixed-point with this many fraction digits.
    Fixed(usize),
    /// Fraction scaled to percent with this many fraction digits.
    Percent(usize),
}

impl SweepFormat {
    fn render(self, summary: &MetricSummary) -> String {
        match self {
            SweepFormat::Fixed(d) => summary.cell(d),
            SweepFormat::Percent(d) => summary.cell_pct(d),
        }
    }
}

/// A paper-style comparison table whose data cells are cross-seed
/// [`MetricSummary`] aggregates, rendered as `mean ± σ (n)`.
///
/// The first column labels the row (methodology, application,
/// configuration); every further column is a metric with its own
/// [`SweepFormat`]. [`SweepTable::render`] produces the aligned ASCII
/// table; [`SweepTable::to_csv`] exports the *full* summaries (mean,
/// σ, min, max, CI half-width, n per metric) in raw units for
/// downstream tooling.
///
/// # Examples
///
/// ```
/// use qgov_metrics::{MetricSummary, SweepFormat, SweepTable};
///
/// let mut t = SweepTable::new(
///     "Methodology",
///     vec![("Normalized energy", SweepFormat::Fixed(2))],
/// );
/// t.add_row("Proposed", vec![MetricSummary::from_samples(&[1.18, 1.20, 1.19])]);
/// assert!(t.render().contains("1.19 ± 0.01 (n=3)"));
/// assert!(t.to_csv().starts_with(
///     "Methodology,Normalized energy mean,Normalized energy sd"
/// ));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTable {
    label_header: String,
    columns: Vec<(String, SweepFormat)>,
    rows: Vec<(String, Vec<MetricSummary>)>,
}

impl SweepTable {
    /// Creates a table with a row-label header and one
    /// `(header, format)` pair per metric column.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(
        label_header: impl Into<String>,
        columns: Vec<(S, SweepFormat)>,
    ) -> Self {
        assert!(
            !columns.is_empty(),
            "a sweep table needs at least one metric column"
        );
        SweepTable {
            label_header: label_header.into(),
            columns: columns.into_iter().map(|(h, f)| (h.into(), f)).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of one summary per metric column.
    ///
    /// # Panics
    ///
    /// Panics if the summary count differs from the column count.
    pub fn add_row(&mut self, label: impl Into<String>, summaries: Vec<MetricSummary>) {
        assert_eq!(
            summaries.len(),
            self.columns.len(),
            "row has {} summaries for {} metric columns",
            summaries.len(),
            self.columns.len()
        );
        self.rows.push((label.into(), summaries));
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows: `(label, one summary per metric column)`.
    #[must_use]
    pub fn rows(&self) -> &[(String, Vec<MetricSummary>)] {
        &self.rows
    }

    /// Renders the aligned ASCII table with `mean ± σ (n)` cells.
    #[must_use]
    pub fn render(&self) -> String {
        let mut headers = vec![self.label_header.clone()];
        headers.extend(self.columns.iter().map(|(h, _)| h.clone()));
        let mut table = ComparisonTable::new(headers);
        for (label, summaries) in &self.rows {
            let mut cells = vec![label.clone()];
            cells.extend(
                self.columns
                    .iter()
                    .zip(summaries)
                    .map(|((_, format), summary)| format.render(summary)),
            );
            table.add_row(cells);
        }
        table.render()
    }

    /// Exports the full summaries as CSV: per metric column `M`, the
    /// columns `M mean`, `M sd`, `M p50`, `M p95`, `M min`, `M max`,
    /// `M ci95`, `M n`, all in raw (unscaled) units.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut headers = vec![self.label_header.clone()];
        for (h, _) in &self.columns {
            for part in ["mean", "sd", "p50", "p95", "min", "max", "ci95", "n"] {
                headers.push(format!("{h} {part}"));
            }
        }
        let mut table = ComparisonTable::new(headers);
        for (label, summaries) in &self.rows {
            let mut cells = vec![label.clone()];
            for s in summaries {
                cells.push(format!("{}", s.mean));
                cells.push(format!("{}", s.std_dev));
                cells.push(format!("{}", s.p50));
                cells.push(format!("{}", s.p95));
                cells.push(format!("{}", s.min));
                cells.push(format!("{}", s.max));
                cells.push(format!("{}", s.ci95));
                cells.push(s.n.to_string());
            }
            table.add_row(cells);
        }
        table.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_two_pass_reference() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let s = MetricSummary::from_samples(&xs);
        let mean = xs.iter().sum::<f64>() / 5.0;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 4.0;
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.std_dev - var.sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max, s.n), (1.0, 8.0, 5));
        assert!((s.ci95 - 2.776 * var.sqrt() / 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_is_bit_identical_under_permutation() {
        let a = MetricSummary::from_samples(&[0.1 + 0.2, 0.3, 1e-9, -7.5]);
        let b = MetricSummary::from_samples(&[-7.5, 0.3, 0.1 + 0.2, 1e-9]);
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
        assert_eq!(a.ci95.to_bits(), b.ci95.to_bits());
        assert_eq!(
            (a.min.to_bits(), a.max.to_bits()),
            (b.min.to_bits(), b.max.to_bits())
        );
        assert_eq!(
            (a.p50.to_bits(), a.p95.to_bits()),
            (b.p50.to_bits(), b.p95.to_bits())
        );
    }

    #[test]
    fn n1_renders_bare_mean_and_zero_spread() {
        let s = MetricSummary::from_samples(&[1.19]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.cell(2), "1.19 (n=1)");
        assert_eq!(s.cell_pct(1), "119.0% (n=1)");
    }

    #[test]
    fn empty_summary_renders_dash() {
        let s = MetricSummary::from_samples(&[]);
        assert!(s.is_empty());
        assert_eq!(s.cell(2), "—");
        assert_eq!(s.cell_pct(1), "—");
    }

    #[test]
    fn constant_series_has_zero_sigma_but_full_cell() {
        let s = MetricSummary::from_samples(&[3.0; 6]);
        assert_eq!(s.cell(1), "3.0 ± 0.0 (n=6)");
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn quantiles_interpolate() {
        let s: SampleStats = [10.0, 20.0, 30.0, 40.0].into_iter().collect();
        assert_eq!(s.quantile(0.0), Some(10.0));
        assert_eq!(s.quantile(1.0), Some(40.0));
        assert_eq!(s.quantile(0.5), Some(25.0));
        assert_eq!(s.quantile(0.25), Some(17.5));
        assert_eq!(SampleStats::new().quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_rejects_out_of_range() {
        let s: SampleStats = [1.0].into_iter().collect();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn summary_quantiles_match_sample_stats() {
        let xs = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0];
        let summary = MetricSummary::from_samples(&xs);
        let stats: SampleStats = xs.into_iter().collect();
        assert_eq!(
            summary.p50.to_bits(),
            stats.quantile(0.5).unwrap().to_bits()
        );
        assert_eq!(
            summary.p95.to_bits(),
            stats.quantile(0.95).unwrap().to_bits()
        );
        // Interpolated: p95 sits between the two largest order stats.
        assert!(summary.p95 > 7.0 && summary.p95 < 9.0);
        // Degenerate cases: one sample collapses, empty zeroes out.
        let one = MetricSummary::from_samples(&[4.2]);
        assert_eq!((one.p50, one.p95), (4.2, 4.2));
        let none = MetricSummary::from_samples(&[]);
        assert_eq!((none.p50, none.p95), (0.0, 0.0));
    }

    #[test]
    fn wide_csv_exports_quantile_columns() {
        let mut t = SweepTable::new("Methodology", vec![("Energy", SweepFormat::Fixed(2))]);
        t.add_row(
            "Proposed",
            vec![MetricSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0])],
        );
        let csv = t.to_csv();
        let headers: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        assert_eq!(
            headers,
            vec![
                "Methodology",
                "Energy mean",
                "Energy sd",
                "Energy p50",
                "Energy p95",
                "Energy min",
                "Energy max",
                "Energy ci95",
                "Energy n",
            ]
        );
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row[3], "3"); // p50
        assert_eq!(row[4], "4.8"); // p95, interpolated
        assert_eq!(row[8], "5"); // n
    }

    #[test]
    fn sweep_table_renders_and_exports() {
        let mut t = SweepTable::new(
            "Methodology",
            vec![
                ("Normalized energy", SweepFormat::Fixed(2)),
                ("Miss rate", SweepFormat::Percent(1)),
            ],
        );
        t.add_row(
            "Proposed",
            vec![
                MetricSummary::from_samples(&[1.18, 1.20]),
                MetricSummary::from_samples(&[0.06, 0.08]),
            ],
        );
        t.add_row(
            "Oracle",
            vec![
                MetricSummary::from_samples(&[1.0, 1.0]),
                MetricSummary::from_samples(&[0.0, 0.0]),
            ],
        );
        let text = t.render();
        assert!(text.contains("1.19 ± 0.01 (n=2)"), "{text}");
        assert!(text.contains("7.0% ± 1.4% (n=2)"), "{text}");
        let csv = t.to_csv();
        assert!(csv.contains("Miss rate ci95"));
        assert!(csv.lines().nth(1).unwrap().starts_with("Proposed,1.19,"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "summaries for")]
    fn sweep_table_validates_row_width() {
        let mut t = SweepTable::new("x", vec![("a", SweepFormat::Fixed(2))]);
        t.add_row("r", vec![]);
    }
}
