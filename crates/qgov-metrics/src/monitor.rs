//! Streaming temporal-property monitors over epoch streams.
//!
//! A [`Property`] is a finite-trace LTL-style state machine —
//! [`always`](Property::always), [`eventually`](Property::eventually),
//! [`until`](Property::until), [`after`](Property::after) — evaluated
//! *online*: each observed sample advances the machine by O(1) work and
//! O(1) state, so a property can ride along a 100k-frame run without
//! materialising the trace. A [`PropertySet`] bundles named properties,
//! feeds every sample to all of them, and folds the outcome into a
//! [`MonitorReport`] of per-property [`Verdict`]s.
//!
//! # Finite-trace semantics
//!
//! Verdicts are decided over the *observed prefix* at the moment
//! [`PropertySet::report`] (or [`Property::verdict`]) is called:
//!
//! * `always p` — [`Verdict::Vacuous`] on an empty stream; violated at
//!   the first epoch where `p` fails; holds otherwise.
//! * `eventually p` — vacuous on an empty stream; holds once `p` fires;
//!   violated *at the last observed epoch* if the stream ends without it.
//! * `p until q` (strong) — vacuous on an empty stream **or** when `q`
//!   fires on the very first sample (the obligation never existed);
//!   violated at the first epoch where `p` fails before `q` has fired;
//!   violated at the last epoch if `q` never fires; holds otherwise.
//! * `after(c, inner)` — vacuous while the trigger `c` has never fired;
//!   afterwards `inner` is evaluated over the suffix starting at the
//!   triggering sample (inclusive), with epochs kept absolute.
//!
//! Predicates are `FnMut`, so a property may carry its own O(1) running
//! state (a previous-sample slot, a tumbling window counter). To keep
//! that sound, each predicate is called **exactly once per observed
//! sample** until its verdict is decided, and never again after —
//! short-circuiting is part of the contract, not an optimisation.
//!
//! # Allocation discipline
//!
//! Construction allocates (boxed predicates, the entry vector);
//! [`PropertySet::observe`] never does. `tests/alloc_steady_state.rs`
//! pins a full property pack at exactly zero heap allocations per
//! post-warm-up epoch.
//!
//! ```
//! use qgov_metrics::{Property, PropertySet, Verdict};
//!
//! let mut set = PropertySet::new()
//!     .with("small", Property::always(|x: &f64| *x < 10.0))
//!     .with("spikes", Property::eventually(|x: &f64| *x > 5.0));
//! for x in [1.0, 6.0, 2.0] {
//!     set.observe(&x);
//! }
//! let report = set.report();
//! assert!(report.is_clean());
//! assert_eq!(report.verdicts()[1].verdict, Verdict::Holds);
//! ```

use crate::table::ComparisonTable;
use std::fmt;

/// A monitor predicate: `FnMut` so a property can carry O(1) running
/// state of its own (previous sample, window counters). Called exactly
/// once per observed sample until the owning property's verdict is
/// decided.
pub type MonitorPredicate<S> = Box<dyn FnMut(&S) -> bool + Send>;

/// The outcome of one temporal property over the observed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The property held over every observed sample it obliged.
    Holds,
    /// The property failed, first at this epoch.
    Violated {
        /// Epoch (stream position) of the first failure. For
        /// `eventually` / `until` obligations left unmet at stream end,
        /// this is the last observed epoch.
        epoch: u64,
    },
    /// The property never incurred an obligation: the stream was empty,
    /// an `after` trigger never fired, or an `until` release fired
    /// immediately.
    Vacuous,
}

impl Verdict {
    /// True only for [`Verdict::Violated`]. Vacuous verdicts count as
    /// non-violations: a property that was never obliged cannot fail.
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violated { .. })
    }

    /// The violation epoch, if violated.
    #[must_use]
    pub fn violation_epoch(&self) -> Option<u64> {
        match self {
            Verdict::Violated { epoch } => Some(*epoch),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Violated { epoch } => write!(f, "VIOLATED @ epoch {epoch}"),
            Verdict::Vacuous => write!(f, "vacuous"),
        }
    }
}

/// The O(1) streaming state of one combinator node.
enum Node<S> {
    Always {
        pred: MonitorPredicate<S>,
        violated: Option<u64>,
    },
    Eventually {
        pred: MonitorPredicate<S>,
        found: bool,
    },
    Until {
        hold: MonitorPredicate<S>,
        release: MonitorPredicate<S>,
        first: bool,
        decided: Option<Verdict>,
    },
    After {
        trigger: MonitorPredicate<S>,
        inner: Box<Property<S>>,
        triggered: bool,
    },
}

/// One streaming temporal property: a combinator tree whose every node
/// keeps O(1) state and advances by O(1) work per observed sample.
///
/// Drive it through [`PropertySet`] (which numbers the stream), or
/// directly via [`Property::observe`] with caller-supplied epochs.
pub struct Property<S> {
    node: Node<S>,
    /// Whether any sample has been observed (empty streams are vacuous).
    any: bool,
    /// Last observed epoch — where end-of-stream obligations land.
    last: u64,
}

impl<S> Property<S> {
    fn from_node(node: Node<S>) -> Self {
        Self {
            node,
            any: false,
            last: 0,
        }
    }

    /// `always p`: `p` must hold at every observed sample.
    pub fn always(pred: impl FnMut(&S) -> bool + Send + 'static) -> Self {
        Self::from_node(Node::Always {
            pred: Box::new(pred),
            violated: None,
        })
    }

    /// `eventually p`: `p` must hold at some observed sample.
    pub fn eventually(pred: impl FnMut(&S) -> bool + Send + 'static) -> Self {
        Self::from_node(Node::Eventually {
            pred: Box::new(pred),
            found: false,
        })
    }

    /// `hold until release` (strong until): `hold` must be true at every
    /// sample strictly before the first sample where `release` is true,
    /// and `release` must eventually fire. A release on the very first
    /// sample leaves the obligation vacuous.
    pub fn until(
        hold: impl FnMut(&S) -> bool + Send + 'static,
        release: impl FnMut(&S) -> bool + Send + 'static,
    ) -> Self {
        Self::from_node(Node::Until {
            hold: Box::new(hold),
            release: Box::new(release),
            first: true,
            decided: None,
        })
    }

    /// `after(trigger, inner)`: once `trigger` first fires, evaluate
    /// `inner` over the remaining stream (triggering sample inclusive,
    /// epochs absolute). Vacuous if the trigger never fires.
    pub fn after(trigger: impl FnMut(&S) -> bool + Send + 'static, inner: Property<S>) -> Self {
        Self::from_node(Node::After {
            trigger: Box::new(trigger),
            inner: Box::new(inner),
            triggered: false,
        })
    }

    /// Advances the property by one sample. `epoch` is the sample's
    /// stream position; [`PropertySet`] supplies consecutive positions
    /// starting at zero.
    pub fn observe(&mut self, epoch: u64, sample: &S) {
        self.any = true;
        self.last = epoch;
        match &mut self.node {
            Node::Always { pred, violated } => {
                if violated.is_none() && !pred(sample) {
                    *violated = Some(epoch);
                }
            }
            Node::Eventually { pred, found } => {
                if !*found && pred(sample) {
                    *found = true;
                }
            }
            Node::Until {
                hold,
                release,
                first,
                decided,
            } => {
                if decided.is_none() {
                    if release(sample) {
                        *decided = Some(if *first {
                            Verdict::Vacuous
                        } else {
                            Verdict::Holds
                        });
                    } else if !hold(sample) {
                        *decided = Some(Verdict::Violated { epoch });
                    }
                }
                *first = false;
            }
            Node::After {
                trigger,
                inner,
                triggered,
            } => {
                if !*triggered {
                    if trigger(sample) {
                        *triggered = true;
                    } else {
                        return;
                    }
                }
                inner.observe(epoch, sample);
            }
        }
    }

    /// The verdict over the stream observed so far. Read-only: callable
    /// at any point, and further samples may still change the answer
    /// (an `eventually` flips from violated-at-end to holds when its
    /// witness arrives).
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        if !self.any {
            return Verdict::Vacuous;
        }
        match &self.node {
            Node::Always { violated, .. } => match violated {
                Some(epoch) => Verdict::Violated { epoch: *epoch },
                None => Verdict::Holds,
            },
            Node::Eventually { found, .. } => {
                if *found {
                    Verdict::Holds
                } else {
                    Verdict::Violated { epoch: self.last }
                }
            }
            Node::Until { decided, .. } => {
                decided.unwrap_or(Verdict::Violated { epoch: self.last })
            }
            Node::After {
                triggered, inner, ..
            } => {
                if *triggered {
                    inner.verdict()
                } else {
                    Verdict::Vacuous
                }
            }
        }
    }
}

impl<S> fmt::Debug for Property<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node {
            Node::Always { .. } => write!(f, "always(..)"),
            Node::Eventually { .. } => write!(f, "eventually(..)"),
            Node::Until { .. } => write!(f, "until(.., ..)"),
            Node::After { inner, .. } => write!(f, "after(.., {inner:?})"),
        }?;
        write!(f, " [{}]", self.verdict())
    }
}

/// One property's verdict in a [`MonitorReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyVerdict {
    /// The property's name, as registered in the [`PropertySet`].
    pub name: String,
    /// Its verdict over the observed stream.
    pub verdict: Verdict,
}

/// The folded outcome of a [`PropertySet`] over a finished (or paused)
/// stream: one [`Verdict`] per registered property.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MonitorReport {
    verdicts: Vec<PropertyVerdict>,
    epochs: u64,
}

impl MonitorReport {
    /// Per-property verdicts, in registration order.
    #[must_use]
    pub fn verdicts(&self) -> &[PropertyVerdict] {
        &self.verdicts
    }

    /// Number of samples the set observed.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The violated properties, in registration order.
    pub fn violations(&self) -> impl Iterator<Item = &PropertyVerdict> {
        self.verdicts.iter().filter(|v| v.verdict.is_violation())
    }

    /// Number of violated properties.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    /// True when no property is violated (vacuous verdicts count as
    /// clean — an unobliged property cannot fail).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// Renders the verdicts as a property / verdict table.
    #[must_use]
    pub fn render(&self) -> ComparisonTable {
        let mut table = ComparisonTable::new(vec!["Property", "Verdict"]);
        for v in &self.verdicts {
            table.add_row(vec![v.name.clone(), v.verdict.to_string()]);
        }
        table
    }

    /// One-line summary: `"clean (3 properties, 500 epochs)"` or
    /// `"2 violation(s): thermal-cap @ 41, ..."`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!(
                "clean ({} properties, {} epochs)",
                self.verdicts.len(),
                self.epochs
            )
        } else {
            let list: Vec<String> = self
                .violations()
                .map(|v| match v.verdict.violation_epoch() {
                    Some(e) => format!("{} @ {e}", v.name),
                    None => v.name.clone(),
                })
                .collect();
            format!("{} violation(s): {}", list.len(), list.join(", "))
        }
    }
}

/// A named bundle of streaming properties fed from one epoch stream.
///
/// The set numbers samples itself: the first [`observe`](Self::observe)
/// is epoch 0. Observation is allocation-free; [`report`](Self::report)
/// (which allocates the summary) is meant for end of run.
pub struct PropertySet<S> {
    entries: Vec<(String, Property<S>)>,
    epochs: u64,
}

impl<S> Default for PropertySet<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> PropertySet<S> {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            epochs: 0,
        }
    }

    /// Builder form of [`push`](Self::push).
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, property: Property<S>) -> Self {
        self.push(name, property);
        self
    }

    /// Registers `property` under `name` (names are labels, not keys —
    /// duplicates are allowed and reported separately).
    pub fn push(&mut self, name: impl Into<String>, property: Property<S>) {
        self.entries.push((name.into(), property));
    }

    /// Number of registered properties.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no properties are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of samples observed so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Feeds one sample to every property. Allocation-free.
    pub fn observe(&mut self, sample: &S) {
        let epoch = self.epochs;
        for (_, property) in &mut self.entries {
            property.observe(epoch, sample);
        }
        self.epochs += 1;
    }

    /// Folds the current verdicts into a report. Read-only: the set can
    /// keep observing afterwards.
    #[must_use]
    pub fn report(&self) -> MonitorReport {
        MonitorReport {
            verdicts: self
                .entries
                .iter()
                .map(|(name, property)| PropertyVerdict {
                    name: name.clone(),
                    verdict: property.verdict(),
                })
                .collect(),
            epochs: self.epochs,
        }
    }
}

impl<S> fmt::Debug for PropertySet<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PropertySet")
            .field("epochs", &self.epochs)
            .field("entries", &self.entries)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The standard property pack
// ---------------------------------------------------------------------------

/// One harness epoch as the standard property pack sees it — a plain-old
///-data snapshot the experiment loop fills in place each frame, so
/// monitored runs stay allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSample {
    /// Decision epoch (frame index from 0).
    pub epoch: u64,
    /// Frame time over the period (`> 1.0` missed the deadline).
    pub frame_time_ratio: f64,
    /// Whether the frame met its deadline.
    pub met_deadline: bool,
    /// The OPP index the frame ran at (cluster 0 on a multi-cluster
    /// chip).
    pub opp: usize,
    /// Peak sensed temperature this frame, in °C (chip-wide maximum on
    /// a multi-cluster platform).
    pub temperature_c: f64,
    /// Energy consumed this frame, in joules.
    pub energy_j: f64,
    /// The governor's exploration rate after this epoch's decision, or
    /// NaN when the governor exposes none (heuristics) — ε-properties
    /// self-gate on `is_finite()`.
    pub epsilon: f64,
    /// Whether the governor reports converged exploitation (false when
    /// it exposes no such notion).
    pub converged: bool,
}

/// Tunable bounds for the [standard property pack](standard_pack).
///
/// [`PackConfig::paper`] encodes the claims of Biswas et al. (DATE 2017)
/// at bounds the recorded experiment sweeps satisfy with margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackConfig {
    /// Thermal cap in °C that no frame may exceed.
    pub thermal_cap_c: f64,
    /// Tumbling-window length (epochs) for the post-convergence miss
    /// check.
    pub miss_window: u64,
    /// Maximum post-convergence miss rate per window.
    pub miss_bound: f64,
    /// Maximum OPP-index step per epoch for conservative governors.
    pub max_opp_step: usize,
    /// The ε floor the decay schedule must respect and reach.
    pub epsilon_floor: f64,
    /// Whether to require ε to actually *reach* the floor (needs runs
    /// longer than the decay horizon, ≈ 92 epochs at the paper's rate;
    /// disable for short smokes, where the check would fail spuriously).
    pub require_epsilon_floor: bool,
}

impl PackConfig {
    /// The paper-claims configuration: 90 °C cap (the ODROID-XU3
    /// throttling envelope), post-convergence misses under 35 % per
    /// 150-epoch window, one OPP step per epoch for `conservative`, and
    /// the paper's ε floor of 0.01.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            thermal_cap_c: 90.0,
            miss_window: 150,
            miss_bound: 0.35,
            max_opp_step: 1,
            epsilon_floor: 0.01,
            require_epsilon_floor: true,
        }
    }

    /// [`PackConfig::paper`] without the ε-reaches-floor obligation —
    /// for runs shorter than the ε decay horizon.
    #[must_use]
    pub fn short_run() -> Self {
        Self {
            require_epsilon_floor: false,
            ..Self::paper()
        }
    }
}

/// `always (temperature ≤ cap)` — the thermal envelope is never
/// exceeded.
#[must_use]
pub fn thermal_cap(cap_c: f64) -> Property<MonitorSample> {
    Property::always(move |s: &MonitorSample| s.temperature_c <= cap_c)
}

/// `always (|Δopp| ≤ max_step)` between consecutive epochs — the
/// conservative-governor claim that frequency only ramps stepwise.
#[must_use]
pub fn opp_step_bound(max_step: usize) -> Property<MonitorSample> {
    let mut prev: Option<usize> = None;
    Property::always(move |s: &MonitorSample| {
        let ok = prev.is_none_or(|p| s.opp.abs_diff(p) <= max_step);
        prev = Some(s.opp);
        ok
    })
}

/// `after(converged, always (window miss rate ≤ bound))` — once the
/// governor reports convergence, every completed tumbling window of
/// `window` epochs stays at or under `bound` misses. Vacuous if
/// convergence never occurs (heuristic governors, short runs).
#[must_use]
pub fn converged_miss_rate(window: u64, bound: f64) -> Property<MonitorSample> {
    let window = window.max(1);
    let mut seen = 0u64;
    let mut misses = 0u64;
    Property::after(
        |s: &MonitorSample| s.converged,
        Property::always(move |s: &MonitorSample| {
            if !s.met_deadline {
                misses += 1;
            }
            seen += 1;
            if seen == window {
                let ok = misses as f64 <= bound * window as f64;
                seen = 0;
                misses = 0;
                ok
            } else {
                true
            }
        }),
    )
}

/// `after(ε known, always (ε non-increasing ∧ ε ≥ floor))` — the decay
/// schedule never rises and never undershoots its floor. Vacuous for
/// governors that expose no ε.
#[must_use]
pub fn epsilon_monotone(floor: f64) -> Property<MonitorSample> {
    let mut prev = f64::INFINITY;
    Property::after(
        |s: &MonitorSample| s.epsilon.is_finite(),
        Property::always(move |s: &MonitorSample| {
            let ok = s.epsilon <= prev + 1e-12 && s.epsilon >= floor - 1e-12;
            prev = s.epsilon;
            ok
        }),
    )
}

/// `after(ε known, eventually (ε ≤ floor))` — the decay actually
/// reaches its floor. Vacuous for governors that expose no ε; violated
/// on runs shorter than the decay horizon.
#[must_use]
pub fn epsilon_reaches_floor(floor: f64) -> Property<MonitorSample> {
    Property::after(
        |s: &MonitorSample| s.epsilon.is_finite(),
        Property::eventually(move |s: &MonitorSample| s.epsilon <= floor + 1e-9),
    )
}

/// `after(epoch ≥ fault + grace, always (window miss rate ≤ bound))` —
/// after a fault lands at `fault_epoch` and a `grace` period passes for
/// the governor to adapt, every completed tumbling window of `window`
/// epochs keeps its miss rate at or under `bound`. This is the
/// self-healing claim for a faulted run: whatever the fault did to the
/// deadline stream, the governor pulled it back inside the bound within
/// the grace period and kept it there. Vacuous if the stream ends
/// before the grace period does.
#[must_use]
pub fn recovers_within(
    fault_epoch: u64,
    grace: u64,
    window: u64,
    bound: f64,
) -> Property<MonitorSample> {
    let window = window.max(1);
    let threshold = fault_epoch.saturating_add(grace);
    let mut seen = 0u64;
    let mut misses = 0u64;
    Property::after(
        move |s: &MonitorSample| s.epoch >= threshold,
        Property::always(move |s: &MonitorSample| {
            if !s.met_deadline {
                misses += 1;
            }
            seen += 1;
            if seen == window {
                let ok = misses as f64 <= bound * window as f64;
                seen = 0;
                misses = 0;
                ok
            } else {
                true
            }
        }),
    )
}

/// The recovery property pack for a faulted run: the thermal cap must
/// hold on the *truth-side* temperature stream throughout (sensor
/// faults are no excuse for cooking the die), the windowed miss rate
/// must return under the configured bound within `grace` epochs of the
/// fault at `fault_epoch` ([`recovers_within`]), and ε decay must stay
/// monotone (a hardened governor freezing ε during quarantine
/// satisfies this; a governor whose ε jumps around does not).
#[must_use]
pub fn recovery_pack(fault_epoch: u64, grace: u64, cfg: &PackConfig) -> PropertySet<MonitorSample> {
    PropertySet::new()
        .with("thermal-cap-under-faults", thermal_cap(cfg.thermal_cap_c))
        .with(
            "post-drop-miss-recovery",
            recovers_within(fault_epoch, grace, cfg.miss_window, cfg.miss_bound),
        )
        .with("epsilon-monotone", epsilon_monotone(cfg.epsilon_floor))
}

/// The standard property pack for one experiment cell, keyed by the
/// governor label. ε/convergence properties self-gate (vacuous for
/// governors that expose neither), so the pack is safe to attach to
/// every cell; the one-OPP-step property is only attached to
/// `conservative`, the only governor that claims it.
#[must_use]
pub fn standard_pack(governor: &str, cfg: &PackConfig) -> PropertySet<MonitorSample> {
    let mut set = PropertySet::new()
        .with("thermal-cap", thermal_cap(cfg.thermal_cap_c))
        .with(
            "post-convergence-miss",
            converged_miss_rate(cfg.miss_window, cfg.miss_bound),
        )
        .with("epsilon-monotone", epsilon_monotone(cfg.epsilon_floor));
    if cfg.require_epsilon_floor {
        set.push(
            "epsilon-reaches-floor",
            epsilon_reaches_floor(cfg.epsilon_floor),
        );
    }
    if governor == "conservative" {
        set.push("opp-step-bound", opp_step_bound(cfg.max_opp_step));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64) -> MonitorSample {
        MonitorSample {
            epoch,
            frame_time_ratio: 0.8,
            met_deadline: true,
            opp: 5,
            temperature_c: 60.0,
            energy_j: 0.1,
            epsilon: f64::NAN,
            converged: false,
        }
    }

    #[test]
    fn empty_stream_is_vacuous_for_every_combinator() {
        let props = [
            Property::always(|_: &u64| true),
            Property::eventually(|_: &u64| true),
            Property::until(|_: &u64| true, |_: &u64| true),
            Property::after(|_: &u64| true, Property::always(|_: &u64| true)),
        ];
        for p in &props {
            assert_eq!(p.verdict(), Verdict::Vacuous);
        }
    }

    #[test]
    fn always_violates_at_first_failure_and_stays_violated() {
        let mut p = Property::always(|x: &u64| *x < 3);
        for (i, x) in [1u64, 2, 5, 1, 9].iter().enumerate() {
            p.observe(i as u64, x);
        }
        assert_eq!(p.verdict(), Verdict::Violated { epoch: 2 });
    }

    #[test]
    fn always_violation_on_the_final_epoch_is_reported() {
        let mut p = Property::always(|x: &u64| *x < 3);
        for (i, x) in [1u64, 2, 7].iter().enumerate() {
            p.observe(i as u64, x);
        }
        assert_eq!(p.verdict(), Verdict::Violated { epoch: 2 });
    }

    #[test]
    fn eventually_is_violated_at_stream_end_until_its_witness() {
        let mut p = Property::eventually(|x: &u64| *x == 4);
        p.observe(0, &1);
        assert_eq!(p.verdict(), Verdict::Violated { epoch: 0 });
        p.observe(1, &4);
        assert_eq!(p.verdict(), Verdict::Holds);
        // The verdict is sticky once the witness arrived.
        p.observe(2, &0);
        assert_eq!(p.verdict(), Verdict::Holds);
    }

    #[test]
    fn until_release_on_first_sample_is_vacuous() {
        let mut p = Property::until(|_: &u64| false, |x: &u64| *x == 9);
        p.observe(0, &9);
        assert_eq!(p.verdict(), Verdict::Vacuous);
    }

    #[test]
    fn until_holds_when_released_after_holding() {
        let mut p = Property::until(|x: &u64| *x < 5, |x: &u64| *x == 9);
        for (i, x) in [1u64, 2, 9].iter().enumerate() {
            p.observe(i as u64, x);
        }
        assert_eq!(p.verdict(), Verdict::Holds);
    }

    #[test]
    fn until_violates_when_hold_breaks_before_release() {
        let mut p = Property::until(|x: &u64| *x < 5, |x: &u64| *x == 9);
        for (i, x) in [1u64, 7, 9].iter().enumerate() {
            p.observe(i as u64, x);
        }
        assert_eq!(p.verdict(), Verdict::Violated { epoch: 1 });
    }

    #[test]
    fn strong_until_violates_at_stream_end_without_release() {
        let mut p = Property::until(|x: &u64| *x < 5, |x: &u64| *x == 9);
        for (i, x) in [1u64, 2, 3].iter().enumerate() {
            p.observe(i as u64, x);
        }
        assert_eq!(p.verdict(), Verdict::Violated { epoch: 2 });
    }

    #[test]
    fn after_is_vacuous_when_the_trigger_never_fires() {
        let mut p = Property::after(|x: &u64| *x == 100, Property::always(|_: &u64| false));
        for (i, x) in [1u64, 2, 3].iter().enumerate() {
            p.observe(i as u64, x);
        }
        assert_eq!(p.verdict(), Verdict::Vacuous);
    }

    #[test]
    fn after_evaluates_the_suffix_from_the_trigger_inclusive() {
        // Inner `always x < 10` must see the triggering sample itself.
        let mut p = Property::after(|x: &u64| *x >= 10, Property::always(|x: &u64| *x < 10));
        for (i, x) in [1u64, 2, 12, 3].iter().enumerate() {
            p.observe(i as u64, x);
        }
        assert_eq!(p.verdict(), Verdict::Violated { epoch: 2 });
    }

    #[test]
    fn after_keeps_absolute_epochs_in_inner_verdicts() {
        let mut p = Property::after(|x: &u64| *x == 5, Property::always(|x: &u64| *x != 7));
        for (i, x) in [1u64, 5, 6, 7].iter().enumerate() {
            p.observe(i as u64, x);
        }
        assert_eq!(p.verdict(), Verdict::Violated { epoch: 3 });
    }

    #[test]
    fn length_one_streams_decide_each_combinator() {
        let mut a = Property::always(|x: &u64| *x == 1);
        a.observe(0, &1);
        assert_eq!(a.verdict(), Verdict::Holds);

        let mut e = Property::eventually(|x: &u64| *x == 2);
        e.observe(0, &1);
        assert_eq!(e.verdict(), Verdict::Violated { epoch: 0 });

        let mut u = Property::until(|x: &u64| *x == 1, |_: &u64| false);
        u.observe(0, &1);
        assert_eq!(u.verdict(), Verdict::Violated { epoch: 0 });
    }

    #[test]
    fn predicates_are_not_called_after_the_verdict_is_decided() {
        // An `always` whose predicate would panic on a third call: the
        // violation on the second sample must short-circuit it.
        let mut calls = 0u32;
        let mut p = Property::always(move |_: &u64| {
            calls += 1;
            assert!(calls <= 2, "predicate called after violation");
            calls < 2
        });
        for i in 0..10u64 {
            p.observe(i, &i);
        }
        assert_eq!(p.verdict(), Verdict::Violated { epoch: 1 });
    }

    #[test]
    fn property_set_numbers_the_stream_and_reports_in_order() {
        let mut set = PropertySet::new()
            .with("ok", Property::always(|x: &u64| *x < 100))
            .with("bad", Property::always(|x: &u64| *x != 2));
        for x in 0..5u64 {
            set.observe(&x);
        }
        let report = set.report();
        assert_eq!(report.epochs(), 5);
        assert_eq!(report.verdicts()[0].verdict, Verdict::Holds);
        assert_eq!(report.verdicts()[1].verdict, Verdict::Violated { epoch: 2 });
        assert_eq!(report.violation_count(), 1);
        assert!(!report.is_clean());
        assert!(report.render().render().contains("VIOLATED @ epoch 2"));
        assert!(report.summary().contains("bad @ 2"));
    }

    #[test]
    fn standard_pack_is_vacuous_clean_on_a_heuristic_stream() {
        // No ε, no convergence: only the thermal cap is obliged.
        let mut set = standard_pack("ondemand", &PackConfig::paper());
        for epoch in 0..300 {
            set.observe(&sample(epoch));
        }
        let report = set.report();
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.verdicts()[0].verdict, Verdict::Holds);
        assert_eq!(report.verdicts()[1].verdict, Verdict::Vacuous);
        assert_eq!(report.verdicts()[2].verdict, Verdict::Vacuous);
        assert_eq!(report.verdicts()[3].verdict, Verdict::Vacuous);
    }

    #[test]
    fn standard_pack_attaches_the_opp_step_property_to_conservative_only() {
        let conservative = standard_pack("conservative", &PackConfig::paper());
        let rtm = standard_pack("rtm", &PackConfig::paper());
        assert_eq!(conservative.len(), rtm.len() + 1);
    }

    #[test]
    fn thermal_cap_flags_the_first_hot_frame() {
        let mut set = PropertySet::new().with("thermal-cap", thermal_cap(90.0));
        for epoch in 0..5 {
            let mut s = sample(epoch);
            if epoch == 3 {
                s.temperature_c = 95.0;
            }
            set.observe(&s);
        }
        assert_eq!(
            set.report().verdicts()[0].verdict,
            Verdict::Violated { epoch: 3 }
        );
    }

    #[test]
    fn opp_step_bound_tracks_consecutive_deltas() {
        let mut ok = opp_step_bound(1);
        let mut bad = opp_step_bound(1);
        for (epoch, opp) in [5usize, 6, 6, 5].iter().enumerate() {
            let mut s = sample(epoch as u64);
            s.opp = *opp;
            ok.observe(epoch as u64, &s);
        }
        assert_eq!(ok.verdict(), Verdict::Holds);
        for (epoch, opp) in [5usize, 6, 8].iter().enumerate() {
            let mut s = sample(epoch as u64);
            s.opp = *opp;
            bad.observe(epoch as u64, &s);
        }
        assert_eq!(bad.verdict(), Verdict::Violated { epoch: 2 });
    }

    #[test]
    fn converged_miss_rate_checks_completed_tumbling_windows() {
        // Window of 4, bound 0.25: one miss per window is fine, two is a
        // violation flagged at the window's closing epoch.
        let run = |misses_at: &[u64]| {
            let mut p = converged_miss_rate(4, 0.25);
            for epoch in 0..8u64 {
                let mut s = sample(epoch);
                s.converged = true;
                s.met_deadline = !misses_at.contains(&epoch);
                p.observe(epoch, &s);
            }
            p.verdict()
        };
        assert_eq!(run(&[1, 5]), Verdict::Holds);
        assert_eq!(run(&[1, 2]), Verdict::Violated { epoch: 3 });
        assert_eq!(run(&[5, 6]), Verdict::Violated { epoch: 7 });
    }

    #[test]
    fn converged_miss_rate_ignores_preconvergence_misses() {
        let mut p = converged_miss_rate(4, 0.0);
        for epoch in 0..12u64 {
            let mut s = sample(epoch);
            s.converged = epoch >= 8;
            s.met_deadline = epoch >= 4; // misses only before convergence
            p.observe(epoch, &s);
        }
        assert_eq!(p.verdict(), Verdict::Holds);
    }

    #[test]
    fn epsilon_properties_self_gate_on_nan() {
        let mut mono = epsilon_monotone(0.01);
        let mut floor = epsilon_reaches_floor(0.01);
        for epoch in 0..50 {
            let s = sample(epoch); // ε stays NaN
            mono.observe(epoch, &s);
            floor.observe(epoch, &s);
        }
        assert_eq!(mono.verdict(), Verdict::Vacuous);
        assert_eq!(floor.verdict(), Verdict::Vacuous);
    }

    #[test]
    fn epsilon_monotone_accepts_decay_and_rejects_a_rise() {
        let feed = |values: &[f64]| {
            let mut p = epsilon_monotone(0.01);
            for (epoch, eps) in values.iter().enumerate() {
                let mut s = sample(epoch as u64);
                s.epsilon = *eps;
                p.observe(epoch as u64, &s);
            }
            p.verdict()
        };
        assert_eq!(feed(&[1.0, 0.8, 0.8, 0.01]), Verdict::Holds);
        assert_eq!(feed(&[1.0, 0.8, 0.9]), Verdict::Violated { epoch: 2 });
        assert_eq!(feed(&[1.0, 0.005]), Verdict::Violated { epoch: 1 });
    }

    #[test]
    fn epsilon_reaches_floor_requires_the_decay_to_finish() {
        let feed = |values: &[f64]| {
            let mut p = epsilon_reaches_floor(0.01);
            for (epoch, eps) in values.iter().enumerate() {
                let mut s = sample(epoch as u64);
                s.epsilon = *eps;
                p.observe(epoch as u64, &s);
            }
            p.verdict()
        };
        assert_eq!(feed(&[1.0, 0.5, 0.01]), Verdict::Holds);
        assert_eq!(feed(&[1.0, 0.5]), Verdict::Violated { epoch: 1 });
    }

    #[test]
    fn recovers_within_gates_on_fault_plus_grace() {
        // Fault at 10, grace 10, window 5, bound 0.2 (≤ 1 miss per 5).
        let feed = |miss_epochs: &[u64], total: u64| {
            let mut p = recovers_within(10, 10, 5, 0.2);
            for epoch in 0..total {
                let mut s = sample(epoch);
                s.met_deadline = !miss_epochs.contains(&epoch);
                p.observe(epoch, &s);
            }
            p.verdict()
        };
        // Misses entirely inside the grace period are forgiven.
        assert_eq!(feed(&[10, 11, 12, 13, 14], 40), Verdict::Holds);
        // Misses persisting past the grace period violate in the first
        // completed window after it (epochs 20..=24 here).
        assert_eq!(feed(&[20, 21, 22], 40), Verdict::Violated { epoch: 24 });
        // Stream too short to outlive the grace period: vacuous.
        assert_eq!(feed(&[], 15), Verdict::Vacuous);
    }

    #[test]
    fn recovery_pack_composes_the_faulted_run_obligations() {
        let cfg = PackConfig::paper();
        let set = recovery_pack(100, 50, &cfg);
        assert_eq!(set.len(), 3);
        let report = set.report();
        let names: Vec<&str> = report.verdicts().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "thermal-cap-under-faults",
                "post-drop-miss-recovery",
                "epsilon-monotone"
            ]
        );
    }
}
