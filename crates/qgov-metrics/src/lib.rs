//! Accounting and reporting for run-time management experiments.
//!
//! The paper's evaluation reports normalised energy and performance
//! (Table I), workload misprediction statistics (Fig. 3), exploration
//! counts (Table II) and learning overhead (Table III). This crate
//! provides the measurement plumbing those tables and figures are built
//! from:
//!
//! * [`RunReport`] — per-run energy/performance accounting with the
//!   paper's normalisation conventions;
//! * [`MispredictionStats`] — predicted-vs-actual workload error
//!   analysis (whole-run and windowed, as Fig. 3 quotes);
//! * [`OnlineStats`] — numerically-stable streaming moments, with the
//!   sample-variance / 95 %-CI surface cross-seed sweeps aggregate
//!   with;
//! * [`SampleStats`] / [`MetricSummary`] / [`SweepTable`] — the
//!   order-invariant cross-seed aggregation layer (`mean ± σ (n)`
//!   cells, p50/p95 quantiles, CI half-widths);
//! * [`WindowedStats`] — fixed-length windowed folds in O(windows)
//!   memory, the convergence-over-time view long-horizon streamed
//!   experiments report;
//! * [`ComparisonTable`] — aligned ASCII tables matching the paper's
//!   layout, with CSV export;
//! * [`Series`] — named (x, y) series with CSV export for figures;
//! * [`Property`] / [`PropertySet`] — streaming LTL-style temporal
//!   monitors (`always` / `eventually` / `until` / `after`) evaluated
//!   online over epoch streams in O(1) state per property, with the
//!   [`standard_pack`] encoding the paper's temporal claims;
//! * [`RecoveryTracker`] / [`recovery_pack`] — recovery accounting for
//!   fault-injected runs: time-to-recover, worst miss-rate excursion,
//!   and the "miss rate returns under the bound within the grace
//!   period" / "thermal cap holds even under sensor faults" temporal
//!   obligations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod misprediction;
pub mod monitor;
mod recovery;
mod report;
mod series;
mod stats;
mod sweep;
mod table;
mod window;

pub use misprediction::MispredictionStats;
pub use monitor::{
    converged_miss_rate, epsilon_monotone, epsilon_reaches_floor, opp_step_bound, recovers_within,
    recovery_pack, standard_pack, thermal_cap, MonitorReport, MonitorSample, PackConfig, Property,
    PropertySet, PropertyVerdict, Verdict,
};
pub use recovery::{RecoveryConfig, RecoveryStats, RecoveryTracker};
pub use report::{FrameStat, FrameWindows, RunReport};
pub use series::Series;
pub use stats::{t_critical_975, OnlineStats};
pub use sweep::{MetricSummary, SampleStats, SweepFormat, SweepTable};
pub use table::ComparisonTable;
pub use window::{WindowSummary, WindowedStats};
