//! Recovery metrics for faulted runs: how hard a fault hit the
//! deadline stream and how fast the governor pulled it back.
//!
//! [`RecoveryTracker`] watches the per-epoch deadline outcomes of a run
//! that suffers a fault at a known epoch and folds them into a
//! [`RecoveryStats`]:
//!
//! * **time to recover** — epochs from the fault until the trailing
//!   windowed miss rate *finally* settles back at or under the bound
//!   (re-excursions reset the clock);
//! * **worst excursion** — the highest trailing windowed miss rate seen
//!   at or after the fault;
//! * **degraded epochs** — supplied by the governor (epochs it ran on
//!   substituted or safe-state data; zero for a naive governor).
//!
//! The tracker is streaming and allocation-free after construction —
//! the same contract as the temporal monitors in [`crate::monitor`].

/// Shape of the recovery measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Epoch the fault lands (e.g. the core-drop epoch of the plan).
    pub fault_epoch: u64,
    /// Trailing window length (epochs) for the miss-rate signal.
    pub window: u64,
    /// A windowed miss rate at or under this counts as recovered.
    pub bound: f64,
}

/// What the fault did and how the run recovered; see the module
/// docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryStats {
    /// Epochs from the fault until the windowed miss rate settled back
    /// at or under the bound (0 if it never exceeded the bound);
    /// `None` if the run ended still in excursion.
    pub time_to_recover: Option<u64>,
    /// Highest trailing windowed miss rate at or after the fault.
    pub worst_excursion: f64,
    /// Epochs the governor ran degraded (substituted sensor data or
    /// safe-state fallback). Reported by the governor, not derived from
    /// the deadline stream.
    pub degraded_epochs: u64,
}

/// Streaming tracker folding per-epoch deadline outcomes into
/// [`RecoveryStats`].
#[derive(Debug, Clone)]
pub struct RecoveryTracker {
    config: RecoveryConfig,
    /// Ring buffer of the last `window` deadline outcomes.
    ring: Vec<bool>,
    head: usize,
    filled: usize,
    misses: u64,
    worst_excursion: f64,
    recovered_at: Option<u64>,
    excursion_seen: bool,
}

impl RecoveryTracker {
    /// Creates a tracker (the only allocation it ever makes).
    #[must_use]
    pub fn new(config: RecoveryConfig) -> Self {
        let window = config.window.max(1) as usize;
        RecoveryTracker {
            config,
            ring: vec![true; window],
            head: 0,
            filled: 0,
            misses: 0,
            worst_excursion: 0.0,
            recovered_at: None,
            excursion_seen: false,
        }
    }

    /// The configured measurement shape.
    #[must_use]
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Feeds one epoch's deadline outcome. Epochs must arrive in
    /// order; the fault epoch itself counts as post-fault.
    pub fn observe(&mut self, epoch: u64, met_deadline: bool) {
        if self.filled == self.ring.len() {
            if !self.ring[self.head] {
                self.misses -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.ring[self.head] = met_deadline;
        if !met_deadline {
            self.misses += 1;
        }
        self.head = (self.head + 1) % self.ring.len();

        if epoch < self.config.fault_epoch {
            return;
        }
        let rate = self.misses as f64 / self.filled as f64;
        if rate > self.worst_excursion {
            self.worst_excursion = rate;
        }
        if rate > self.config.bound {
            self.excursion_seen = true;
            self.recovered_at = None;
        } else if self.recovered_at.is_none() {
            self.recovered_at = Some(epoch);
        }
    }

    /// Folds the stream observed so far into stats; `degraded_epochs`
    /// comes from the governor (use 0 for governors without a degraded
    /// mode).
    #[must_use]
    pub fn stats(&self, degraded_epochs: u64) -> RecoveryStats {
        let time_to_recover = if self.excursion_seen {
            self.recovered_at
                .map(|at| at.saturating_sub(self.config.fault_epoch))
        } else {
            // The miss rate never left the bound: instant recovery.
            Some(0)
        };
        RecoveryStats {
            time_to_recover,
            worst_excursion: self.worst_excursion,
            degraded_epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track(miss_epochs: &[u64], total: u64) -> RecoveryTracker {
        let mut t = RecoveryTracker::new(RecoveryConfig {
            fault_epoch: 10,
            window: 5,
            bound: 0.2,
        });
        for epoch in 0..total {
            t.observe(epoch, !miss_epochs.contains(&epoch));
        }
        t
    }

    #[test]
    fn clean_run_recovers_instantly_with_zero_excursion() {
        let stats = track(&[], 50).stats(0);
        assert_eq!(stats.time_to_recover, Some(0));
        assert_eq!(stats.worst_excursion, 0.0);
        assert_eq!(stats.degraded_epochs, 0);
    }

    #[test]
    fn excursion_is_measured_and_recovery_timed() {
        // Misses at 10..15: the 5-wide window saturates at 100 % miss
        // rate, then drains as hits return.
        let stats = track(&[10, 11, 12, 13, 14], 50).stats(3);
        assert_eq!(stats.worst_excursion, 1.0);
        // Window drains to ≤ 0.2 (1 miss in 5) at epoch 18.
        assert_eq!(stats.time_to_recover, Some(8));
        assert_eq!(stats.degraded_epochs, 3);
    }

    #[test]
    fn re_excursion_resets_the_recovery_clock() {
        let once = track(&[10, 11], 50).stats(0);
        let twice = track(&[10, 11, 30, 31], 50).stats(0);
        assert!(twice.time_to_recover.unwrap() > once.time_to_recover.unwrap());
    }

    #[test]
    fn unrecovered_run_reports_none() {
        // Misses continue to the end of the stream.
        let miss: Vec<u64> = (10..30).collect();
        let stats = track(&miss, 30).stats(0);
        assert_eq!(stats.time_to_recover, None);
        assert_eq!(stats.worst_excursion, 1.0);
    }

    #[test]
    fn pre_fault_misses_do_not_count_as_excursion() {
        // A rough warm-up before the fault epoch is ignored; the
        // post-fault stream is clean once the window drains.
        let stats = track(&[0, 1, 2, 3, 4], 50).stats(0);
        assert_eq!(stats.worst_excursion, 0.0);
        assert_eq!(stats.time_to_recover, Some(0));
    }
}
