//! Streaming statistics.

/// Two-sided 97.5 % Student-t critical value for `df` degrees of
/// freedom — the multiplier of a 95 % confidence interval on a mean of
/// `df + 1` samples.
///
/// Exact table values for `df` ≤ 30; above that the asymptotic
/// approximation `1.960 + 2.42 / df` (within ~0.002 of the true value
/// just past the table, under 0.001 from df ≈ 35, converging to the
/// normal quantile 1.960).
///
/// # Panics
///
/// Panics if `df` is zero — a CI over one sample is undefined; callers
/// report it as zero spread instead (see
/// [`OnlineStats::ci95_half_width`]).
///
/// # Examples
///
/// ```
/// use qgov_metrics::t_critical_975;
///
/// assert_eq!(t_critical_975(4), 2.776); // n = 5 seeds
/// assert!((t_critical_975(1_000_000) - 1.960).abs() < 1e-4);
/// ```
#[must_use]
pub fn t_critical_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    assert!(
        df > 0,
        "t critical value needs at least 1 degree of freedom"
    );
    match df {
        1..=30 => TABLE[(df - 1) as usize],
        _ => 1.960 + 2.42 / df as f64,
    }
}

/// Numerically-stable streaming mean/variance/extrema (Welford's
/// algorithm).
///
/// # Examples
///
/// ```
/// use qgov_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "samples must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero when empty).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample (Bessel-corrected, `n − 1` denominator) variance — the
    /// unbiased estimator a cross-seed sweep reports. Zero when fewer
    /// than two samples have been pushed: with one seed there is no
    /// spread to estimate, and aggregation layers render that case as
    /// a bare mean (see `MetricSummary`).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation (√[`OnlineStats::sample_variance`];
    /// zero below two samples).
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Half-width of the 95 % confidence interval on the mean,
    /// `t₀.₉₇₅,ₙ₋₁ · s / √n` with the Student-t critical value from
    /// [`t_critical_975`]. Zero below two samples (no spread
    /// estimate exists).
    ///
    /// # Examples
    ///
    /// ```
    /// use qgov_metrics::OnlineStats;
    ///
    /// let s: OnlineStats = [2.0, 4.0, 6.0, 8.0, 10.0].into_iter().collect();
    /// let expected = 2.776 * s.sample_std_dev() / 5f64.sqrt();
    /// assert!((s.ci95_half_width() - expected).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            t_critical_975(self.count - 1) * self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Coefficient of variation, `std/mean` (zero for a zero mean).
    #[must_use]
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.population_std_dev() / m.abs()
        }
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn extrema_are_tracked() {
        let s: OnlineStats = [3.0, -1.0, 7.0, 2.0].into_iter().collect();
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.0));
    }

    #[test]
    fn cv_is_relative_spread() {
        let tight: OnlineStats = [10.0, 10.1, 9.9].into_iter().collect();
        let wide: OnlineStats = [10.0, 16.0, 4.0].into_iter().collect();
        assert!(tight.cv() < wide.cv());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_sample_panics() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
    }

    #[test]
    fn sample_variance_uses_bessel_correction() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        // Population variance 4.0 over 8 samples -> sample variance
        // 4.0 * 8 / 7.
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!(s.sample_std_dev() > s.population_std_dev());
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s: OnlineStats = [3.5].into_iter().collect();
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.sample_std_dev(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert!(OnlineStats::new().ci95_half_width() == 0.0);
    }

    #[test]
    fn constant_series_has_zero_ci() {
        let s: OnlineStats = std::iter::repeat_n(7.25, 12).collect();
        assert_eq!(s.mean(), 7.25);
        assert_eq!(s.sample_std_dev(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn t_table_is_monotone_decreasing_toward_the_normal_quantile() {
        let mut prev = t_critical_975(1);
        for df in 2..200 {
            let t = t_critical_975(df);
            assert!(t < prev, "df {df}: {t} !< {prev}");
            assert!(t > 1.959, "df {df}: {t}");
            prev = t;
        }
        assert_eq!(t_critical_975(30), 2.042);
        assert!((t_critical_975(40) - 2.021).abs() < 0.001);
        assert!((t_critical_975(120) - 1.980).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "degree of freedom")]
    fn t_critical_rejects_zero_df() {
        let _ = t_critical_975(0);
    }
}
