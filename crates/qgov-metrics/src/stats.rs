//! Streaming statistics.

/// Numerically-stable streaming mean/variance/extrema (Welford's
/// algorithm).
///
/// # Examples
///
/// ```
/// use qgov_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "samples must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero when empty).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation, `std/mean` (zero for a zero mean).
    #[must_use]
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.population_std_dev() / m.abs()
        }
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn extrema_are_tracked() {
        let s: OnlineStats = [3.0, -1.0, 7.0, 2.0].into_iter().collect();
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.0));
    }

    #[test]
    fn cv_is_relative_spread() {
        let tight: OnlineStats = [10.0, 10.1, 9.9].into_iter().collect();
        let wide: OnlineStats = [10.0, 16.0, 4.0].into_iter().collect();
        assert!(tight.cv() < wide.cv());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_sample_panics() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
    }
}
