//! Machine-readable performance trajectories.
//!
//! Every bench target can append its headline numbers as JSON lines to
//! the file named by the `QGOV_BENCH_JSON` environment variable — one
//! record per metric:
//!
//! ```json
//! {"target":"table1_energy","metric":"normalized_energy/Proposed","mean":1.11,"sigma":0.02,"n":5}
//! ```
//!
//! The schema is deliberately flat (`target`, `metric`, `mean`,
//! `sigma`, `n`) so successive CI runs can be concatenated into a
//! `BENCH_*.json` trajectory and diffed/plotted without bespoke
//! parsing. When the variable is unset the whole module is a no-op, so
//! interactive `cargo bench` runs stay file-free. The vendored
//! `criterion` stand-in emits the same schema for the `micro` timing
//! target (`Criterion::with_json_target`).

use qgov_metrics::MetricSummary;
use std::io::Write as _;
use std::path::PathBuf;

/// One benchmark measurement: `metric` (within `target`) observed with
/// `mean` ± `sigma` over `n` samples. Units are metric-specific — ns
/// per iteration for timing records, the metric's natural unit for
/// experiment aggregates, seconds for wall clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench target name (e.g. `table1_energy`).
    pub target: String,
    /// Metric name within the target (e.g.
    /// `normalized_energy/Proposed`).
    pub metric: String,
    /// Mean value across the samples.
    pub mean: f64,
    /// Sample standard deviation (zero for a single sample).
    pub sigma: f64,
    /// Number of samples aggregated.
    pub n: u64,
    /// Source revision the measurement was taken at (the git short
    /// hash CI exports as `QGOV_BENCH_REV`); `None` when unknown, and
    /// then omitted from the JSON line so pre-existing trajectories
    /// keep parsing.
    pub rev: Option<String>,
}

impl BenchRecord {
    /// A record from a scalar observation (`sigma` 0, `n` 1).
    #[must_use]
    pub fn scalar(target: &str, metric: impl Into<String>, value: f64) -> Self {
        BenchRecord {
            target: target.to_owned(),
            metric: metric.into(),
            mean: value,
            sigma: 0.0,
            n: 1,
            rev: None,
        }
    }

    /// A record from a sweep's [`MetricSummary`] aggregate.
    #[must_use]
    pub fn from_summary(target: &str, metric: impl Into<String>, summary: &MetricSummary) -> Self {
        BenchRecord {
            target: target.to_owned(),
            metric: metric.into(),
            mean: summary.mean,
            sigma: summary.std_dev,
            n: summary.n,
            rev: None,
        }
    }

    /// A record folding raw per-pass samples into `mean ± σ (n)` —
    /// what the wall-clock loops record instead of a single-pass
    /// scalar, so the trajectory carries real run-to-run spread.
    #[must_use]
    pub fn from_samples(target: &str, metric: impl Into<String>, samples: &[f64]) -> Self {
        Self::from_summary(target, metric, &MetricSummary::from_samples(samples))
    }

    /// The record as one JSON line (no trailing newline). Non-finite
    /// values (e.g. an `x/0` ratio from a degenerate smoke run) render
    /// as JSON `null` — `f64`'s `inf`/`NaN` display forms are not
    /// valid JSON and would corrupt the trajectory file.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let num = |v: f64| {
            if v.is_finite() {
                v.to_string()
            } else {
                "null".to_owned()
            }
        };
        let rev = self
            .rev
            .as_deref()
            .map(|r| format!(",\"rev\":\"{}\"", escape(r)))
            .unwrap_or_default();
        format!(
            "{{\"target\":\"{}\",\"metric\":\"{}\",\"mean\":{},\"sigma\":{},\"n\":{}{rev}}}",
            escape(&self.target),
            escape(&self.metric),
            num(self.mean),
            num(self.sigma),
            self.n
        )
    }
}

/// The source revision to stamp onto appended records, if the
/// `QGOV_BENCH_REV` environment variable names one (CI exports the git
/// short hash; whitespace-only values count as unset).
#[must_use]
pub fn bench_rev() -> Option<String> {
    std::env::var("QGOV_BENCH_REV")
        .ok()
        .map(|v| v.trim().to_owned())
        .filter(|v| !v.is_empty())
}

/// Reads the wall-clock measurement pass count from the
/// `QGOV_BENCH_PASSES` environment variable: a positive integer selects
/// that many timed passes; anything else (including unset) selects
/// `default`, with a warning for unparseable values.
#[must_use]
pub fn passes_from_env(default: usize) -> usize {
    match std::env::var("QGOV_BENCH_PASSES") {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "warning: unrecognised QGOV_BENCH_PASSES value {value:?}; \
                     using default pass count {default}"
                );
                default
            }
        },
        Err(_) => default,
    }
}

/// Times `passes` repetitions of `body` and returns the last pass's
/// result together with the per-pass wall clocks in seconds.
///
/// The experiments are deterministic for a fixed seed set, so repeat
/// passes are pure timing replicates: every pass returns bit-identical
/// results, and the per-pass seconds are real samples of the same
/// measurement — what [`BenchRecord::from_samples`] folds into an
/// honest `mean ± σ (n)` wall-clock record instead of a single-pass
/// scalar masquerading as `σ = 0`.
///
/// # Panics
///
/// Panics when `passes` is zero.
pub fn timed_passes<R>(passes: usize, mut body: impl FnMut() -> R) -> (R, Vec<f64>) {
    assert!(passes > 0, "need at least one timed pass");
    let mut secs = Vec::with_capacity(passes);
    let mut result = None;
    for pass in 0..passes {
        let start = std::time::Instant::now();
        result = Some(body());
        let elapsed = start.elapsed().as_secs_f64();
        if passes > 1 {
            println!("timing pass {}/{passes}: {elapsed:.3} s", pass + 1);
        }
        secs.push(elapsed);
    }
    (result.expect("at least one pass ran"), secs)
}

/// The configured trajectory file, if `QGOV_BENCH_JSON` names one.
#[must_use]
pub fn json_path() -> Option<PathBuf> {
    std::env::var_os("QGOV_BENCH_JSON")
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
}

/// Appends `records` to `path` as JSON lines, stamping each with the
/// `QGOV_BENCH_REV` revision when set (records that already carry a
/// `rev` keep it). This is the explicit-path write the `qgov report
/// --bench-json` command drives directly; [`append_records`] is the
/// `QGOV_BENCH_JSON`-driven wrapper the bench targets use.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be opened or
/// appended to.
pub fn append_records_to(path: &std::path::Path, records: &[BenchRecord]) -> std::io::Result<()> {
    let rev = bench_rev();
    let mut body = String::new();
    for r in records {
        if r.rev.is_none() && rev.is_some() {
            let mut stamped = r.clone();
            stamped.rev.clone_from(&rev);
            body.push_str(&stamped.to_json_line());
        } else {
            body.push_str(&r.to_json_line());
        }
        body.push('\n');
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(body.as_bytes()))
}

/// Appends `records` to the `QGOV_BENCH_JSON` file as JSON lines via
/// [`append_records_to`].
///
/// A no-op when the variable is unset. Write failures are reported on
/// stderr and swallowed — a bench run must not die on a read-only
/// filesystem. Returns how many records were appended.
pub fn append_records(records: &[BenchRecord]) -> usize {
    let Some(path) = json_path() else {
        return 0;
    };
    match append_records_to(&path, records) {
        Ok(()) => {
            println!(
                "appended {} bench record(s) to {}",
                records.len(),
                path.display()
            );
            records.len()
        }
        Err(e) => {
            eprintln!(
                "warning: QGOV_BENCH_JSON append to {} failed: {e}",
                path.display()
            );
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_follow_the_flat_schema() {
        let r = BenchRecord::scalar("t1", "wall_clock_s", 2.5);
        assert_eq!(
            r.to_json_line(),
            "{\"target\":\"t1\",\"metric\":\"wall_clock_s\",\"mean\":2.5,\"sigma\":0,\"n\":1}"
        );
        let s = MetricSummary::from_samples(&[1.0, 2.0, 3.0]);
        let r = BenchRecord::from_summary("t2", "m", &s);
        assert_eq!(r.n, 3);
        assert_eq!(r.mean, 2.0);
        assert!(r.to_json_line().starts_with("{\"target\":\"t2\""));
    }

    #[test]
    fn metric_names_are_escaped() {
        let r = BenchRecord::scalar("t", "odd\"name\\x", 1.0);
        assert!(r.to_json_line().contains("odd\\\"name\\\\x"));
    }

    #[test]
    fn non_finite_values_render_as_json_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = BenchRecord::scalar("t", "ratio", bad);
            assert!(
                r.to_json_line().contains("\"mean\":null"),
                "{}",
                r.to_json_line()
            );
        }
        let r = BenchRecord {
            target: "t".into(),
            metric: "m".into(),
            mean: 1.0,
            sigma: f64::NAN,
            n: 2,
            rev: None,
        };
        assert!(r.to_json_line().contains("\"sigma\":null"));
    }

    #[test]
    fn from_samples_folds_per_pass_wall_clocks() {
        let r = BenchRecord::from_samples("t", "wall_clock_s", &[1.0, 2.0, 3.0]);
        assert_eq!(r.mean, 2.0);
        assert_eq!(r.n, 3);
        assert!(r.sigma > 0.9 && r.sigma < 1.1);
    }

    #[test]
    fn rev_field_appends_to_the_json_line_only_when_present() {
        let mut r = BenchRecord::scalar("t1", "wall_clock_s", 2.5);
        assert!(!r.to_json_line().contains("rev"));
        r.rev = Some("abc1234".into());
        assert_eq!(
            r.to_json_line(),
            "{\"target\":\"t1\",\"metric\":\"wall_clock_s\",\"mean\":2.5,\"sigma\":0,\"n\":1,\"rev\":\"abc1234\"}"
        );
    }

    // `append_records` env behaviour is exercised end-to-end by the CI
    // capture step (and the vendored criterion's unit test covers the
    // same append path); unit tests here avoid mutating process-global
    // environment state under the parallel test runner.
}
