//! Machine-readable performance trajectories.
//!
//! Every bench target can append its headline numbers as JSON lines to
//! the file named by the `QGOV_BENCH_JSON` environment variable — one
//! record per metric:
//!
//! ```json
//! {"target":"table1_energy","metric":"normalized_energy/Proposed","mean":1.11,"sigma":0.02,"n":5}
//! ```
//!
//! The schema is deliberately flat (`target`, `metric`, `mean`,
//! `sigma`, `n`) so successive CI runs can be concatenated into a
//! `BENCH_*.json` trajectory and diffed/plotted without bespoke
//! parsing. When the variable is unset the whole module is a no-op, so
//! interactive `cargo bench` runs stay file-free. The vendored
//! `criterion` stand-in emits the same schema for the `micro` timing
//! target (`Criterion::with_json_target`).

use qgov_metrics::MetricSummary;
use std::io::Write as _;
use std::path::PathBuf;

/// One benchmark measurement: `metric` (within `target`) observed with
/// `mean` ± `sigma` over `n` samples. Units are metric-specific — ns
/// per iteration for timing records, the metric's natural unit for
/// experiment aggregates, seconds for wall clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench target name (e.g. `table1_energy`).
    pub target: String,
    /// Metric name within the target (e.g.
    /// `normalized_energy/Proposed`).
    pub metric: String,
    /// Mean value across the samples.
    pub mean: f64,
    /// Sample standard deviation (zero for a single sample).
    pub sigma: f64,
    /// Number of samples aggregated.
    pub n: u64,
}

impl BenchRecord {
    /// A record from a scalar observation (`sigma` 0, `n` 1).
    #[must_use]
    pub fn scalar(target: &str, metric: impl Into<String>, value: f64) -> Self {
        BenchRecord {
            target: target.to_owned(),
            metric: metric.into(),
            mean: value,
            sigma: 0.0,
            n: 1,
        }
    }

    /// A record from a sweep's [`MetricSummary`] aggregate.
    #[must_use]
    pub fn from_summary(target: &str, metric: impl Into<String>, summary: &MetricSummary) -> Self {
        BenchRecord {
            target: target.to_owned(),
            metric: metric.into(),
            mean: summary.mean,
            sigma: summary.std_dev,
            n: summary.n,
        }
    }

    /// The record as one JSON line (no trailing newline). Non-finite
    /// values (e.g. an `x/0` ratio from a degenerate smoke run) render
    /// as JSON `null` — `f64`'s `inf`/`NaN` display forms are not
    /// valid JSON and would corrupt the trajectory file.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let num = |v: f64| {
            if v.is_finite() {
                v.to_string()
            } else {
                "null".to_owned()
            }
        };
        format!(
            "{{\"target\":\"{}\",\"metric\":\"{}\",\"mean\":{},\"sigma\":{},\"n\":{}}}",
            escape(&self.target),
            escape(&self.metric),
            num(self.mean),
            num(self.sigma),
            self.n
        )
    }
}

/// The configured trajectory file, if `QGOV_BENCH_JSON` names one.
#[must_use]
pub fn json_path() -> Option<PathBuf> {
    std::env::var_os("QGOV_BENCH_JSON")
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
}

/// Appends `records` to the `QGOV_BENCH_JSON` file as JSON lines.
///
/// A no-op when the variable is unset. Write failures are reported on
/// stderr and swallowed — a bench run must not die on a read-only
/// filesystem. Returns how many records were appended.
pub fn append_records(records: &[BenchRecord]) -> usize {
    let Some(path) = json_path() else {
        return 0;
    };
    let mut body = String::new();
    for r in records {
        body.push_str(&r.to_json_line());
        body.push('\n');
    }
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(body.as_bytes()));
    match appended {
        Ok(()) => {
            println!(
                "appended {} bench record(s) to {}",
                records.len(),
                path.display()
            );
            records.len()
        }
        Err(e) => {
            eprintln!(
                "warning: QGOV_BENCH_JSON append to {} failed: {e}",
                path.display()
            );
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_follow_the_flat_schema() {
        let r = BenchRecord::scalar("t1", "wall_clock_s", 2.5);
        assert_eq!(
            r.to_json_line(),
            "{\"target\":\"t1\",\"metric\":\"wall_clock_s\",\"mean\":2.5,\"sigma\":0,\"n\":1}"
        );
        let s = MetricSummary::from_samples(&[1.0, 2.0, 3.0]);
        let r = BenchRecord::from_summary("t2", "m", &s);
        assert_eq!(r.n, 3);
        assert_eq!(r.mean, 2.0);
        assert!(r.to_json_line().starts_with("{\"target\":\"t2\""));
    }

    #[test]
    fn metric_names_are_escaped() {
        let r = BenchRecord::scalar("t", "odd\"name\\x", 1.0);
        assert!(r.to_json_line().contains("odd\\\"name\\\\x"));
    }

    #[test]
    fn non_finite_values_render_as_json_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = BenchRecord::scalar("t", "ratio", bad);
            assert!(
                r.to_json_line().contains("\"mean\":null"),
                "{}",
                r.to_json_line()
            );
        }
        let r = BenchRecord {
            target: "t".into(),
            metric: "m".into(),
            mean: 1.0,
            sigma: f64::NAN,
            n: 2,
        };
        assert!(r.to_json_line().contains("\"sigma\":null"));
    }

    // `append_records` env behaviour is exercised end-to-end by the CI
    // capture step (and the vendored criterion's unit test covers the
    // same append path); unit tests here avoid mutating process-global
    // environment state under the parallel test runner.
}
