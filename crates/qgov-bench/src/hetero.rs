//! Heterogeneous-platform experiments: big.LITTLE placement and mesh
//! scaling.
//!
//! The paper's evaluation runs on one V-F island of the ODROID-XU3.
//! These experiments extend it to the *chip*: the same Q-learning RTM,
//! instantiated per cluster and coordinated by greedy task migration
//! ([`ManyCoreRtm`]), against static placements on the full
//! big.LITTLE part, and a weak-scaling study on synthetic homogeneous
//! meshes.
//!
//! * [`run_biglittle`] — a scaled H.264 decode (too heavy for the A7
//!   quad alone, comfortably feasible on the A15 quad) under three
//!   placements: everything on big, everything on LITTLE, and the
//!   learned migrating placement. The headline: learned migration
//!   matches big-only's deadline behaviour at lower energy, because
//!   steady frames drift to the LITTLE cores.
//! * [`run_mesh_scaling`] — one [`ManyCoreRtm`] across 4/8/16
//!   identical clusters with a workload scaled to the cluster count:
//!   per-cluster energy should stay flat as the chip grows (weak
//!   scaling of the per-cluster learning loop).
//!
//! Both have `*_with` (explicit [`RunnerConfig`]) and `*_sweep`
//! (multi-seed [`SeedSweep`]) variants like every experiment in
//! [`crate::experiments`]; recorded baselines live in `EXPERIMENTS.md`.

use crate::experiments::TracePrep;
use crate::harness::precharacterize;
use crate::manycore::{
    run_manycore_experiment, run_manycore_experiment_monitored, ManyCoreOutcome,
};
use crate::runner::{ExperimentBatch, RunnerConfig};
use crate::sweep::{Aggregate, SeedSweep};
use qgov_core::{ManyCoreRtm, RtmConfig, RtmGovernor};
use qgov_governors::{Governor, ManyCoreGovernor, PerClusterGovernors, PowersaveGovernor};
use qgov_metrics::{
    standard_pack, ComparisonTable, MetricSummary, MonitorReport, PackConfig, RunReport,
    SweepFormat, SweepTable,
};
use qgov_sim::{ClusterConfig, PlatformConfig, Topology};
use qgov_units::{Cycles, SimTime};
use qgov_workloads::{capacity_shares, Application, SyntheticWorkload, VideoDecoderModel};

fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// One cell of a many-core experiment grid: the chip-level report plus
/// the coordinator's migration count and final work shares.
#[derive(Debug, Clone)]
pub(crate) struct ManyCoreCell {
    pub(crate) report: RunReport,
    pub(crate) migrations: u64,
    pub(crate) shares: Vec<f64>,
}

/// Runs one many-core cell, optionally with the standard temporal
/// property pack for `label` riding along as a chip-level monitor.
fn run_cell(
    gov: &mut dyn ManyCoreGovernor,
    app: &mut dyn Application,
    topology: Topology,
    frames: u64,
    shares: &[f64],
    label: &str,
    pack: Option<&PackConfig>,
) -> ManyCoreOutcome {
    match pack {
        Some(cfg) => {
            let mut monitors = standard_pack(label, cfg);
            run_manycore_experiment_monitored(gov, app, topology, frames, shares, &mut monitors)
        }
        None => run_manycore_experiment(gov, app, topology, frames, shares),
    }
}

/// Per-cluster compute capacities (cores × top frequency in GHz) — the
/// seed for [`capacity_shares`] on a heterogeneous topology.
fn cluster_capacities(clusters: &[ClusterConfig]) -> Vec<f64> {
    clusters
        .iter()
        .map(|c| c.platform.cores as f64 * c.platform.opp_table.max_freq().as_ghz())
        .collect()
}

// ---------------------------------------------------------------------------
// big.LITTLE placement
// ---------------------------------------------------------------------------

/// big.LITTLE placement cells, in row order. `big-only` is the
/// normalisation reference.
pub(crate) const BIGLITTLE_LABELS: &[&str] = &["big-only", "little-only", "rtm-migrate"];

/// The big.LITTLE workload: the H.264 football sequence scaled up to a
/// chip-sized decode (135 Mcycles per slot × 3 slots ≈ 410 Mcycles per
/// 66.7 ms epoch). Sized so the A7 quad alone cannot hold the deadline
/// (mean demand exceeds its 373 Mcycle top-frequency capacity) while
/// the A15 quad (533 Mcycles) can — the regime where placement
/// actually matters.
#[must_use]
pub fn biglittle_app(seed: u64, frames: u64) -> VideoDecoderModel {
    let mut params = VideoDecoderModel::h264_football_15fps(seed)
        .params()
        .clone();
    params.name = "h264-chip".into();
    params.base_cycles = Cycles::from_mcycles(135);
    params.frames = frames;
    VideoDecoderModel::new(params).expect("scaled preset is valid")
}

/// Records the big.LITTLE workload for one seed.
pub(crate) fn biglittle_prepare(seed: u64, frames: u64) -> TracePrep {
    let mut app = biglittle_app(seed, frames);
    let (trace, bounds) = precharacterize(&mut app);
    TracePrep { trace, bounds }
}

/// Runs one big.LITTLE placement cell against the prepared trace.
pub(crate) fn biglittle_cell(
    label: &str,
    prep: &TracePrep,
    seed: u64,
    frames: u64,
) -> ManyCoreCell {
    biglittle_cell_with(label, prep, seed, frames, None)
}

/// [`biglittle_cell`] with the standard temporal property pack
/// optionally monitoring the chip-level epoch stream.
pub(crate) fn biglittle_cell_with(
    label: &str,
    prep: &TracePrep,
    seed: u64,
    frames: u64,
    pack: Option<&PackConfig>,
) -> ManyCoreCell {
    let topology = Topology::odroid_xu3_biglittle();
    let mut replay = prep.trace.clone();
    let rtm = |seed: u64| -> Box<dyn Governor> {
        Box::new(
            RtmGovernor::new(
                RtmConfig::paper(seed).with_workload_bounds(prep.bounds.0, prep.bounds.1),
            )
            .expect("paper config is valid"),
        )
    };
    match label {
        "big-only" => {
            let mut gov = PerClusterGovernors::new(
                "big-only",
                vec![rtm(seed), Box::new(PowersaveGovernor::new())],
            );
            let out = run_cell(
                &mut gov,
                &mut replay,
                topology,
                frames,
                &[1.0, 0.0],
                label,
                pack,
            );
            ManyCoreCell {
                report: out.report,
                migrations: 0,
                shares: out.shares,
            }
        }
        "little-only" => {
            let mut gov = PerClusterGovernors::new(
                "little-only",
                vec![Box::new(PowersaveGovernor::new()), rtm(seed)],
            );
            let out = run_cell(
                &mut gov,
                &mut replay,
                topology,
                frames,
                &[0.0, 1.0],
                label,
                pack,
            );
            ManyCoreCell {
                report: out.report,
                migrations: 0,
                shares: out.shares,
            }
        }
        "rtm-migrate" => {
            let mut shares = vec![0.0; topology.cluster_count()];
            capacity_shares(&cluster_capacities(&topology.clusters), &mut shares);
            let mut gov = ManyCoreRtm::paper(seed, topology.cluster_count(), prep.bounds)
                .expect("paper config is valid");
            let out = run_cell(
                &mut gov,
                &mut replay,
                topology,
                frames,
                &shares,
                label,
                pack,
            );
            ManyCoreCell {
                report: out.report,
                migrations: gov.migrations(),
                shares: out.shares,
            }
        }
        other => unreachable!("unknown big.LITTLE cell {other}"),
    }
}

/// One placement's outcome in the big.LITTLE comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BigLittleRow {
    /// Placement label.
    pub placement: String,
    /// Absolute chip energy in joules.
    pub energy_joules: f64,
    /// Energy normalised to the big-only run.
    pub normalized_energy: f64,
    /// Deadline miss rate.
    pub miss_rate: f64,
    /// Joules per deadline-met frame (energy divided by met frames; the
    /// divisor clamps at one so an all-missing run reports its total
    /// energy rather than dividing by zero).
    pub energy_per_met_frame: f64,
    /// Share moves the coordinator performed (zero for static
    /// placements).
    pub migrations: u64,
    /// Final share of the work on the big cluster.
    pub final_big_share: f64,
    /// Temporal-property verdicts when the run was monitored
    /// ([`run_biglittle_monitored`]); `None` otherwise.
    pub monitor: Option<MonitorReport>,
}

/// The big.LITTLE placement comparison bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct BigLittleResult {
    /// One row per placement, in big-only, LITTLE-only, learned order.
    pub rows: Vec<BigLittleRow>,
    /// Rendered comparison table.
    pub table: ComparisonTable,
}

fn placement_label(name: &str) -> String {
    match name {
        "big-only" => "Big-only (A15 quad)".into(),
        "little-only" => "LITTLE-only (A7 quad)".into(),
        "rtm-migrate" => "Learned migration (proposed)".into(),
        other => other.into(),
    }
}

/// Folds the placement cells (in `BIGLITTLE_LABELS` order) into the
/// result bundle.
pub(crate) fn biglittle_assemble(cells: Vec<ManyCoreCell>) -> BigLittleResult {
    let reference = cells.first().expect("big-only cell present").report.clone();
    let rows: Vec<BigLittleRow> = cells
        .iter()
        .map(|cell| {
            let r = &cell.report;
            let met = (r.frames() - r.deadline_misses()).max(1);
            BigLittleRow {
                placement: placement_label(r.governor()),
                energy_joules: r.total_energy().as_joules(),
                normalized_energy: r.normalized_energy(&reference),
                miss_rate: r.miss_rate(),
                energy_per_met_frame: r.total_energy().as_joules() / met as f64,
                migrations: cell.migrations,
                final_big_share: cell.shares.first().copied().unwrap_or(0.0),
                monitor: r.monitor_report().cloned(),
            }
        })
        .collect();

    let mut table = ComparisonTable::new(vec![
        "Placement",
        "Energy (J)",
        "Normalized energy",
        "Miss rate",
        "J / met frame",
        "Migrations",
        "Final big share",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.placement.clone(),
            format!("{:.1}", row.energy_joules),
            fmt2(row.normalized_energy),
            fmt_pct(row.miss_rate),
            format!("{:.3}", row.energy_per_met_frame),
            row.migrations.to_string(),
            fmt2(row.final_big_share),
        ]);
    }
    BigLittleResult { rows, table }
}

/// **big.LITTLE placement** with the execution policy read from
/// `QGOV_WORKERS`.
#[must_use]
pub fn run_biglittle(seed: u64, frames: u64) -> BigLittleResult {
    run_biglittle_with(seed, frames, &RunnerConfig::from_env())
}

/// **big.LITTLE placement** under an explicit [`RunnerConfig`]: all
/// three placements replay the identical recorded trace on the same
/// two-cluster topology; energy is normalised to the big-only run.
#[must_use]
pub fn run_biglittle_with(seed: u64, frames: u64, runner: &RunnerConfig) -> BigLittleResult {
    let prep = biglittle_prepare(seed, frames);
    let mut batch = ExperimentBatch::new();
    batch.expand_cells(
        BIGLITTLE_LABELS,
        &[seed],
        &[frames],
        |label, seed, frames| biglittle_cell(label, &prep, seed, frames),
    );
    biglittle_assemble(batch.run(runner))
}

/// **big.LITTLE placement** with the standard temporal property pack
/// monitoring every placement's chip-level epoch stream; verdicts land
/// on each row's [`monitor`](BigLittleRow::monitor) field. Execution
/// policy read from `QGOV_WORKERS`.
#[must_use]
pub fn run_biglittle_monitored(seed: u64, frames: u64, pack: &PackConfig) -> BigLittleResult {
    run_biglittle_monitored_with(seed, frames, &RunnerConfig::from_env(), pack)
}

/// [`run_biglittle_monitored`] under an explicit [`RunnerConfig`].
#[must_use]
pub fn run_biglittle_monitored_with(
    seed: u64,
    frames: u64,
    runner: &RunnerConfig,
    pack: &PackConfig,
) -> BigLittleResult {
    let prep = biglittle_prepare(seed, frames);
    let mut batch = ExperimentBatch::new();
    batch.expand_cells(
        BIGLITTLE_LABELS,
        &[seed],
        &[frames],
        |label, seed, frames| biglittle_cell_with(label, &prep, seed, frames, Some(pack)),
    );
    biglittle_assemble(batch.run(runner))
}

/// One placement's cross-seed aggregates in the big.LITTLE sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BigLittleSweepRow {
    /// Placement label.
    pub placement: String,
    /// Absolute chip energy in joules.
    pub energy_joules: MetricSummary,
    /// Energy normalised to the same-seed big-only run.
    pub normalized_energy: MetricSummary,
    /// Deadline miss rate.
    pub miss_rate: MetricSummary,
    /// Joules per deadline-met frame.
    pub energy_per_met_frame: MetricSummary,
    /// Share moves performed by the coordinator.
    pub migrations: MetricSummary,
}

/// The big.LITTLE sweep bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct BigLittleSweep {
    /// The seeds aggregated, in sweep order.
    pub seeds: Vec<u64>,
    /// One aggregate row per placement.
    pub rows: Vec<BigLittleSweepRow>,
    /// Rendered `mean ± σ (n)` table.
    pub table: SweepTable,
    /// The underlying single-seed results, in sweep order.
    pub per_seed: Vec<BigLittleResult>,
}

/// **big.LITTLE placement** across a seed sweep, with the execution
/// policy read from `QGOV_WORKERS`.
#[must_use]
pub fn run_biglittle_sweep(sweep: &SeedSweep, frames: u64) -> BigLittleSweep {
    run_biglittle_sweep_with(sweep, frames, &RunnerConfig::from_env())
}

/// **big.LITTLE placement** across a seed sweep under an explicit
/// [`RunnerConfig`]; the seed × placement grid runs as one flattened
/// job queue.
#[must_use]
pub fn run_biglittle_sweep_with(
    sweep: &SeedSweep,
    frames: u64,
    runner: &RunnerConfig,
) -> BigLittleSweep {
    let agg = Aggregate::collect_grid(
        BIGLITTLE_LABELS,
        sweep,
        frames,
        runner,
        biglittle_prepare,
        biglittle_cell,
        |_seed, _prep, cells| biglittle_assemble(cells),
    );

    let placements: Vec<String> = agg.results()[0]
        .rows
        .iter()
        .map(|r| r.placement.clone())
        .collect();
    let rows: Vec<BigLittleSweepRow> = placements
        .iter()
        .enumerate()
        .map(|(i, placement)| {
            debug_assert!(
                agg.results()
                    .iter()
                    .all(|r| r.rows[i].placement == *placement),
                "placement order must not depend on the seed"
            );
            BigLittleSweepRow {
                placement: placement.clone(),
                energy_joules: agg.summarize(|r| r.rows[i].energy_joules),
                normalized_energy: agg.summarize(|r| r.rows[i].normalized_energy),
                miss_rate: agg.summarize(|r| r.rows[i].miss_rate),
                energy_per_met_frame: agg.summarize(|r| r.rows[i].energy_per_met_frame),
                migrations: agg.summarize(|r| r.rows[i].migrations as f64),
            }
        })
        .collect();

    let mut table = SweepTable::new(
        "Placement",
        vec![
            ("Energy (J)", SweepFormat::Fixed(1)),
            ("Normalized energy", SweepFormat::Fixed(2)),
            ("Miss rate", SweepFormat::Percent(1)),
            ("J / met frame", SweepFormat::Fixed(3)),
            ("Migrations", SweepFormat::Fixed(1)),
        ],
    );
    for row in &rows {
        table.add_row(
            row.placement.clone(),
            vec![
                row.energy_joules,
                row.normalized_energy,
                row.miss_rate,
                row.energy_per_met_frame,
                row.migrations,
            ],
        );
    }
    let (seeds, per_seed) = agg.into_parts();
    BigLittleSweep {
        seeds,
        rows,
        table,
        per_seed,
    }
}

// ---------------------------------------------------------------------------
// Mesh weak scaling
// ---------------------------------------------------------------------------

/// Mesh sizes, in row order.
pub(crate) const MESH_LABELS: &[&str] = &["mesh-4", "mesh-8", "mesh-16"];

fn mesh_size(label: &str) -> usize {
    match label {
        "mesh-4" => 4,
        "mesh-8" => 8,
        "mesh-16" => 16,
        other => unreachable!("unknown mesh cell {other}"),
    }
}

/// The mesh workload for `clusters` A15 quads: one thread per core,
/// ≈ 130 Mcycles per cluster per 40 ms frame (≈ 40 % utilisation at
/// the top OPP — room for the per-cluster agents to scale down), with
/// 10 % multiplicative noise.
#[must_use]
pub fn mesh_app(clusters: usize, seed: u64, frames: u64) -> SyntheticWorkload {
    SyntheticWorkload::constant(
        "mesh",
        Cycles::from_mcycles(130 * clusters as u64),
        SimTime::from_ms(40),
        frames,
        4 * clusters,
        seed,
    )
    .with_noise(0.1)
}

/// Records each mesh size's workload for one seed, in
/// `MESH_LABELS` order.
pub(crate) fn mesh_prepare(seed: u64, frames: u64) -> Vec<TracePrep> {
    MESH_LABELS
        .iter()
        .map(|label| {
            let mut app = mesh_app(mesh_size(label), seed, frames);
            let (trace, bounds) = precharacterize(&mut app);
            TracePrep { trace, bounds }
        })
        .collect()
}

/// Runs one mesh-size cell: [`ManyCoreRtm`] on a homogeneous mesh with
/// an initially uniform placement.
pub(crate) fn mesh_cell(label: &str, preps: &[TracePrep], seed: u64, frames: u64) -> ManyCoreCell {
    mesh_cell_with(label, preps, seed, frames, None)
}

/// [`mesh_cell`] with the standard temporal property pack optionally
/// monitoring the chip-level epoch stream.
pub(crate) fn mesh_cell_with(
    label: &str,
    preps: &[TracePrep],
    seed: u64,
    frames: u64,
    pack: Option<&PackConfig>,
) -> ManyCoreCell {
    let idx = MESH_LABELS
        .iter()
        .position(|l| *l == label)
        .expect("known mesh label");
    let prep = &preps[idx];
    let clusters = mesh_size(label);
    let topology = Topology::homogeneous_mesh(clusters, PlatformConfig::odroid_xu3_a15());
    let mut gov = ManyCoreRtm::paper(seed, clusters, prep.bounds).expect("paper config is valid");
    let shares = vec![1.0 / clusters as f64; clusters];
    let mut replay = prep.trace.clone();
    let out = run_cell(
        &mut gov,
        &mut replay,
        topology,
        frames,
        &shares,
        label,
        pack,
    );
    ManyCoreCell {
        report: out.report,
        migrations: gov.migrations(),
        shares: out.shares,
    }
}

/// One mesh size's outcome in the scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshRow {
    /// Number of clusters.
    pub clusters: usize,
    /// Total cores on the chip.
    pub cores: usize,
    /// Absolute chip energy in joules.
    pub energy_joules: f64,
    /// Chip energy divided by the cluster count — flat under ideal
    /// weak scaling.
    pub energy_per_cluster: f64,
    /// Deadline miss rate.
    pub miss_rate: f64,
    /// Share moves performed by the coordinator.
    pub migrations: u64,
    /// Temporal-property verdicts when the run was monitored
    /// ([`run_mesh_scaling_monitored`]); `None` otherwise.
    pub monitor: Option<MonitorReport>,
}

/// The mesh scaling bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshScalingResult {
    /// One row per mesh size, in mesh-size order (4, 8, 16).
    pub rows: Vec<MeshRow>,
    /// Rendered comparison table.
    pub table: ComparisonTable,
}

/// Folds the mesh cells (in [`MESH_LABELS`] order) into the result
/// bundle.
pub(crate) fn mesh_assemble(cells: Vec<ManyCoreCell>) -> MeshScalingResult {
    let rows: Vec<MeshRow> = MESH_LABELS
        .iter()
        .zip(&cells)
        .map(|(label, cell)| {
            let clusters = mesh_size(label);
            let r = &cell.report;
            MeshRow {
                clusters,
                cores: 4 * clusters,
                energy_joules: r.total_energy().as_joules(),
                energy_per_cluster: r.total_energy().as_joules() / clusters as f64,
                miss_rate: r.miss_rate(),
                migrations: cell.migrations,
                monitor: r.monitor_report().cloned(),
            }
        })
        .collect();

    let mut table = ComparisonTable::new(vec![
        "Mesh",
        "Cores",
        "Energy (J)",
        "J / cluster",
        "Miss rate",
        "Migrations",
    ]);
    for row in &rows {
        table.add_row(vec![
            format!("{} clusters", row.clusters),
            row.cores.to_string(),
            format!("{:.1}", row.energy_joules),
            format!("{:.1}", row.energy_per_cluster),
            fmt_pct(row.miss_rate),
            row.migrations.to_string(),
        ]);
    }
    MeshScalingResult { rows, table }
}

/// **Mesh weak scaling** with the execution policy read from
/// `QGOV_WORKERS`.
#[must_use]
pub fn run_mesh_scaling(seed: u64, frames: u64) -> MeshScalingResult {
    run_mesh_scaling_with(seed, frames, &RunnerConfig::from_env())
}

/// **Mesh weak scaling** under an explicit [`RunnerConfig`]: one
/// [`ManyCoreRtm`] per mesh size against a workload scaled to the
/// cluster count, each size an independent batch cell.
#[must_use]
pub fn run_mesh_scaling_with(seed: u64, frames: u64, runner: &RunnerConfig) -> MeshScalingResult {
    let preps = mesh_prepare(seed, frames);
    let mut batch = ExperimentBatch::new();
    batch.expand_cells(MESH_LABELS, &[seed], &[frames], |label, seed, frames| {
        mesh_cell(label, &preps, seed, frames)
    });
    mesh_assemble(batch.run(runner))
}

/// **Mesh weak scaling** with the standard temporal property pack
/// monitoring every mesh size's chip-level epoch stream; verdicts land
/// on each row's [`monitor`](MeshRow::monitor) field. Execution policy
/// read from `QGOV_WORKERS`.
#[must_use]
pub fn run_mesh_scaling_monitored(seed: u64, frames: u64, pack: &PackConfig) -> MeshScalingResult {
    run_mesh_scaling_monitored_with(seed, frames, &RunnerConfig::from_env(), pack)
}

/// [`run_mesh_scaling_monitored`] under an explicit [`RunnerConfig`].
#[must_use]
pub fn run_mesh_scaling_monitored_with(
    seed: u64,
    frames: u64,
    runner: &RunnerConfig,
    pack: &PackConfig,
) -> MeshScalingResult {
    let preps = mesh_prepare(seed, frames);
    let mut batch = ExperimentBatch::new();
    batch.expand_cells(MESH_LABELS, &[seed], &[frames], |label, seed, frames| {
        mesh_cell_with(label, &preps, seed, frames, Some(pack))
    });
    mesh_assemble(batch.run(runner))
}

/// One mesh size's cross-seed aggregates in the scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshSweepRow {
    /// Number of clusters.
    pub clusters: usize,
    /// Absolute chip energy in joules.
    pub energy_joules: MetricSummary,
    /// Chip energy divided by the cluster count.
    pub energy_per_cluster: MetricSummary,
    /// Deadline miss rate.
    pub miss_rate: MetricSummary,
    /// Share moves performed by the coordinator.
    pub migrations: MetricSummary,
}

/// The mesh scaling sweep bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshSweep {
    /// The seeds aggregated, in sweep order.
    pub seeds: Vec<u64>,
    /// One aggregate row per mesh size.
    pub rows: Vec<MeshSweepRow>,
    /// Rendered `mean ± σ (n)` table.
    pub table: SweepTable,
    /// The underlying single-seed results, in sweep order.
    pub per_seed: Vec<MeshScalingResult>,
}

/// **Mesh weak scaling** across a seed sweep, with the execution
/// policy read from `QGOV_WORKERS`.
#[must_use]
pub fn run_mesh_scaling_sweep(sweep: &SeedSweep, frames: u64) -> MeshSweep {
    run_mesh_scaling_sweep_with(sweep, frames, &RunnerConfig::from_env())
}

/// **Mesh weak scaling** across a seed sweep under an explicit
/// [`RunnerConfig`]; the seed × mesh-size grid runs as one flattened
/// job queue.
#[must_use]
pub fn run_mesh_scaling_sweep_with(
    sweep: &SeedSweep,
    frames: u64,
    runner: &RunnerConfig,
) -> MeshSweep {
    let agg = Aggregate::collect_grid(
        MESH_LABELS,
        sweep,
        frames,
        runner,
        mesh_prepare,
        |label, preps, seed, frames| mesh_cell(label, preps, seed, frames),
        |_seed, _prep, cells| mesh_assemble(cells),
    );

    let rows: Vec<MeshSweepRow> = MESH_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| MeshSweepRow {
            clusters: mesh_size(label),
            energy_joules: agg.summarize(|r| r.rows[i].energy_joules),
            energy_per_cluster: agg.summarize(|r| r.rows[i].energy_per_cluster),
            miss_rate: agg.summarize(|r| r.rows[i].miss_rate),
            migrations: agg.summarize(|r| r.rows[i].migrations as f64),
        })
        .collect();

    let mut table = SweepTable::new(
        "Mesh",
        vec![
            ("Energy (J)", SweepFormat::Fixed(1)),
            ("J / cluster", SweepFormat::Fixed(1)),
            ("Miss rate", SweepFormat::Percent(1)),
            ("Migrations", SweepFormat::Fixed(1)),
        ],
    );
    for row in &rows {
        table.add_row(
            format!("{} clusters", row.clusters),
            vec![
                row.energy_joules,
                row.energy_per_cluster,
                row.miss_rate,
                row.migrations,
            ],
        );
    }
    let (seeds, per_seed) = agg.into_parts();
    MeshSweep {
        seeds,
        rows,
        table,
        per_seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunnerConfig;

    #[test]
    fn biglittle_rows_are_structured_and_static_placements_stay_put() {
        let result = run_biglittle_with(7, 90, &RunnerConfig::serial());
        assert_eq!(result.rows.len(), 3);
        let big = &result.rows[0];
        let little = &result.rows[1];
        let learned = &result.rows[2];
        assert_eq!(big.normalized_energy, 1.0);
        assert_eq!(big.final_big_share, 1.0);
        assert_eq!(big.migrations, 0);
        assert_eq!(little.final_big_share, 0.0);
        // The A7 quad cannot hold the scaled decode's deadlines.
        assert!(little.miss_rate > big.miss_rate);
        // Learned placement keeps a valid share split.
        assert!((0.0..=1.0).contains(&learned.final_big_share));
        assert!(learned.energy_joules > 0.0);
        assert!(result.table.render().contains("Learned migration"));
    }

    #[test]
    fn biglittle_sweep_aggregates_each_placement() {
        let sweep = SeedSweep::base(1, 2);
        let result = run_biglittle_sweep_with(&sweep, 60, &RunnerConfig::serial());
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.per_seed.len(), 2);
        for row in &result.rows {
            assert_eq!(row.energy_joules.n, 2);
        }
        // big-only is the per-seed reference: exactly 1.0, zero spread.
        assert_eq!(result.rows[0].normalized_energy.mean, 1.0);
        assert_eq!(result.rows[0].normalized_energy.std_dev, 0.0);
    }

    #[test]
    fn mesh_scaling_runs_every_size() {
        let result = run_mesh_scaling_with(5, 40, &RunnerConfig::serial());
        assert_eq!(result.rows.len(), 3);
        assert_eq!(
            result.rows.iter().map(|r| r.clusters).collect::<Vec<_>>(),
            vec![4, 8, 16]
        );
        // Bigger chips burn more total energy on the scaled workload...
        assert!(result.rows[2].energy_joules > result.rows[0].energy_joules);
        // ...while per-cluster energy stays the same order of magnitude
        // (weak scaling; exploration noise keeps this loose).
        let ratio = result.rows[2].energy_per_cluster / result.rows[0].energy_per_cluster;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
    }
}
