//! The many-core experiment loop: chip-level coordinator ×
//! application × topology → per-cluster reports.
//!
//! [`run_manycore_experiment`] is the multi-cluster sibling of
//! [`crate::harness::run_experiment`]: one [`ManyCoreGovernor`] drives
//! one [`Application`] on a freshly built [`ManyCorePlatform`]. Each
//! epoch the frame's demand is split across clusters by the
//! coordinator's work-share vector
//! ([`split_demand_into`]), every
//! cluster runs its slice to the chip-wide frame barrier, and the
//! coordinator observes all per-cluster
//! [`FrameResult`](qgov_sim::FrameResult)s at once — the
//! seam where per-cluster Q-agents learn frequencies and the migration
//! policy rebalances placement.
//!
//! # Bit-identity bridge
//!
//! On a 1-cluster [`Topology`] with the whole share on that cluster,
//! the split is thread-preserving and the cluster steps through the
//! *unchanged* single-cluster [`Platform`](qgov_sim::Platform) kernel,
//! so this loop reproduces [`run_experiment`](crate::run_experiment)
//! frame-for-frame, bit-for-bit (`tests/harness_golden.rs` pins it).
//!
//! ```
//! use qgov_bench::manycore::run_manycore_experiment;
//! use qgov_governors::PerClusterGovernors;
//! use qgov_sim::{PlatformConfig, Topology};
//! use qgov_units::{Cycles, SimTime};
//! use qgov_workloads::SyntheticWorkload;
//!
//! let topology = Topology::homogeneous_mesh(2, PlatformConfig::odroid_xu3_a15());
//! let mut gov = PerClusterGovernors::performance(2);
//! let mut app = SyntheticWorkload::constant(
//!     "demo", Cycles::from_mcycles(80), SimTime::from_ms(40), 30, 8, 0,
//! );
//! let outcome = run_manycore_experiment(&mut gov, &mut app, topology, 30, &[0.5, 0.5]);
//! assert_eq!(outcome.report.frames(), 30);
//! assert_eq!(outcome.cluster_reports.len(), 2);
//! assert_eq!(outcome.report.deadline_misses(), 0);
//! ```

use crate::harness::{
    apply_decision, debug_assert_no_run_state_bleed, debug_probe_reset_determinism,
    faulted_decision, to_work_slices_into,
};
use qgov_governors::{GovernorContext, ManyCoreGovernor, ManyCoreObservation, VfDecision};
use qgov_metrics::{MonitorSample, PropertySet, RunReport};
use qgov_sim::{
    FaultInjector, FaultPlan, ManyCoreFrameResult, ManyCorePlatform, Topology, WorkSlice,
};
use qgov_units::Cycles;
use qgov_workloads::{split_demand_into, Application, FrameDemand};

/// Everything a finished many-core run yields: the chip-level report,
/// one report per cluster, the platform in its final state, and the
/// final work-share vector.
#[derive(Debug)]
pub struct ManyCoreOutcome {
    /// Chip-level metrics: per-frame values are the barrier aggregates
    /// (slowest cluster's frame time, summed energy); the recorded OPP
    /// index is cluster 0's (a multi-cluster chip has no single OPP).
    pub report: RunReport,
    /// Per-cluster metrics, indexed like the topology. Frame times and
    /// deadlines are each cluster's own; run totals (energy,
    /// transitions, peak temperature) are per-cluster too.
    pub cluster_reports: Vec<RunReport>,
    /// The platform after the run.
    pub platform: ManyCorePlatform,
    /// The work-share vector after the last epoch (what migration
    /// converged to).
    pub shares: Vec<f64>,
}

/// Runs `coordinator` against `app` for `frames` epochs (capped at the
/// application's own length) on a chip built from `topology`, starting
/// from the `initial_shares` placement.
///
/// The loop per decision epoch:
/// 1. split the frame's demand across clusters by the current share
///    vector and execute every slice to the chip-wide barrier;
/// 2. record chip-level and per-cluster metrics;
/// 3. let the coordinator observe all per-cluster frame results,
///    decide each cluster's next operating point, and rebalance the
///    share vector (task migration);
/// 4. charge each cluster its own processing overhead and V-F
///    transition latency.
///
/// Steady state is allocation-free: the demand slots, work-slice
/// buffers, frame result, decision vector and share vector are all
/// reused across epochs (`tests/alloc_steady_state.rs` pins the
/// single-cluster path of the same kernels).
///
/// # Panics
///
/// Panics if the topology is invalid, `initial_shares` is not one
/// share per cluster, or a decision is out of range — programming
/// errors in the experiment setup. Debug builds additionally panic if
/// the application does not rewind deterministically on `reset()`.
pub fn run_manycore_experiment(
    coordinator: &mut dyn ManyCoreGovernor,
    app: &mut dyn Application,
    topology: Topology,
    frames: u64,
    initial_shares: &[f64],
) -> ManyCoreOutcome {
    run_manycore_experiment_inner(coordinator, app, topology, frames, initial_shares, None)
}

/// [`run_manycore_experiment`] with a streaming temporal-property
/// monitor riding along on the *chip-level* epoch stream: after every
/// coordinator decision the loop fills one [`MonitorSample`] from the
/// barrier aggregates (slowest cluster's frame time, summed energy,
/// chip-wide peak temperature, cluster 0's OPP) plus the coordinator's
/// ε/convergence state, and feeds it to `monitors`.
///
/// Monitoring never perturbs the run — the chip report equals the
/// unmonitored run's except for the attached
/// [`monitor_report`](RunReport::monitor_report) — and adds no heap
/// allocations to the steady-state epoch.
pub fn run_manycore_experiment_monitored(
    coordinator: &mut dyn ManyCoreGovernor,
    app: &mut dyn Application,
    topology: Topology,
    frames: u64,
    initial_shares: &[f64],
    monitors: &mut PropertySet<MonitorSample>,
) -> ManyCoreOutcome {
    let mut outcome = run_manycore_experiment_inner(
        coordinator,
        app,
        topology,
        frames,
        initial_shares,
        Some(monitors),
    );
    outcome.report.set_monitor_report(monitors.report());
    outcome
}

/// [`run_manycore_experiment`] under a deterministic fault schedule —
/// the chip-level sibling of
/// [`run_experiment_faulted`](crate::harness::run_experiment_faulted).
///
/// Per epoch, for every cluster, the loop:
/// 1. moves any dead core's work slice onto that cluster's survivors
///    ([`FaultInjector::redistribute_dead`]); a fully dead cluster's
///    slices all go idle — its assigned share simply does not execute
///    until the coordinator drains it away;
/// 2. executes the chip frame and records **truth** in the chip and
///    per-cluster reports;
/// 3. hands the coordinator a *sensed copy* of the per-cluster frame
///    results, perturbed by [`FaultInjector::perturb_sensing`];
/// 4. rewrites each cluster's decision through its actuation fault
///    before applying it.
///
/// The first epoch on which a cluster's cores are all dead
/// ([`FaultInjector::cluster_dead`]) is reported once to the
/// coordinator via [`ManyCoreGovernor::notify_cluster_dead`] — the
/// hardened RTM freezes that agent and drains its share; a naive
/// coordinator ignores the call and keeps feeding the corpse.
///
/// With an empty `plan` every injector step is a no-op and the run is
/// bit-identical to [`run_manycore_experiment`]
/// (`tests/fault_injection.rs` pins this).
///
/// # Panics
///
/// Panics as [`run_manycore_experiment`] does, and if `plan` names a
/// cluster or core outside the topology.
pub fn run_manycore_experiment_faulted(
    coordinator: &mut dyn ManyCoreGovernor,
    app: &mut dyn Application,
    topology: Topology,
    frames: u64,
    initial_shares: &[f64],
    plan: &FaultPlan,
    fault_seed: u64,
) -> ManyCoreOutcome {
    run_manycore_experiment_faulted_inner(
        coordinator,
        app,
        topology,
        frames,
        initial_shares,
        plan,
        fault_seed,
        None,
    )
}

/// [`run_manycore_experiment_faulted`] with a streaming
/// temporal-property monitor riding along on the chip-level epoch
/// stream. The monitors observe **ground truth**, never the sensed
/// copy — a thermal-cap property checks the real die even while the
/// coordinator is fed a stuck sensor.
#[allow(clippy::too_many_arguments)]
pub fn run_manycore_experiment_faulted_monitored(
    coordinator: &mut dyn ManyCoreGovernor,
    app: &mut dyn Application,
    topology: Topology,
    frames: u64,
    initial_shares: &[f64],
    plan: &FaultPlan,
    fault_seed: u64,
    monitors: &mut PropertySet<MonitorSample>,
) -> ManyCoreOutcome {
    let mut outcome = run_manycore_experiment_faulted_inner(
        coordinator,
        app,
        topology,
        frames,
        initial_shares,
        plan,
        fault_seed,
        Some(monitors),
    );
    outcome.report.set_monitor_report(monitors.report());
    outcome
}

#[allow(clippy::too_many_arguments)]
fn run_manycore_experiment_faulted_inner(
    coordinator: &mut dyn ManyCoreGovernor,
    app: &mut dyn Application,
    topology: Topology,
    frames: u64,
    initial_shares: &[f64],
    plan: &FaultPlan,
    fault_seed: u64,
    mut monitors: Option<&mut PropertySet<MonitorSample>>,
) -> ManyCoreOutcome {
    let mut chip = ManyCorePlatform::new(topology).expect("valid topology");
    let n = chip.cluster_count();
    assert_eq!(initial_shares.len(), n, "one initial share per cluster");
    let period = app.period();

    let cores: Vec<usize> = (0..n).map(|c| chip.cores(c)).collect();
    let ctxs: Vec<GovernorContext> = (0..n)
        .map(|c| GovernorContext::new(chip.opp_table(c).clone(), cores[c], period))
        .collect();
    let mut injector = FaultInjector::new(plan, fault_seed, &cores);
    let mut notified = vec![false; n];

    app.reset();
    let pristine_first = debug_probe_reset_determinism(app);
    let mut decisions: Vec<VfDecision> = Vec::with_capacity(n);
    coordinator.init(&ctxs, &mut decisions);
    assert_eq!(decisions.len(), n, "one initial decision per cluster");
    for (c, decision) in decisions.iter().enumerate() {
        apply_decision(chip.cluster_mut(c), decision).expect("initial decision in range");
    }

    let total = frames.min(app.frames());
    let mut report = RunReport::new(coordinator.name(), app.name(), period);
    report.reserve_frames(usize::try_from(total).unwrap_or(usize::MAX));
    let mut cluster_reports: Vec<RunReport> = (0..n)
        .map(|c| {
            let mut r = RunReport::new(coordinator.name(), chip.cluster_name(c), period);
            r.reserve_frames(usize::try_from(total).unwrap_or(usize::MAX));
            r
        })
        .collect();

    // Same allocation-free steady state as the fault-free inner loop,
    // plus one extra reused slot: the sensed copy the injector
    // perturbs before the coordinator sees it.
    let mut shares = initial_shares.to_vec();
    let mut demand = FrameDemand::default();
    let mut cluster_demands = vec![FrameDemand::default(); n];
    let mut work: Vec<Vec<WorkSlice>> = cores.iter().map(|&k| vec![WorkSlice::IDLE; k]).collect();
    let mut frame = ManyCoreFrameResult::empty();
    let mut sensed = ManyCoreFrameResult::empty();
    let mut lost = vec![Cycles::ZERO; n];

    for epoch in 0..total {
        injector.begin_epoch(epoch);
        for (c, seen) in notified.iter_mut().enumerate() {
            if !*seen && injector.cluster_dead(c) {
                *seen = true;
                coordinator.notify_cluster_dead(c);
            }
        }
        app.next_frame_into(&mut demand);
        split_demand_into(&demand, &shares, &cores, &mut cluster_demands);
        for (c, (slices, slice_demand)) in work.iter_mut().zip(&cluster_demands).enumerate() {
            to_work_slices_into(slice_demand, slices);
            // Work routed to a fully dead cluster never executes: that
            // frame is incomplete, i.e. a missed deadline, however fast
            // the (idle) dead cluster crosses the barrier. Only the
            // coordinator can stop the bleeding, by draining the dead
            // cluster's share.
            lost[c] = injector.redistribute_dead(c, slices);
        }
        chip.run_frame_into(&work, period, &mut frame)
            .expect("work buffers sized to the topology");
        let chip_met = frame.met_deadline() && lost.iter().all(|l| l.is_zero());
        report.record_frame(
            frame.frame_time,
            frame.wall_time,
            frame.energy,
            frame.clusters[0].cluster_opp,
            chip_met,
        );
        for (c, cluster_report) in cluster_reports.iter_mut().enumerate() {
            let f = &frame.clusters[c];
            cluster_report.record_frame(
                f.frame_time,
                f.wall_time,
                f.energy,
                f.cluster_opp,
                f.met_deadline() && lost[c].is_zero(),
            );
        }
        sensed.copy_from(&frame);
        for (c, cluster_frame) in sensed.clusters.iter_mut().enumerate() {
            injector.perturb_sensing(epoch, c, cluster_frame);
        }
        coordinator.decide_into(
            &ManyCoreObservation {
                frames: &sensed.clusters,
                epoch,
            },
            &mut decisions,
            &mut shares,
        );
        assert_eq!(decisions.len(), n, "one decision per cluster");
        if let Some(monitors) = monitors.as_deref_mut() {
            // Truth, not the sensed copy: the thermal cap must hold on
            // the die even while a sensor lies to the coordinator.
            let peak = frame
                .clusters
                .iter()
                .map(|f| f.temperature)
                .fold(frame.clusters[0].temperature, qgov_units::Temp::max);
            monitors.observe(&MonitorSample {
                epoch,
                frame_time_ratio: frame.frame_time.ratio(period),
                met_deadline: chip_met,
                opp: frame.clusters[0].cluster_opp,
                temperature_c: peak.as_celsius(),
                energy_j: frame.energy.as_joules(),
                epsilon: coordinator.exploration_epsilon().unwrap_or(f64::NAN),
                converged: coordinator.has_converged().unwrap_or(false),
            });
        }
        for (c, decision) in decisions.iter_mut().enumerate() {
            let requested = std::mem::replace(decision, VfDecision::NoChange);
            let actual = faulted_decision(&mut injector, epoch, c, chip.current_opp(c), requested);
            apply_decision(chip.cluster_mut(c), &actual).expect("decision in range");
            chip.add_overhead(c, coordinator.processing_overhead(c));
            *decision = actual;
        }
    }

    report.set_run_totals(
        chip.total_energy(),
        chip.total_transitions(),
        chip.total_transition_latency(),
        chip.peak_temperature(),
    );
    for (c, cluster_report) in cluster_reports.iter_mut().enumerate() {
        let cluster = chip.cluster(c);
        cluster_report.set_run_totals(
            cluster.total_energy(),
            cluster.vf().transitions(),
            cluster.vf().total_latency(),
            cluster.peak_temperature(),
        );
    }
    debug_assert_no_run_state_bleed(app, pristine_first.as_ref(), total);
    ManyCoreOutcome {
        report,
        cluster_reports,
        platform: chip,
        shares,
    }
}

fn run_manycore_experiment_inner(
    coordinator: &mut dyn ManyCoreGovernor,
    app: &mut dyn Application,
    topology: Topology,
    frames: u64,
    initial_shares: &[f64],
    mut monitors: Option<&mut PropertySet<MonitorSample>>,
) -> ManyCoreOutcome {
    let mut chip = ManyCorePlatform::new(topology).expect("valid topology");
    let n = chip.cluster_count();
    assert_eq!(initial_shares.len(), n, "one initial share per cluster");
    let period = app.period();

    let cores: Vec<usize> = (0..n).map(|c| chip.cores(c)).collect();
    let ctxs: Vec<GovernorContext> = (0..n)
        .map(|c| GovernorContext::new(chip.opp_table(c).clone(), cores[c], period))
        .collect();

    app.reset();
    let pristine_first = debug_probe_reset_determinism(app);
    let mut decisions: Vec<VfDecision> = Vec::with_capacity(n);
    coordinator.init(&ctxs, &mut decisions);
    assert_eq!(decisions.len(), n, "one initial decision per cluster");
    for (c, decision) in decisions.iter().enumerate() {
        apply_decision(chip.cluster_mut(c), decision).expect("initial decision in range");
    }

    let total = frames.min(app.frames());
    let mut report = RunReport::new(coordinator.name(), app.name(), period);
    report.reserve_frames(usize::try_from(total).unwrap_or(usize::MAX));
    let mut cluster_reports: Vec<RunReport> = (0..n)
        .map(|c| {
            let mut r = RunReport::new(coordinator.name(), chip.cluster_name(c), period);
            r.reserve_frames(usize::try_from(total).unwrap_or(usize::MAX));
            r
        })
        .collect();

    let mut shares = initial_shares.to_vec();
    let mut demand = FrameDemand::default();
    let mut cluster_demands = vec![FrameDemand::default(); n];
    let mut work: Vec<Vec<WorkSlice>> = cores.iter().map(|&k| vec![WorkSlice::IDLE; k]).collect();
    let mut frame = ManyCoreFrameResult::empty();

    for epoch in 0..total {
        app.next_frame_into(&mut demand);
        split_demand_into(&demand, &shares, &cores, &mut cluster_demands);
        for (slices, slice_demand) in work.iter_mut().zip(&cluster_demands) {
            to_work_slices_into(slice_demand, slices);
        }
        chip.run_frame_into(&work, period, &mut frame)
            .expect("work buffers sized to the topology");
        report.record_frame(
            frame.frame_time,
            frame.wall_time,
            frame.energy,
            frame.clusters[0].cluster_opp,
            frame.met_deadline(),
        );
        for (c, cluster_report) in cluster_reports.iter_mut().enumerate() {
            let f = &frame.clusters[c];
            cluster_report.record_frame(
                f.frame_time,
                f.wall_time,
                f.energy,
                f.cluster_opp,
                f.met_deadline(),
            );
        }
        coordinator.decide_into(
            &ManyCoreObservation {
                frames: &frame.clusters,
                epoch,
            },
            &mut decisions,
            &mut shares,
        );
        assert_eq!(decisions.len(), n, "one decision per cluster");
        if let Some(monitors) = monitors.as_deref_mut() {
            // Sampled after decide_into() so ε/convergence reflect this
            // epoch's selections.
            let peak = frame
                .clusters
                .iter()
                .map(|f| f.temperature)
                .fold(frame.clusters[0].temperature, qgov_units::Temp::max);
            monitors.observe(&MonitorSample {
                epoch,
                frame_time_ratio: frame.frame_time.ratio(period),
                met_deadline: frame.met_deadline(),
                opp: frame.clusters[0].cluster_opp,
                temperature_c: peak.as_celsius(),
                energy_j: frame.energy.as_joules(),
                epsilon: coordinator.exploration_epsilon().unwrap_or(f64::NAN),
                converged: coordinator.has_converged().unwrap_or(false),
            });
        }
        for (c, decision) in decisions.iter().enumerate() {
            apply_decision(chip.cluster_mut(c), decision).expect("decision in range");
            chip.add_overhead(c, coordinator.processing_overhead(c));
        }
    }

    report.set_run_totals(
        chip.total_energy(),
        chip.total_transitions(),
        chip.total_transition_latency(),
        chip.peak_temperature(),
    );
    for (c, cluster_report) in cluster_reports.iter_mut().enumerate() {
        let cluster = chip.cluster(c);
        cluster_report.set_run_totals(
            cluster.total_energy(),
            cluster.vf().transitions(),
            cluster.vf().total_latency(),
            cluster.peak_temperature(),
        );
    }
    debug_assert_no_run_state_bleed(app, pristine_first.as_ref(), total);
    ManyCoreOutcome {
        report,
        cluster_reports,
        platform: chip,
        shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_experiment;
    use qgov_core::ManyCoreRtm;
    use qgov_governors::{OndemandGovernor, PerClusterGovernors};
    use qgov_sim::{PlatformConfig, SensorConfig};
    use qgov_units::{Cycles, SimTime};
    use qgov_workloads::SyntheticWorkload;

    fn quiet_config() -> PlatformConfig {
        PlatformConfig {
            sensor: SensorConfig::ideal(),
            ..PlatformConfig::odroid_xu3_a15()
        }
    }

    fn medium_app(frames: u64, threads: usize) -> SyntheticWorkload {
        SyntheticWorkload::constant(
            "medium",
            Cycles::from_mcycles(100),
            SimTime::from_ms(40),
            frames,
            threads,
            3,
        )
    }

    #[test]
    fn single_cluster_run_is_bit_identical_to_the_flat_harness() {
        let mut flat_gov = OndemandGovernor::linux_default();
        let flat = run_experiment(&mut flat_gov, &mut medium_app(60, 4), quiet_config(), 60);

        let mut chip_gov = PerClusterGovernors::new(
            "ondemand",
            vec![Box::new(OndemandGovernor::linux_default())],
        );
        let chip = run_manycore_experiment(
            &mut chip_gov,
            &mut medium_app(60, 4),
            Topology::single(quiet_config()),
            60,
            &[1.0],
        );

        assert_eq!(flat.report, chip.report);
        assert_eq!(
            flat.report.total_energy().as_joules().to_bits(),
            chip.cluster_reports[0].total_energy().as_joules().to_bits()
        );
        assert_eq!(chip.shares, vec![1.0]);
    }

    #[test]
    fn two_cluster_split_meets_what_one_cluster_can_also_meet() {
        let topology = Topology::homogeneous_mesh(2, quiet_config());
        let mut gov = PerClusterGovernors::performance(2);
        let outcome =
            run_manycore_experiment(&mut gov, &mut medium_app(40, 8), topology, 40, &[0.5, 0.5]);
        assert_eq!(outcome.report.deadline_misses(), 0);
        assert_eq!(outcome.cluster_reports.len(), 2);
        // Both clusters carried work and report energy.
        for r in &outcome.cluster_reports {
            assert!(r.total_energy().as_joules() > 0.0);
        }
        // Chip energy is the sum of the cluster energies.
        let sum: f64 = outcome
            .cluster_reports
            .iter()
            .map(|r| r.total_energy().as_joules())
            .sum();
        assert!((outcome.report.total_energy().as_joules() - sum).abs() < 1e-9);
    }

    #[test]
    fn learned_coordinator_runs_and_may_migrate() {
        let topology = Topology::odroid_xu3_biglittle();
        let mut rtm = ManyCoreRtm::paper(42, 2, (1e7, 5e8)).unwrap();
        let outcome =
            run_manycore_experiment(&mut rtm, &mut medium_app(80, 8), topology, 80, &[0.6, 0.4]);
        assert_eq!(outcome.report.frames(), 80);
        let share_sum: f64 = outcome.shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "{:?}", outcome.shares);
        assert!(outcome.shares.iter().all(|s| *s >= 0.0));
    }
}
