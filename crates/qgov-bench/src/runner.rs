//! Batched, parallel experiment execution.
//!
//! Every table, figure and ablation of the paper expands into a grid of
//! *cells* — independent (governor × seed × frames) experiment runs that
//! share no mutable state. [`ExperimentBatch`] collects those cells as
//! closures and [`ExperimentBatch::run`] drains them either inline on
//! the calling thread ([`RunnerConfig::serial`]) or through a
//! self-scheduling job queue worked by scoped threads
//! ([`RunnerConfig::parallel`]): each idle worker claims the next
//! unclaimed cell, so long cells never leave a worker parked the way a
//! static round-robin split would.
//!
//! # Determinism guarantee
//!
//! Results come back **in push order, not completion order**, and every
//! cell constructs its own governor, platform and trace replay from its
//! own inputs. A batch therefore produces *bit-identical* output
//! whether it runs serially, with one worker, or with many — the
//! property tests in this module and `tests/runner_determinism.rs`
//! enforce exactly that, and it is what lets the bench targets default
//! to parallel execution without perturbing recorded baselines.
//!
//! ```
//! use qgov_bench::runner::{ExperimentBatch, RunnerConfig};
//!
//! // Any Send closure can be a cell; experiments push whole runs.
//! let build = || {
//!     let mut batch = ExperimentBatch::new();
//!     for cell in 0..8u64 {
//!         batch.push(format!("cell-{cell}"), move || cell * cell + 1);
//!     }
//!     batch
//! };
//!
//! let serial = build().run(&RunnerConfig::serial());
//! let parallel = build().run(&RunnerConfig::with_workers(3));
//! assert_eq!(serial, parallel); // push order, bit-identical
//! assert_eq!(serial[3], 10);
//! ```
//!
//! Each cell must own a **fresh** application or trace clone:
//! [`crate::harness::precharacterize`] and the experiment loop mutate
//! the [`Application`](qgov_workloads::Application) in place (cursor
//! advance, reset), so sharing one instance across cells would make the
//! outcome depend on scheduling. Rust's `&mut` aliasing rules already
//! forbid *concurrent* sharing; the debug assertions in
//! [`crate::harness`] additionally catch applications whose `reset()`
//! does not rewind deterministically.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How a batch is executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunnerMode {
    /// Drain cells inline on the calling thread, in push order. No
    /// threads are spawned.
    Serial,
    /// Drain cells through the shared job queue with `workers` scoped
    /// threads; `None` asks the host
    /// ([`std::thread::available_parallelism`]) for the worker count.
    Parallel {
        /// Worker thread count; `None` = one per available core.
        workers: Option<NonZeroUsize>,
    },
}

/// Execution policy for [`ExperimentBatch::run`]: serial or parallel,
/// and with how many workers.
///
/// Bench targets and tests construct this explicitly
/// ([`RunnerConfig::serial`], [`RunnerConfig::with_workers`]) or from
/// the environment ([`RunnerConfig::from_env`], reading `QGOV_WORKERS`).
/// The choice never changes results — see the module docs'
/// determinism guarantee — only wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerConfig {
    mode: RunnerMode,
}

impl Default for RunnerConfig {
    /// Defaults to parallel with one worker per available core.
    fn default() -> Self {
        RunnerConfig::parallel()
    }
}

impl RunnerConfig {
    /// Inline execution on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        RunnerConfig {
            mode: RunnerMode::Serial,
        }
    }

    /// Parallel execution with one worker per available core.
    #[must_use]
    pub fn parallel() -> Self {
        RunnerConfig {
            mode: RunnerMode::Parallel { workers: None },
        }
    }

    /// Parallel execution with exactly `workers` worker threads
    /// (`with_workers(1)` is the degenerate single-worker queue, useful
    /// for isolating queue behaviour from concurrency).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero — use [`RunnerConfig::serial`] for
    /// no-thread execution.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        let workers = NonZeroUsize::new(workers).expect("worker count must be at least 1");
        RunnerConfig {
            mode: RunnerMode::Parallel {
                workers: Some(workers),
            },
        }
    }

    /// Reads the policy from the `QGOV_WORKERS` environment variable:
    /// `"serial"` or `"0"` selects [`RunnerConfig::serial`], a positive
    /// integer selects that many workers, and anything else (including
    /// the variable being unset) selects [`RunnerConfig::parallel`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("QGOV_WORKERS") {
            Ok(value) => Self::parse(&value),
            Err(_) => RunnerConfig::parallel(),
        }
    }

    /// Parses a `QGOV_WORKERS`-style value (see
    /// [`RunnerConfig::from_env`] for the accepted forms). An
    /// unrecognised value falls back to [`RunnerConfig::parallel`]
    /// with a warning on stderr, so a typo (`seria1`, `-1`) cannot
    /// silently masquerade as a forced-serial run.
    #[must_use]
    pub fn parse(value: &str) -> Self {
        let value = value.trim();
        if value.eq_ignore_ascii_case("serial") || value == "0" {
            return RunnerConfig::serial();
        }
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => RunnerConfig::with_workers(n),
            _ => {
                if !value.is_empty() {
                    eprintln!(
                        "warning: unrecognised QGOV_WORKERS value {value:?} \
                         (expected \"serial\", \"0\" or a worker count); \
                         using the parallel default"
                    );
                }
                RunnerConfig::parallel()
            }
        }
    }

    /// The configured execution mode.
    #[must_use]
    pub fn mode(&self) -> &RunnerMode {
        &self.mode
    }

    /// `true` when [`ExperimentBatch::run`] will not spawn threads.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.mode == RunnerMode::Serial
    }

    /// Human-readable description for experiment banners, e.g.
    /// `"serial"` or `"parallel (3 workers)"`.
    #[must_use]
    pub fn describe(&self) -> String {
        match &self.mode {
            RunnerMode::Serial => "serial".to_owned(),
            RunnerMode::Parallel { workers: Some(n) } => format!("parallel ({n} workers)"),
            RunnerMode::Parallel { workers: None } => {
                format!("parallel (auto: {} workers)", available_workers())
            }
        }
    }

    /// Worker threads `run` will spawn for a batch of `jobs` cells:
    /// `None` for serial, otherwise the configured (or detected) count
    /// capped at the job count.
    fn resolved_workers(&self, jobs: usize) -> Option<usize> {
        match &self.mode {
            RunnerMode::Serial => None,
            RunnerMode::Parallel { workers } => {
                let n = workers.map_or_else(available_workers, NonZeroUsize::get);
                Some(n.min(jobs).max(1))
            }
        }
    }
}

fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Reads an experiment length override from the `QGOV_FRAMES`
/// environment variable, falling back to `default` when unset,
/// unparsable or zero (a zero-frame experiment is meaningless — unlike
/// `QGOV_WORKERS`, where `0` means serial). The bench targets use this
/// so full-length (3000-frame) and quick runs share one binary.
#[must_use]
pub fn frames_from_env(default: u64) -> u64 {
    std::env::var("QGOV_FRAMES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&frames| frames > 0)
        .unwrap_or(default)
}

/// One queued cell: its display label and the deferred run.
type Job<'a, R> = (String, Box<dyn FnOnce() -> R + Send + 'a>);

/// A builder that collects experiment cells and runs them under a
/// [`RunnerConfig`], returning results in push order (see the module
/// docs for the determinism guarantee).
///
/// Cells are plain `FnOnce() -> R + Send` closures; each must capture
/// everything it needs by value (trace clones, configs, seeds) so no
/// mutable state crosses cells.
pub struct ExperimentBatch<'a, R> {
    jobs: Vec<Job<'a, R>>,
}

impl<R> std::fmt::Debug for ExperimentBatch<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentBatch")
            .field(
                "cells",
                &self
                    .jobs
                    .iter()
                    .map(|(label, _)| label.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<R: Send> Default for ExperimentBatch<'_, R> {
    fn default() -> Self {
        ExperimentBatch::new()
    }
}

impl<'a, R: Send> ExperimentBatch<'a, R> {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        ExperimentBatch { jobs: Vec::new() }
    }

    /// Queues one cell; returns its index (= its slot in the result
    /// vector of [`ExperimentBatch::run`]).
    pub fn push(&mut self, label: impl Into<String>, job: impl FnOnce() -> R + Send + 'a) -> usize {
        self.jobs.push((label.into(), Box::new(job)));
        self.jobs.len() - 1
    }

    /// Expands the full (governor × seed × frames) cross product into
    /// cells, one `factory(governor, seed, frames)` call each, in
    /// lexicographic loop order (governors outermost, frames
    /// innermost).
    ///
    /// ```
    /// use qgov_bench::runner::{ExperimentBatch, RunnerConfig};
    ///
    /// let mut batch = ExperimentBatch::new();
    /// batch.expand_cells(
    ///     &["ondemand", "rtm"],
    ///     &[1, 2, 3],
    ///     &[100],
    ///     |governor, seed, frames| format!("{governor}:{seed}:{frames}"),
    /// );
    /// assert_eq!(batch.len(), 6);
    /// let results = batch.run(&RunnerConfig::with_workers(2));
    /// assert_eq!(results[0], "ondemand:1:100");
    /// assert_eq!(results[5], "rtm:3:100");
    /// ```
    pub fn expand_cells<F>(
        &mut self,
        governors: &[&str],
        seeds: &[u64],
        frames: &[u64],
        factory: F,
    ) -> &mut Self
    where
        F: Fn(&str, u64, u64) -> R + Send + Sync + 'a,
    {
        let factory = Arc::new(factory);
        for &governor in governors {
            for &seed in seeds {
                for &frame_count in frames {
                    let factory = Arc::clone(&factory);
                    let governor = governor.to_owned();
                    self.push(format!("{governor}/seed={seed}/frames={frame_count}"), {
                        move || factory(&governor, seed, frame_count)
                    });
                }
            }
        }
        self
    }

    /// Number of queued cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no cells are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The queued cells' labels, in push order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.jobs.iter().map(|(label, _)| label.as_str())
    }

    /// Runs every cell and returns the results **in push order**
    /// regardless of completion order. An empty batch returns an empty
    /// vector without spawning anything.
    ///
    /// # Panics
    ///
    /// Propagates the first panic of any cell once all workers have
    /// finished (via [`std::thread::scope`]).
    #[must_use]
    pub fn run(self, config: &RunnerConfig) -> Vec<R> {
        let total = self.jobs.len();
        let Some(workers) = config.resolved_workers(total) else {
            // Serial: drain inline, no threads.
            return self.jobs.into_iter().map(|(_, job)| job()).collect();
        };
        if total == 0 {
            return Vec::new();
        }

        // Self-scheduling queue: `next` hands each claimed index to
        // exactly one worker; results land in their per-index slot, so
        // output order is push order however scheduling interleaves.
        let jobs: Vec<Mutex<Option<Job<'a, R>>>> =
            self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let (_, job) = jobs[index]
                        .lock()
                        .expect("job mutex poisoned")
                        .take()
                        .expect("each job index is claimed exactly once");
                    let result = job();
                    *slots[index].lock().expect("result mutex poisoned") = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result mutex poisoned")
                    .expect("every claimed job stores its result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn squares_batch<'a>(n: u64) -> ExperimentBatch<'a, u64> {
        let mut batch = ExperimentBatch::new();
        for i in 0..n {
            batch.push(format!("cell-{i}"), move || i * i);
        }
        batch
    }

    #[test]
    fn empty_batch_returns_empty() {
        assert!(squares_batch(0).run(&RunnerConfig::serial()).is_empty());
        assert!(squares_batch(0).run(&RunnerConfig::parallel()).is_empty());
        assert!(squares_batch(0)
            .run(&RunnerConfig::with_workers(4))
            .is_empty());
    }

    #[test]
    fn single_worker_degenerate_case_preserves_order() {
        let results = squares_batch(10).run(&RunnerConfig::with_workers(1));
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_in_push_order_despite_uneven_cell_durations() {
        let mut batch = ExperimentBatch::new();
        for i in 0..12u64 {
            batch.push(format!("cell-{i}"), move || {
                // Early cells run longest so late cells finish first.
                std::thread::sleep(std::time::Duration::from_millis(12 - i));
                i
            });
        }
        let results = batch.run(&RunnerConfig::with_workers(4));
        assert_eq!(results, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let results = squares_batch(2).run(&RunnerConfig::with_workers(16));
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn expand_cells_covers_the_cross_product_in_loop_order() {
        let mut batch = ExperimentBatch::new();
        batch.expand_cells(&["a", "b"], &[1, 2], &[10, 20], |g, s, f| {
            format!("{g}{s}-{f}")
        });
        assert_eq!(batch.len(), 8);
        let labels: Vec<String> = batch.labels().map(str::to_owned).collect();
        assert_eq!(labels[0], "a/seed=1/frames=10");
        assert_eq!(labels[7], "b/seed=2/frames=20");
        let results = batch.run(&RunnerConfig::serial());
        assert_eq!(results[0], "a1-10");
        assert_eq!(results[3], "a2-20");
        assert_eq!(results[7], "b2-20");
    }

    #[test]
    fn parse_accepts_serial_zero_and_counts() {
        assert!(RunnerConfig::parse("serial").is_serial());
        assert!(RunnerConfig::parse("SERIAL").is_serial());
        assert!(RunnerConfig::parse("0").is_serial());
        assert_eq!(RunnerConfig::parse("3"), RunnerConfig::with_workers(3));
        assert_eq!(RunnerConfig::parse(" 5 "), RunnerConfig::with_workers(5));
        assert_eq!(RunnerConfig::parse("garbage"), RunnerConfig::parallel());
        assert_eq!(RunnerConfig::parse(""), RunnerConfig::parallel());
    }

    #[test]
    fn describe_names_the_mode() {
        assert_eq!(RunnerConfig::serial().describe(), "serial");
        assert_eq!(
            RunnerConfig::with_workers(3).describe(),
            "parallel (3 workers)"
        );
        assert!(RunnerConfig::parallel().describe().starts_with("parallel"));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_workers_panics() {
        let _ = RunnerConfig::with_workers(0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // The determinism guarantee at the queue level: any job count ×
        // worker count produces exactly the serial result vector.
        #[test]
        fn parallel_equals_serial_for_any_shape(jobs in 0usize..40, workers in 1usize..6) {
            let build = || {
                let mut batch = ExperimentBatch::new();
                for i in 0..jobs {
                    batch.push(format!("j{i}"), move || (i as u64) * 31 + 7);
                }
                batch
            };
            let serial = build().run(&RunnerConfig::serial());
            let parallel = build().run(&RunnerConfig::with_workers(workers));
            prop_assert_eq!(serial, parallel);
        }
    }
}
