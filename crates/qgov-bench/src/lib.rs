//! Experiment harness and regeneration targets for every table and
//! figure of Biswas et al., DATE 2017.
//!
//! The [`harness`] module drives any [`Governor`](qgov_governors::Governor)
//! against any [`Application`](qgov_workloads::Application) on the
//! simulated platform and produces a
//! [`RunReport`](qgov_metrics::RunReport). The [`experiments`] module
//! implements one function per table/figure; the `benches/` targets are
//! thin wrappers that print the results (`cargo bench -p qgov-bench`
//! regenerates everything).
//!
//! | Paper artefact | Function | Bench target |
//! |---|---|---|
//! | Table I (normalised energy/performance) | [`experiments::run_table1`] | `table1_energy` |
//! | Table II (number of explorations) | [`experiments::run_table2`] | `table2_explorations` |
//! | Table III (learning overhead) | [`experiments::run_table3`] | `table3_overhead` |
//! | Fig. 3 (misprediction & slack) | [`experiments::run_fig3`] | `fig3_misprediction` |
//! | N-levels ablation | [`experiments::run_state_levels_ablation`] | `ablation_state_levels` |
//! | EWMA-γ ablation | [`experiments::run_smoothing_ablation`] | `ablation_smoothing` |
//! | Shared-table ablation | [`experiments::run_shared_table_ablation`] | `ablation_shared_table` |
//! | Long horizon (beyond the paper) | [`experiments::run_long_horizon`] | `long_horizon` |
//!
//! The long-horizon experiment goes beyond the paper's ~3000-frame
//! clips: it streams its workload from CSV shards on disk
//! ([`ShardedTrace`](qgov_workloads::ShardedTrace)), so horizons of
//! 100k+ frames replay in bounded memory, and reports convergence over
//! time as windowed [`qgov_metrics::WindowedStats`] folds.
//!
//! # Batched execution
//!
//! Experiment grids are embarrassingly parallel across their
//! (governor × seed × frames) cells, so every experiment function
//! expresses its cells through [`runner::ExperimentBatch`] and takes a
//! [`runner::RunnerConfig`] (via its `*_with` variant) choosing serial
//! or parallel execution. The runner returns results in push order and
//! every cell owns its state, so **the parallel and serial paths are
//! bit-identical for identical seeds** — the guarantee the recorded
//! baselines in `EXPERIMENTS.md` rely on, enforced by
//! `tests/runner_determinism.rs`.
//!
//! ```
//! use qgov_bench::experiments::{run_table1, run_table1_with};
//! use qgov_bench::runner::RunnerConfig;
//!
//! let serial = run_table1_with(7, 60, &RunnerConfig::serial());
//! let parallel = run_table1_with(7, 60, &RunnerConfig::with_workers(2));
//! assert_eq!(serial.rows, parallel.rows); // bit-identical cells
//!
//! // The seed-only form reads QGOV_WORKERS (default: parallel).
//! assert_eq!(run_table1(7, 60).rows.len(), 4);
//! ```
//!
//! # Multi-seed sweeps
//!
//! Exploration is stochastic in the seed, so every experiment also has
//! a `*_sweep` variant ([`sweep`]) that fans the run across a
//! [`sweep::SeedSweep`] and folds each metric into
//! `mean ± σ (n)` aggregates with 95 % confidence intervals. The bench
//! targets read the seed set from `QGOV_SEEDS` (default: one seed,
//! preserving the single-run baselines in `EXPERIMENTS.md`).
//!
//! ```
//! use qgov_bench::runner::RunnerConfig;
//! use qgov_bench::sweep::{run_table3_sweep_with, SeedSweep};
//!
//! let result = run_table3_sweep_with(&SeedSweep::base(1, 2), 80, &RunnerConfig::serial());
//! assert_eq!(result.rows[0].exploration_epochs.n, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod faultstorm;
pub mod fleet;
pub mod harness;
pub mod hetero;
pub mod manycore;
pub mod perf;
pub mod runner;
pub mod sweep;
pub mod worklist;

pub use faultstorm::{
    fault_plan_from_env, fault_storm_app, fault_storm_drop_epoch, run_fault_storm,
    run_fault_storm_with, standard_fault_schedule, FaultStormResult, FaultStormRow,
    FAULTSTORM_GRACE,
};
pub use fleet::{
    fleet_size_from_env, run_fleet, FleetEngine, FleetInstance, FleetOutcome, FleetSpec,
};
pub use harness::{
    run_experiment, run_experiment_faulted, run_experiment_faulted_monitored,
    run_experiment_monitored, ExperimentOutcome,
};
pub use hetero::{
    run_biglittle, run_biglittle_monitored, run_biglittle_monitored_with, run_biglittle_sweep,
    run_biglittle_sweep_with, run_biglittle_with, run_mesh_scaling, run_mesh_scaling_monitored,
    run_mesh_scaling_monitored_with, run_mesh_scaling_sweep, run_mesh_scaling_sweep_with,
    run_mesh_scaling_with, BigLittleResult, BigLittleRow, BigLittleSweep, BigLittleSweepRow,
    MeshRow, MeshScalingResult, MeshSweep, MeshSweepRow,
};
pub use manycore::{
    run_manycore_experiment, run_manycore_experiment_faulted,
    run_manycore_experiment_faulted_monitored, run_manycore_experiment_monitored, ManyCoreOutcome,
};
pub use perf::BenchRecord;
pub use runner::{ExperimentBatch, RunnerConfig, RunnerMode};
pub use sweep::{Aggregate, SeedSweep};
pub use worklist::{CellMetrics, Family, WorkCell, WorkList};
